//! Fixture-based tests: one synthetic source per lint code, exercised in
//! three flavours — positive (the finding fires), suppressed (a
//! `lint:allow` neutralises it) and exempt (allowlisted module, test
//! region or file class where the code does not apply).

use demodq_lint::{compare, lint_source, lint_tree, Baseline, Code, Config, Finding};

fn active(rel: &str, source: &str, code: Code) -> usize {
    let config = Config::demodq();
    lint_source(rel, source, &config)
        .iter()
        .filter(|f| f.code == code && !f.suppressed)
        .count()
}

fn suppressed(rel: &str, source: &str, code: Code) -> usize {
    let config = Config::demodq();
    lint_source(rel, source, &config)
        .iter()
        .filter(|f| f.code == code && f.suppressed)
        .count()
}

// --- D001: nondeterministically ordered collections in export paths ----

const D001_SRC: &str = "use std::collections::HashMap;\n";

#[test]
fn d001_positive_in_export_path() {
    assert_eq!(active("crates/core/src/export.rs", D001_SRC, Code::D001), 1);
}

#[test]
fn d001_suppressed() {
    let src = "// lint:allow(D001, sorted at the boundary before serialisation)\n\
               use std::collections::HashMap;\n";
    assert_eq!(active("crates/core/src/export.rs", src, Code::D001), 0);
    assert_eq!(suppressed("crates/core/src/export.rs", src, Code::D001), 1);
}

#[test]
fn d001_exempt_outside_export_paths() {
    assert_eq!(active("crates/cleaning/src/lib.rs", D001_SRC, Code::D001), 0);
}

// --- D002: wall-clock/entropy outside telemetry modules ----------------

const D002_SRC: &str = "fn f() { let _t = std::time::Instant::now(); }\n";

#[test]
fn d002_positive_in_library() {
    assert_eq!(active("crates/core/src/runner.rs", D002_SRC, Code::D002), 1);
}

#[test]
fn d002_suppressed() {
    let src = "fn f() {\n\
               // lint:allow(D002, telemetry only; never feeds seeds)\n\
               let _t = std::time::Instant::now(); }\n";
    assert_eq!(active("crates/core/src/runner.rs", src, Code::D002), 0);
    assert_eq!(suppressed("crates/core/src/runner.rs", src, Code::D002), 1);
}

#[test]
fn d002_exempt_in_allowlisted_module() {
    assert_eq!(active("crates/core/src/progress.rs", D002_SRC, Code::D002), 0);
    assert_eq!(active("crates/serve/src/metrics.rs", D002_SRC, Code::D002), 0);
}

// --- D003: RNG seeded from a bare literal ------------------------------

const D003_SRC: &str = "fn f() { let _rng = Rng64::seed_from_u64(42); }\n";

#[test]
fn d003_positive_on_literal_seed() {
    assert_eq!(active("crates/core/src/runner.rs", D003_SRC, Code::D003), 1);
}

#[test]
fn d003_derived_seed_passes() {
    let src = "fn f(seed: u64) { let _rng = Rng64::seed_from_u64(seed ^ 0xAD01); }\n";
    assert_eq!(active("crates/core/src/runner.rs", src, Code::D003), 0);
}

#[test]
fn d003_suppressed() {
    let src = "fn f() {\n\
               // lint:allow(D003, documented fallback seed for the demo binary)\n\
               let _rng = Rng64::seed_from_u64(42); }\n";
    assert_eq!(active("crates/core/src/runner.rs", src, Code::D003), 0);
    assert_eq!(suppressed("crates/core/src/runner.rs", src, Code::D003), 1);
}

#[test]
fn d003_exempt_in_test_region() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _rng = Rng64::seed_from_u64(42); }\n}\n";
    assert_eq!(active("crates/core/src/runner.rs", src, Code::D003), 0);
}

// --- S001: unsafe block without a SAFETY comment -----------------------

const S001_SRC: &str = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";

#[test]
fn s001_positive_without_safety_comment() {
    assert_eq!(active("crates/mlcore/src/scratch.rs", S001_SRC, Code::S001), 1);
}

#[test]
fn s001_exempt_with_safety_comment() {
    let src = "fn f(p: *const u8) -> u8 {\n\
               // SAFETY: caller guarantees p is valid.\n\
               unsafe { *p } }\n";
    assert_eq!(active("crates/mlcore/src/scratch.rs", src, Code::S001), 0);
}

#[test]
fn s001_suppressed() {
    let src = "fn f(p: *const u8) -> u8 {\n\
               // lint:allow(S001, justified in the module docs)\n\
               unsafe { *p } }\n";
    assert_eq!(active("crates/mlcore/src/scratch.rs", src, Code::S001), 0);
    assert_eq!(suppressed("crates/mlcore/src/scratch.rs", src, Code::S001), 1);
}

// --- P001: unwrap/expect/panic! in library code ------------------------

const P001_SRC: &str = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";

#[test]
fn p001_positive_in_library() {
    assert_eq!(active("crates/core/src/lib.rs", P001_SRC, Code::P001), 1);
}

#[test]
fn p001_suppressed() {
    let src = "fn f(x: Option<u8>) -> u8 {\n\
               // lint:allow(P001, x is Some by construction)\n\
               x.unwrap() }\n";
    assert_eq!(active("crates/core/src/lib.rs", src, Code::P001), 0);
    assert_eq!(suppressed("crates/core/src/lib.rs", src, Code::P001), 1);
}

#[test]
fn p001_exempt_in_binaries_and_tests() {
    assert_eq!(active("crates/core/src/main.rs", P001_SRC, Code::P001), 0);
    assert_eq!(active("tests/study_resume.rs", P001_SRC, Code::P001), 0);
    let in_test_mod =
        "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
    assert_eq!(active("crates/core/src/lib.rs", in_test_mod, Code::P001), 0);
}

// --- F001: float == / != comparison ------------------------------------

const F001_SRC: &str = "fn f(x: f64) -> bool { x == 0.0 }\n";

#[test]
fn f001_positive_in_library() {
    assert_eq!(active("crates/core/src/lib.rs", F001_SRC, Code::F001), 1);
}

#[test]
fn f001_suppressed() {
    let src = "fn f(x: f64) -> bool {\n\
               // lint:allow(F001, exact-zero sentinel)\n\
               x == 0.0 }\n";
    assert_eq!(active("crates/core/src/lib.rs", src, Code::F001), 0);
    assert_eq!(suppressed("crates/core/src/lib.rs", src, Code::F001), 1);
}

#[test]
fn f001_exempt_in_tests() {
    assert_eq!(active("crates/core/tests/golden.rs", F001_SRC, Code::F001), 0);
}

// --- patterns inside strings and comments never fire -------------------

#[test]
fn strings_and_comments_are_inert() {
    let src = "fn f() -> &'static str {\n\
               // HashMap Instant::now() unsafe unwrap() 1.0 == 2.0\n\
               \"HashMap seed_from_u64(42) .unwrap() x == 0.0\" }\n";
    let config = Config::demodq();
    assert!(lint_source("crates/core/src/export.rs", src, &config).is_empty());
}

// --- allow without a reason is ignored ---------------------------------

#[test]
fn allow_without_reason_does_not_suppress() {
    let src = "fn f(x: Option<u8>) -> u8 {\n\
               // lint:allow(P001)\n\
               x.unwrap() }\n";
    assert_eq!(active("crates/core/src/lib.rs", src, Code::P001), 1);
}

// --- end-to-end: a seeded tree of one violation per code fails ---------

#[test]
fn seeded_violations_fail_against_empty_baseline() {
    let root = std::env::temp_dir().join(format!("demodq-lint-fixture-{}", std::process::id()));
    let src_dir = root.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("create fixture tree");
    let seeded: &[(&str, &str)] = &[
        ("export.rs", "use std::collections::HashMap;\n"),
        ("d002.rs", "fn f() { let _t = std::time::Instant::now(); }\n"),
        ("d003.rs", "fn f() { let _r = Rng64::seed_from_u64(7); }\n"),
        ("s001.rs", "fn f(p: *const u8) -> u8 { unsafe { *p } }\n"),
        ("p001.rs", "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n"),
        ("f001.rs", "fn f(x: f64) -> bool { x != 1.0 }\n"),
    ];
    for (name, source) in seeded {
        std::fs::write(src_dir.join(name), source).expect("write fixture");
    }
    let report = lint_tree(&root, &Config::demodq()).expect("lint fixture tree");
    let fired: std::collections::BTreeSet<Code> =
        report.active().map(|f: &Finding| f.code).collect();
    // The lexical scope only — T001/L001/E001/K001 come from the
    // analyzer and have their own seeded fixture tree (tests/analyzer.rs).
    for code in Code::LEXICAL {
        assert!(fired.contains(&code), "{} did not fire on its seeded violation", code.name());
    }
    // Against an empty baseline every finding is new → the CLI exits 1.
    let verdict = compare(&report, &Baseline::default());
    assert!(!verdict.clean());
    assert_eq!(verdict.stale, vec![]);
    std::fs::remove_dir_all(&root).ok();
}
