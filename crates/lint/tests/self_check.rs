//! Self-check: lint the real workspace and require an exact match with
//! the committed baseline — no new findings *and* no stale entries, so
//! the baseline can only ever shrink.

use demodq_lint::{compare, lint_tree, Baseline, Config};
use std::path::Path;

#[test]
fn workspace_matches_committed_baseline_exactly() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = lint_tree(root, &Config::demodq()).expect("lint workspace");
    assert!(report.files_scanned > 100, "scanned only {} files", report.files_scanned);

    let baseline_path = root.join("lint-baseline.txt");
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("missing {}: {e}", baseline_path.display()));
    let baseline = Baseline::parse(&text).expect("valid baseline");

    let verdict = compare(&report, &baseline);
    assert!(
        verdict.new.is_empty(),
        "new lint findings not in baseline (fix them or suppress with a reason): {:?}",
        verdict.new
    );
    assert!(
        verdict.stale.is_empty(),
        "stale baseline entries (regenerate with --write-baseline to lock in fixes): {:?}",
        verdict.stale
    );
}

#[test]
fn every_suppression_in_the_tree_carries_a_reason() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = lint_tree(root, &Config::demodq()).expect("lint workspace");
    for finding in report.findings.iter().filter(|f| f.suppressed) {
        let reason = finding.reason.as_deref().unwrap_or("");
        assert!(
            !reason.trim().is_empty(),
            "{}:{} suppressed without a reason",
            finding.file,
            finding.line
        );
    }
}
