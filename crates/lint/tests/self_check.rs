//! Self-check: lint and analyze the real workspace and require an exact
//! match with the committed baseline — no new findings *and* no stale
//! entries, so the baseline can only ever shrink. Each tool compares
//! only its own code scope of the shared baseline file.

use demodq_lint::analyze::{analyze_tree, AnalyzeConfig};
use demodq_lint::{compare_scoped, lint_tree, Baseline, Code, Config};
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
}

fn committed_baseline(root: &Path) -> Baseline {
    let baseline_path = root.join("lint-baseline.txt");
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("missing {}: {e}", baseline_path.display()));
    Baseline::parse(&text).expect("valid baseline")
}

#[test]
fn workspace_matches_committed_baseline_exactly() {
    let root = workspace_root();
    let report = lint_tree(root, &Config::demodq()).expect("lint workspace");
    assert!(report.files_scanned > 100, "scanned only {} files", report.files_scanned);

    let verdict = compare_scoped(&report, &committed_baseline(root), &Code::LEXICAL);
    assert!(
        verdict.new.is_empty(),
        "new lint findings not in baseline (fix them or suppress with a reason): {:?}",
        verdict.new
    );
    assert!(
        verdict.stale.is_empty(),
        "stale baseline entries (regenerate with --write-baseline to lock in fixes): {:?}",
        verdict.stale
    );
}

#[test]
fn workspace_is_analyzer_clean_against_committed_baseline() {
    let root = workspace_root();
    let report = analyze_tree(root, &AnalyzeConfig::demodq()).expect("analyze workspace");
    assert!(report.files_scanned > 50, "analyzed only {} files", report.files_scanned);

    let verdict = compare_scoped(&report, &committed_baseline(root), &Code::ANALYSIS);
    assert!(
        verdict.new.is_empty(),
        "new analyzer findings not in baseline (fix them or suppress with a reason): {:?}",
        verdict.new
    );
    assert!(
        verdict.stale.is_empty(),
        "stale analyzer baseline entries (regenerate with demodq-analyze --write-baseline): {:?}",
        verdict.stale
    );
}

#[test]
fn every_suppression_in_the_tree_carries_a_reason() {
    let root = workspace_root();
    let lexical = lint_tree(root, &Config::demodq()).expect("lint workspace");
    let flow = analyze_tree(root, &AnalyzeConfig::demodq()).expect("analyze workspace");
    for finding in lexical.findings.iter().chain(&flow.findings).filter(|f| f.suppressed) {
        let reason = finding.reason.as_deref().unwrap_or("");
        assert!(
            !reason.trim().is_empty(),
            "{}:{} suppressed without a reason",
            finding.file,
            finding.line
        );
    }
}
