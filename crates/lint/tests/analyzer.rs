//! Integration tests for `demodq-analyze`: each analysis code has a
//! seeded-violation case that fails without the analysis and passes
//! with it, plus allowlist/suppression behavior and the committed
//! fixture tree (the same tree `ci.sh` drives through the binary).

use demodq_lint::analyze::{analyze_sources, analyze_tree, AnalyzeConfig};
use demodq_lint::{compare_scoped, Baseline, Code, Finding};
use std::path::Path;

fn analyze(files: &[(&str, &str)]) -> Vec<Finding> {
    let sources: Vec<(String, String)> =
        files.iter().map(|(rel, src)| (rel.to_string(), src.to_string())).collect();
    analyze_sources(&sources, &AnalyzeConfig::demodq()).findings
}

fn active_of(findings: &[Finding], code: Code) -> Vec<&Finding> {
    findings.iter().filter(|f| f.code == code && !f.suppressed).collect()
}

// -- T001 -------------------------------------------------------------------

#[test]
fn t001_catches_taint_three_calls_away() {
    let findings = analyze(&[
        (
            "crates/core/src/export.rs",
            "pub fn export_rows() { shape::helper_a(); }",
        ),
        ("crates/core/src/shape.rs", "pub fn helper_a() { timeutil::helper_b(); }"),
        (
            "crates/core/src/timeutil.rs",
            "pub fn helper_b() -> u64 { std::time::Instant::now().elapsed().as_nanos() as u64 }",
        ),
    ]);
    let t001 = active_of(&findings, Code::T001);
    assert_eq!(t001.len(), 1, "{findings:?}");
    assert_eq!(t001[0].file, "crates/core/src/export.rs");
    assert!(t001[0].message.contains("export_rows -> helper_a -> helper_b"), "{}", t001[0].message);
    assert!(t001[0].message.contains("Instant::now()"), "{}", t001[0].message);
}

#[test]
fn t001_is_silent_without_a_sink_path() {
    // The same taint chain rooted outside the determinism-critical
    // files is not reported (D002 still covers the source lexically).
    let findings = analyze(&[
        ("crates/core/src/misc.rs", "pub fn caller() { timeutil::helper_b(); }"),
        (
            "crates/core/src/timeutil.rs",
            "pub fn helper_b() -> u64 { std::time::Instant::now().elapsed().as_nanos() as u64 }",
        ),
    ]);
    assert!(active_of(&findings, Code::T001).is_empty(), "{findings:?}");
}

#[test]
fn t001_stops_at_the_telemetry_allowlist() {
    // progress.rs is allowlisted: it may read the clock, and callers
    // must not inherit taint from it.
    let findings = analyze(&[
        ("crates/core/src/runner.rs", "pub fn run_study() { progress::tick(); }"),
        (
            "crates/core/src/progress.rs",
            "pub fn tick() { let _ = std::time::Instant::now(); }",
        ),
    ]);
    assert!(active_of(&findings, Code::T001).is_empty(), "{findings:?}");
}

#[test]
fn t001_honors_reasoned_lexical_allows_and_own_suppressions() {
    // A source the D002 lint excused with a reason does not seed taint.
    let excused = analyze(&[(
        "crates/core/src/journal.rs",
        "pub fn stamp() -> u64 {\n\
         // lint:allow(D002, telemetry-only timing; never feeds exports)\n\
         std::time::Instant::now().elapsed().as_nanos() as u64\n\
         }",
    )]);
    assert!(active_of(&excused, Code::T001).is_empty(), "{excused:?}");

    // A T001 suppression on the reported line works like any other.
    let suppressed = analyze(&[
        (
            "crates/core/src/export.rs",
            "pub fn export_rows() {\n\
             // lint:allow(T001, fixture: chain adjudicated in this test)\n\
             shape::helper_a();\n\
             }",
        ),
        (
            "crates/core/src/shape.rs",
            "pub fn helper_a() { let _ = std::time::Instant::now(); }",
        ),
    ]);
    let t001: Vec<_> = suppressed.iter().filter(|f| f.code == Code::T001).collect();
    assert_eq!(t001.len(), 1, "{suppressed:?}");
    assert!(t001[0].suppressed, "{suppressed:?}");
}

// -- L001 -------------------------------------------------------------------

const LOCK_STRUCT: &str = "pub struct S { a: std::sync::Mutex<u64>, b: std::sync::Mutex<u64> }\n";

#[test]
fn l001_detects_ab_ba_cycle() {
    let findings = analyze(&[(
        "crates/serve/src/registry.rs",
        &format!(
            "{LOCK_STRUCT}\
             impl S {{\n\
                 pub fn ab(&self) {{ let x = self.a.lock(); let y = self.b.lock(); drop((x, y)); }}\n\
                 pub fn ba(&self) {{ let y = self.b.lock(); let x = self.a.lock(); drop((y, x)); }}\n\
             }}"
        ),
    )]);
    assert!(!active_of(&findings, Code::L001).is_empty(), "{findings:?}");
}

#[test]
fn l001_consistent_order_is_clean() {
    let findings = analyze(&[(
        "crates/serve/src/registry.rs",
        &format!(
            "{LOCK_STRUCT}\
             impl S {{\n\
                 pub fn ab(&self) {{ let x = self.a.lock(); let y = self.b.lock(); drop((x, y)); }}\n\
                 pub fn ab2(&self) {{ let x = self.a.lock(); let y = self.b.lock(); drop((x, y)); }}\n\
             }}"
        ),
    )]);
    assert!(active_of(&findings, Code::L001).is_empty(), "{findings:?}");
}

#[test]
fn l001_sees_the_cycle_through_one_call_level() {
    let findings = analyze(&[(
        "crates/serve/src/registry.rs",
        &format!(
            "{LOCK_STRUCT}\
             impl S {{\n\
                 pub fn ab(&self) {{ let x = self.a.lock(); self.take_b(); drop(x); }}\n\
                 pub fn take_b(&self) {{ let _ = self.b.lock(); }}\n\
                 pub fn ba(&self) {{ let y = self.b.lock(); self.take_a(); drop(y); }}\n\
                 pub fn take_a(&self) {{ let _ = self.a.lock(); }}\n\
             }}"
        ),
    )]);
    assert!(!active_of(&findings, Code::L001).is_empty(), "{findings:?}");
}

#[test]
fn l001_sibling_callees_do_not_fabricate_an_order() {
    // take_a and take_b are called back-to-back; neither holds the
    // other's lock, so no A->B or B->A edge may appear even when
    // another fn orders them the other way.
    let findings = analyze(&[(
        "crates/serve/src/registry.rs",
        &format!(
            "{LOCK_STRUCT}\
             impl S {{\n\
                 pub fn seq(&self) {{ self.take_a(); self.take_b(); }}\n\
                 pub fn take_b(&self) {{ let _ = self.b.lock(); }}\n\
                 pub fn take_a(&self) {{ let _ = self.a.lock(); }}\n\
                 pub fn ba(&self) {{ let y = self.b.lock(); let x = self.a.lock(); drop((y, x)); }}\n\
             }}"
        ),
    )]);
    assert!(active_of(&findings, Code::L001).is_empty(), "{findings:?}");
}

// -- E001 -------------------------------------------------------------------

#[test]
fn e001_catches_sleep_two_calls_deep() {
    let findings = analyze(&[
        ("crates/serve/src/event.rs", "pub fn handle_readable() { util::retry(); }"),
        (
            "crates/serve/src/util.rs",
            "pub fn retry() { nap(); }\n\
             fn nap() { std::thread::sleep(std::time::Duration::from_millis(1)); }",
        ),
    ]);
    let e001 = active_of(&findings, Code::E001);
    assert_eq!(e001.len(), 1, "{findings:?}");
    assert_eq!(e001[0].file, "crates/serve/src/util.rs");
    assert!(e001[0].message.contains("handle_readable -> retry -> nap"), "{}", e001[0].message);
}

#[test]
fn e001_catches_lock_held_across_predict_batch() {
    let findings = analyze(&[(
        "crates/serve/src/event.rs",
        "pub struct L { registry: std::sync::Mutex<u64> }\n\
         impl L {\n\
             pub fn flush(&self) {\n\
                 let g = self.registry.lock();\n\
                 let _ = predict_batch(&[1.0]);\n\
                 drop(g);\n\
             }\n\
         }\n\
         pub fn predict_batch(rows: &[f64]) -> usize { rows.len() }",
    )]);
    let e001 = active_of(&findings, Code::E001);
    assert_eq!(e001.len(), 1, "{findings:?}");
    assert!(e001[0].message.contains("predict_batch"), "{}", e001[0].message);
}

#[test]
fn e001_ignores_the_threaded_fallback_and_unreachable_code() {
    let findings = analyze(&[
        // The event loop may fall back into server.rs, which blocks by
        // design — reachability must not cross into it.
        ("crates/serve/src/event.rs", "pub fn run() { accept_loop(); }"),
        (
            "crates/serve/src/server.rs",
            "pub fn accept_loop() { std::thread::sleep(std::time::Duration::from_millis(1)); }",
        ),
        // Blocking code nobody reaches from event.rs is not flagged.
        (
            "crates/serve/src/warmup.rs",
            "pub fn warm() { std::thread::sleep(std::time::Duration::from_millis(1)); }",
        ),
    ]);
    assert!(active_of(&findings, Code::E001).is_empty(), "{findings:?}");
}

// -- K001 -------------------------------------------------------------------

#[test]
fn k001_flags_every_allocation_shape_in_kernels_only() {
    let kernel_src = "pub fn score(xs: &[f64]) -> Vec<f64> {\n\
                      let mut out = Vec::new();\n\
                      out.push(1.0);\n\
                      let s = format!(\"n={}\", xs.len());\n\
                      let c = xs.to_vec();\n\
                      let v = vec![0.0; 4];\n\
                      drop((s, c, v));\n\
                      out\n\
                      }";
    let findings = analyze(&[
        ("crates/mlcore/src/kernels.rs", kernel_src),
        // Identical code outside the kernel files is not K001's business.
        ("crates/mlcore/src/train.rs", kernel_src),
    ]);
    let k001 = active_of(&findings, Code::K001);
    assert_eq!(k001.len(), 5, "{findings:?}");
    assert!(k001.iter().all(|f| f.file == "crates/mlcore/src/kernels.rs"));
}

#[test]
fn k001_suppression_with_reason_is_honored() {
    let findings = analyze(&[(
        "crates/mlcore/src/kernels.rs",
        "pub fn score() -> Vec<f64> {\n\
         // lint:allow(K001, reference kernel kept off the hot path)\n\
         let out = Vec::new();\n\
         out\n\
         }",
    )]);
    let k001: Vec<_> = findings.iter().filter(|f| f.code == Code::K001).collect();
    assert_eq!(k001.len(), 1);
    assert!(k001[0].suppressed);
}

// -- Fixture tree (the ci.sh self-check target) -----------------------------

#[test]
fn seeded_fixture_tree_fails_an_empty_baseline_with_all_codes() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/analyze/ws");
    let report = analyze_tree(&root, &AnalyzeConfig::demodq()).expect("analyze fixture tree");
    let fired: std::collections::BTreeSet<Code> =
        report.active().map(|f| f.code).collect();
    for code in Code::ANALYSIS {
        assert!(fired.contains(&code), "{} did not fire on the fixture tree", code.name());
    }
    let verdict = compare_scoped(&report, &Baseline::default(), &Code::ANALYSIS);
    assert!(!verdict.clean(), "fixture tree must fail an empty baseline");
    assert!(verdict.stale.is_empty());
}

#[test]
fn fixture_taint_chain_crosses_module_boundaries() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/analyze/ws");
    let report = analyze_tree(&root, &AnalyzeConfig::demodq()).expect("analyze fixture tree");
    let t001: Vec<_> = report.active().filter(|f| f.code == Code::T001).collect();
    assert!(
        t001.iter().any(|f| f.message.contains("export_summary -> stamp_helper -> entropy_leak")),
        "{t001:?}"
    );
}
