//! Workspace call-graph construction over the parsed ASTs.
//!
//! Resolution is **name-based and over-approximating** — there is no
//! type information. A path call `Qual::f(..)` links to every workspace
//! function named `f` whose impl type, enclosing module, or crate
//! matches `Qual`; a bare call `f(..)` prefers same-crate functions and
//! falls back to every workspace `f`; a method call `.m(..)` links to
//! every impl/trait method named `m` in the workspace. Paths that match
//! nothing (std and external crates) produce no edge — the analyses
//! pattern-match those call sites directly instead.

use crate::ast::{Expr, File};
use std::collections::BTreeMap;

/// A call observed in a function body, normalized for the analyses.
#[derive(Debug, Clone)]
pub enum RawCall {
    /// `path::to::f(args)`.
    Path {
        /// Path segments (`["SystemTime", "now"]`).
        path: Vec<String>,
        /// 1-based line.
        line: usize,
        /// Whether the argument span contains an identifier.
        args_have_ident: bool,
    },
    /// `recv.name(args)`.
    Method {
        /// Method name.
        name: String,
        /// Receiver `ident(.ident)*` chain; empty for computed receivers.
        recv: Vec<String>,
        /// 1-based line.
        line: usize,
        /// Top-level argument count.
        n_args: usize,
        /// Whether the argument span contains an identifier.
        args_have_ident: bool,
    },
    /// `name!(...)`.
    Macro {
        /// Macro name.
        name: String,
        /// 1-based line.
        line: usize,
    },
}

impl RawCall {
    /// The call's source line.
    pub fn line(&self) -> usize {
        match self {
            RawCall::Path { line, .. } | RawCall::Method { line, .. } | RawCall::Macro { line, .. } => {
                *line
            }
        }
    }
}

/// A resolved workspace call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Index of the callee in [`Graph::fns`].
    pub callee: usize,
    /// 1-based line of the call site in the caller.
    pub line: usize,
    /// Index of the call in the caller's [`FnNode::calls`] — the
    /// source-order position (lines tie for one-liners, this doesn't).
    pub seq: usize,
}

/// One function in the graph.
#[derive(Debug)]
pub struct FnNode {
    /// Crate name (from the file path).
    pub krate: String,
    /// Workspace-relative file.
    pub file: String,
    /// Module path: file-derived segments plus inline `mod`s.
    pub modules: Vec<String>,
    /// Impl/trait type name for methods.
    pub owner: Option<String>,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// `#[test]` / `#[cfg(test)]`-gated.
    pub in_test: bool,
    /// Every call in the body, in source order.
    pub calls: Vec<RawCall>,
    /// Resolved workspace edges.
    pub edges: Vec<Edge>,
}

impl FnNode {
    /// `file:line` display for messages.
    pub fn site(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }

    /// Qualified display name (`Type::name` or `name`).
    pub fn display(&self) -> String {
        match &self.owner {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// Every function, in file/source order.
    pub fns: Vec<FnNode>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Module path derived from a file's workspace-relative path:
/// `crates/core/src/a/b.rs` → `["a", "b"]`, `.../a/mod.rs` → `["a"]`,
/// `src/lib.rs` / `src/main.rs` → `[]`.
pub fn file_modules(rel: &str) -> Vec<String> {
    let after_src = match rel.find("/src/") {
        Some(i) => &rel[i + "/src/".len()..],
        // tests/, examples/, build.rs — not modules of the lib.
        None => return Vec::new(),
    };
    let mut mods: Vec<String> = after_src.split('/').map(String::from).collect();
    let Some(last) = mods.pop() else { return Vec::new() };
    match last.as_str() {
        "lib.rs" | "main.rs" | "mod.rs" => {}
        name => {
            let stem = name.strip_suffix(".rs").unwrap_or(name);
            mods.push(stem.to_string());
        }
    }
    // src/bin/foo.rs is its own root, not a `bin::foo` module.
    if mods.first().map(String::as_str) == Some("bin") {
        mods.remove(0);
    }
    mods
}

/// Builds the graph over a set of parsed files.
pub fn build(files: &[File]) -> Graph {
    let mut graph = Graph::default();
    for file in files {
        let base_mods = file_modules(&file.rel);
        for fr in file.functions() {
            let mut modules = base_mods.clone();
            modules.extend(fr.modules.iter().cloned());
            let mut calls = Vec::new();
            if let Some(body) = &fr.item.body {
                body.walk(&mut |e| match e {
                    Expr::Call(c) => calls.push(RawCall::Path {
                        path: c.path.clone(),
                        line: c.line,
                        args_have_ident: c.args_have_ident,
                    }),
                    Expr::MethodCall(m) => calls.push(RawCall::Method {
                        name: m.name.clone(),
                        recv: m.recv.clone(),
                        line: m.line,
                        n_args: m.n_args,
                        args_have_ident: m.args_have_ident,
                    }),
                    Expr::Macro(m) => calls.push(RawCall::Macro { name: m.name.clone(), line: m.line }),
                    _ => {}
                });
            }
            let idx = graph.fns.len();
            graph.by_name.entry(fr.item.name.clone()).or_default().push(idx);
            graph.fns.push(FnNode {
                krate: file.krate.clone(),
                file: file.rel.clone(),
                modules,
                owner: fr.owner.map(String::from),
                name: fr.item.name.clone(),
                line: fr.item.line,
                in_test: fr.in_test,
                calls,
                edges: Vec::new(),
            });
        }
    }
    resolve_edges(&mut graph);
    graph
}

/// Crate-name match with the `demodq_` lib-name prefix normalized away
/// (`demodq_core::...` refers to the `crates/core` member) and `-`/`_`
/// treated as equal.
fn crate_matches(qualifier: &str, krate: &str) -> bool {
    let q = qualifier.strip_prefix("demodq_").unwrap_or(qualifier);
    q.replace('-', "_") == krate.replace('-', "_")
}

fn resolve_edges(graph: &mut Graph) {
    let mut all_edges: Vec<Vec<Edge>> = Vec::with_capacity(graph.fns.len());
    for caller_idx in 0..graph.fns.len() {
        let caller = &graph.fns[caller_idx];
        let mut edges: Vec<Edge> = Vec::new();
        for (seq, call) in caller.calls.iter().enumerate() {
            match call {
                RawCall::Path { path, line, .. } => {
                    let Some(name) = path.last() else { continue };
                    let Some(cands) = graph.by_name.get(name) else { continue };
                    let qualifier = if path.len() >= 2 { Some(path[path.len() - 2].as_str()) } else { None };
                    let matched: Vec<usize> = match qualifier {
                        // `Self::f()` — the caller's own impl type.
                        Some("Self") => cands
                            .iter()
                            .copied()
                            .filter(|&i| {
                                graph.fns[i].krate == caller.krate
                                    && graph.fns[i].owner == caller.owner
                            })
                            .collect(),
                        // Path keywords point into the caller's crate.
                        Some("crate") | Some("super") | Some("self") | None => {
                            let same: Vec<usize> = cands
                                .iter()
                                .copied()
                                .filter(|&i| graph.fns[i].krate == caller.krate)
                                .collect();
                            if same.is_empty() && qualifier.is_none() {
                                // A bare call with no same-crate target may
                                // be a `use`-imported workspace fn.
                                cands.clone()
                            } else {
                                same
                            }
                        }
                        Some(q) => cands
                            .iter()
                            .copied()
                            .filter(|&i| {
                                let f = &graph.fns[i];
                                f.owner.as_deref() == Some(q)
                                    || f.modules.last().map(String::as_str) == Some(q)
                                    || crate_matches(q, &f.krate)
                            })
                            .collect(),
                    };
                    for i in matched {
                        if graph.fns[i].in_test && !caller.in_test {
                            continue;
                        }
                        edges.push(Edge { callee: i, line: *line, seq });
                    }
                }
                RawCall::Method { name, .. } => {
                    let Some(cands) = graph.by_name.get(name) else { continue };
                    for &i in cands {
                        // Methods only — a free fn cannot be `.name()`-called.
                        if graph.fns[i].owner.is_none() {
                            continue;
                        }
                        if graph.fns[i].in_test && !caller.in_test {
                            continue;
                        }
                        edges.push(Edge { callee: i, line: call.line(), seq });
                    }
                }
                RawCall::Macro { .. } => {}
            }
        }
        edges.sort_by_key(|e| (e.callee, e.line, e.seq));
        edges.dedup();
        all_edges.push(edges);
    }
    for (node, edges) in graph.fns.iter_mut().zip(all_edges) {
        node.edges = edges;
    }
}

impl Graph {
    /// Reverse adjacency: for each fn, the `(caller, call line)` pairs
    /// that target it.
    pub fn callers(&self) -> Vec<Vec<(usize, usize)>> {
        let mut rev: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.fns.len()];
        for (caller, node) in self.fns.iter().enumerate() {
            for edge in &node.edges {
                rev[edge.callee].push((caller, edge.line));
            }
        }
        rev
    }

    /// Indices of fns defined in files matched by `pred`.
    pub fn fns_in_files(&self, pred: impl Fn(&str) -> bool) -> Vec<usize> {
        (0..self.fns.len()).filter(|&i| pred(&self.fns[i].file)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;

    fn graph_of(files: &[(&str, &str)]) -> Graph {
        let parsed: Vec<File> =
            files.iter().map(|(rel, src)| parser::parse_source(rel, src).file).collect();
        build(&parsed)
    }

    fn idx(g: &Graph, name: &str) -> usize {
        g.fns.iter().position(|f| f.name == name).unwrap_or_else(|| panic!("fn {name}"))
    }

    fn has_edge(g: &Graph, from: &str, to: &str) -> bool {
        let (f, t) = (idx(g, from), idx(g, to));
        g.fns[f].edges.iter().any(|e| e.callee == t)
    }

    #[test]
    fn file_module_paths() {
        assert_eq!(file_modules("crates/core/src/journal.rs"), vec!["journal"]);
        assert_eq!(file_modules("crates/core/src/lib.rs"), Vec::<String>::new());
        assert_eq!(file_modules("crates/core/src/repair/mod.rs"), vec!["repair"]);
        assert_eq!(file_modules("crates/serve/src/bin/loadgen.rs"), vec!["loadgen"]);
        assert_eq!(file_modules("tests/study_resume.rs"), Vec::<String>::new());
    }

    #[test]
    fn bare_and_qualified_calls_resolve() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "pub fn entry() { helper(); journal::append(1); demodq_b::far(); }\n\
                 fn helper() {}",
            ),
            ("crates/a/src/journal.rs", "pub fn append(x: u64) {}"),
            ("crates/b/src/lib.rs", "pub fn far() {}"),
        ]);
        assert!(has_edge(&g, "entry", "helper"));
        assert!(has_edge(&g, "entry", "append"), "module-qualified call resolves");
        assert!(has_edge(&g, "entry", "far"), "crate-qualified call resolves");
    }

    #[test]
    fn method_calls_over_approximate_and_self_resolves() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub struct R;\n\
             impl R {\n\
                 pub fn new() -> R { Self::setup(); R }\n\
                 fn setup() {}\n\
                 pub fn observe(&self) {}\n\
             }\n\
             pub fn driver(r: &R) { r.observe(); }",
        )]);
        assert!(has_edge(&g, "new", "setup"), "Self:: resolves in-impl");
        assert!(has_edge(&g, "driver", "observe"), "method call links to impl method");
    }

    #[test]
    fn std_paths_and_test_fns_produce_no_edges() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn entry() { std::thread::sleep(d); helper_t(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 pub fn helper_t() { super::entry(); }\n\
             }",
        )]);
        let entry = idx(&g, "entry");
        // sleep matches no workspace fn; helper_t is test-gated.
        assert!(g.fns[entry].edges.is_empty(), "{:?}", g.fns[entry].edges);
        // But the test fn's own edge back into non-test code exists.
        assert!(has_edge(&g, "helper_t", "entry"));
    }
}
