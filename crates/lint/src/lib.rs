//! `demodq-lint` — the workspace determinism & safety linter.
//!
//! The study runner's headline guarantee — *exports are byte-identical
//! at any thread count and journals replay exactly* — is a property of
//! the code, not of any one test. This crate makes it a **checked**
//! property: a dependency-free static-analysis pass over every `.rs`
//! file in the workspace, built on a comment/string-aware Rust lexer
//! ([`lexer`]) so patterns inside strings or comments can never fire.
//!
//! # Lint codes
//!
//! | code | meaning |
//! |------|---------|
//! | D001 | nondeterministically-ordered collection (`HashMap`/`HashSet`/`RandomState`) in an export/journal/runner/summary path — use `BTreeMap` or sort at the boundary |
//! | D002 | wall-clock or entropy source (`SystemTime::now`, `Instant::now`, `from_entropy`, `thread_rng`) outside the allowlisted telemetry modules |
//! | D003 | RNG seeded from a constant (`seed_from_u64(<literal>)`) in library code — seeds must derive from the grid-position helpers |
//! | S001 | `unsafe` block or `unsafe impl` without an attached `// SAFETY:` comment |
//! | P001 | `.unwrap()` / `.expect(..)` / `panic!` in library-crate code outside tests |
//! | F001 | float `==` / `!=` comparison against a float literal in library code |
//!
//! The same crate also ships `demodq-analyze` — an AST/call-graph
//! analyzer ([`analyze`], codes T001/L001/E001/K001) that catches the
//! flow-level hazards these token lints cannot see (a tainted helper
//! three calls away, a lock-order inversion across functions, a
//! blocking call on an event-loop path). Both tools share the
//! suppression syntax and the baseline file; each gates only on its own
//! code scope ([`Code::LEXICAL`] vs [`Code::ANALYSIS`]).
//!
//! # Suppressions
//!
//! A finding is suppressed by `// lint:allow(CODE, reason)` on the same
//! line or on a comment line directly above. The reason is mandatory —
//! an allow without one does **not** suppress (and is itself reported).
//!
//! # Baseline
//!
//! Pre-existing findings are grandfathered in a committed baseline file
//! (`lint-baseline.txt`: `CODE count path` lines). The gate fails when a
//! (file, code) pair exceeds its baselined count (**new findings**) and
//! when the baseline over-records (**stale entries**) — so the baseline
//! can only ever shrink, and `--write-baseline` regenerates it after a
//! burn-down.

pub mod analyze;
pub mod ast;
pub mod callgraph;
pub mod lexer;
pub mod locks;
pub mod output;
pub mod parser;
pub mod taint;

use lexer::{Comment, Lexed, Tok, Token};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Stable lint codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Nondeterministically-ordered collection in a determinism-critical path.
    D001,
    /// Wall-clock / entropy source outside the telemetry allowlist.
    D002,
    /// RNG constructed from a constant seed in library code.
    D003,
    /// `unsafe` without a `// SAFETY:` comment.
    S001,
    /// `unwrap` / `expect` / `panic!` in library code.
    P001,
    /// Float `==` / `!=` comparison.
    F001,
    /// Interprocedural determinism taint (analyzer).
    T001,
    /// Lock-order cycle (analyzer).
    L001,
    /// Blocking call reachable from the event loop (analyzer).
    E001,
    /// Allocation in a hot kernel (analyzer).
    K001,
}

impl Code {
    /// All codes, in reporting order.
    pub const ALL: [Code; 10] = [
        Code::D001,
        Code::D002,
        Code::D003,
        Code::S001,
        Code::P001,
        Code::F001,
        Code::T001,
        Code::L001,
        Code::E001,
        Code::K001,
    ];

    /// The token-level codes `demodq-lint` owns. The two tools share one
    /// baseline file; each compares only its own scope so the other's
    /// grandfathered entries are never reported stale.
    pub const LEXICAL: [Code; 6] =
        [Code::D001, Code::D002, Code::D003, Code::S001, Code::P001, Code::F001];

    /// The flow-aware codes `demodq-analyze` owns.
    pub const ANALYSIS: [Code; 4] = [Code::T001, Code::L001, Code::E001, Code::K001];

    /// The stable code string.
    pub fn name(self) -> &'static str {
        match self {
            Code::D001 => "D001",
            Code::D002 => "D002",
            Code::D003 => "D003",
            Code::S001 => "S001",
            Code::P001 => "P001",
            Code::F001 => "F001",
            Code::T001 => "T001",
            Code::L001 => "L001",
            Code::E001 => "E001",
            Code::K001 => "K001",
        }
    }

    /// One-line description (shown by `--codes`).
    pub fn describe(self) -> &'static str {
        match self {
            Code::D001 => {
                "nondeterministically-ordered collection (HashMap/HashSet/RandomState) in an \
                 export/journal/runner/summary path; use BTreeMap or sort at the boundary"
            }
            Code::D002 => {
                "wall-clock or entropy source (SystemTime::now, Instant::now, from_entropy, \
                 thread_rng) outside the allowlisted telemetry modules"
            }
            Code::D003 => {
                "RNG seeded from a constant; seeds must derive from the documented \
                 grid-position seed-derivation helpers"
            }
            Code::S001 => "unsafe block or unsafe impl without an attached // SAFETY: comment",
            Code::P001 => "unwrap/expect/panic! in library-crate code outside tests",
            Code::F001 => "float ==/!= comparison against a float literal",
            Code::T001 => {
                "determinism taint: a fn in an export/journal/runner/summary file \
                 transitively calls a wall-clock/entropy source through the call graph"
            }
            Code::L001 => {
                "lock-order cycle: two Mutex/RwLock guards are acquired in both orders \
                 somewhere in the workspace (one call level inlined)"
            }
            Code::E001 => {
                "blocking call (thread::sleep, read_to_end/write_all, lock held across \
                 predict_batch) on a path reachable from the epoll event loop"
            }
            Code::K001 => {
                "allocation (Vec::new/push/to_vec/vec!/format!) inside a hot scoring \
                 kernel; buffers must come from the caller-reserved scratch pool"
            }
        }
    }

    /// Parses a code string (`"D001"`).
    pub fn parse(text: &str) -> Option<Code> {
        Code::ALL.into_iter().find(|c| c.name() == text)
    }
}

/// How a file participates in the lint pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// `crates/*/src` or `vendor/*/src` (except bins) — full lint set.
    Library,
    /// Binaries (`src/bin`, `main.rs`, `build.rs`) — determinism + safety lints.
    Binary,
    /// Integration tests, examples, benches — safety lints only.
    Test,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileClass {
    let p = rel;
    if p.starts_with("tests/")
        || p.contains("/tests/")
        || p.starts_with("examples/")
        || p.contains("/examples/")
        || p.contains("/benches/")
    {
        return FileClass::Test;
    }
    if p.contains("/src/bin/") || p.ends_with("/main.rs") || p.ends_with("build.rs") {
        return FileClass::Binary;
    }
    FileClass::Library
}

/// Repo policy: which paths the path-scoped lints apply to.
#[derive(Debug, Clone)]
pub struct Config {
    /// D001 applies to files whose relative path ends with one of these
    /// suffixes (the export/journal/runner/summary paths).
    pub d001_paths: Vec<String>,
    /// D002 is waived for files whose relative path starts with one of
    /// these prefixes (telemetry/benchmark modules that measure time by
    /// design and never feed seeds or exports).
    pub d002_allow: Vec<String>,
    /// Top-level directories to scan (relative to the workspace root).
    pub roots: Vec<String>,
}

impl Config {
    /// The demodq workspace policy.
    pub fn demodq() -> Config {
        Config {
            d001_paths: vec![
                "crates/core/src/export.rs".to_string(),
                "crates/core/src/journal.rs".to_string(),
                "crates/core/src/runner.rs".to_string(),
                "crates/core/src/results.rs".to_string(),
                "crates/core/src/report.rs".to_string(),
                "crates/core/src/tables.rs".to_string(),
                "crates/serve/src/metrics.rs".to_string(),
            ],
            d002_allow: vec![
                "crates/core/src/progress.rs".to_string(),
                "crates/serve/".to_string(),
                "crates/bench/".to_string(),
                "vendor/criterion/".to_string(),
            ],
            roots: vec![
                "crates".to_string(),
                "vendor".to_string(),
                "src".to_string(),
                "tests".to_string(),
                "examples".to_string(),
            ],
        }
    }

    fn d001_applies(&self, rel: &str) -> bool {
        self.d001_paths.iter().any(|s| rel.ends_with(s.as_str()))
    }

    fn d002_allowed(&self, rel: &str) -> bool {
        self.d002_allow.iter().any(|p| rel.starts_with(p.as_str()))
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The lint code.
    pub code: Code,
    /// Human-readable message.
    pub message: String,
    /// True when a valid `lint:allow` covers this finding.
    pub suppressed: bool,
    /// The suppression reason, when suppressed.
    pub reason: Option<String>,
}

/// A `lint:allow(CODE, reason)` parsed from a comment.
#[derive(Debug, Clone)]
struct Allow {
    code: Code,
    reason: Option<String>,
    line: usize,
    end_line: usize,
}

/// Per-file lex + derived facts shared by all lint passes.
struct FileScan<'a> {
    rel: &'a str,
    class: FileClass,
    tokens: &'a [Token],
    /// Token index -> inside a `#[cfg(test)]` module or `#[test]` fn.
    in_test: Vec<bool>,
    /// Lines that carry (part of) a `SAFETY:` comment.
    safety_lines: Vec<bool>,
    /// Lines with at least one code token (non-comment, non-blank).
    code_lines: Vec<bool>,
    allows: Vec<Allow>,
}

/// Parses `lint:allow(CODE, reason)` out of a comment body.
fn parse_allows(comment: &Comment) -> Vec<Allow> {
    let mut out = Vec::new();
    let mut rest = comment.text.as_str();
    while let Some(at) = rest.find("lint:allow(") {
        rest = &rest[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let inner = &rest[..close];
        rest = &rest[close + 1..];
        let (code_text, reason) = match inner.split_once(',') {
            Some((c, r)) => (c.trim(), Some(r.trim().to_string())),
            None => (inner.trim(), None),
        };
        let Some(code) = Code::parse(code_text) else { continue };
        let reason = reason.filter(|r| !r.is_empty());
        out.push(Allow { code, reason, line: comment.line, end_line: comment.end_line });
    }
    out
}

/// Marks tokens inside `#[cfg(test)] mod { ... }` regions and `#[test]`
/// functions. Depth-tracked on braces; attributes are recognised as the
/// token sequence `# [ cfg ( test ) ]` / `# [ test ]`.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut depth: i64 = 0;
    // Stack of depths at which a test region opened.
    let mut test_depths: Vec<i64> = Vec::new();
    let mut pending_attr = false;
    let mut i = 0;
    while i < tokens.len() {
        let tok = &tokens[i].tok;
        let is_test_attr = |j: usize| -> Option<usize> {
            // Returns the index just past the attribute when tokens[j..]
            // start with #[cfg(test)] or #[test] (or #[cfg(test, ...)]).
            if tokens.get(j).map(|t| &t.tok) != Some(&Tok::Punct('#')) {
                return None;
            }
            if tokens.get(j + 1).map(|t| &t.tok) != Some(&Tok::Punct('[')) {
                return None;
            }
            match tokens.get(j + 2).map(|t| &t.tok) {
                Some(Tok::Ident(name)) if name == "test" => {
                    if tokens.get(j + 3).map(|t| &t.tok) == Some(&Tok::Punct(']')) {
                        Some(j + 4)
                    } else {
                        None
                    }
                }
                Some(Tok::Ident(name)) if name == "cfg" => {
                    if tokens.get(j + 3).map(|t| &t.tok) != Some(&Tok::Punct('(')) {
                        return None;
                    }
                    match tokens.get(j + 4).map(|t| &t.tok) {
                        Some(Tok::Ident(arg)) if arg == "test" => {
                            // Scan to the closing `]`.
                            let mut k = j + 5;
                            let mut par = 1i64;
                            while k < tokens.len() && par > 0 {
                                match tokens[k].tok {
                                    Tok::Punct('(') => par += 1,
                                    Tok::Punct(')') => par -= 1,
                                    _ => {}
                                }
                                k += 1;
                            }
                            if tokens.get(k).map(|t| &t.tok) == Some(&Tok::Punct(']')) {
                                Some(k + 1)
                            } else {
                                None
                            }
                        }
                        _ => None,
                    }
                }
                _ => None,
            }
        };
        if let Some(next) = is_test_attr(i) {
            pending_attr = true;
            i = next;
            continue;
        }
        match tok {
            Tok::Punct('{') => {
                depth += 1;
                if pending_attr {
                    // The body that this attribute gates starts here.
                    test_depths.push(depth);
                    pending_attr = false;
                }
            }
            Tok::Punct('}') => {
                if test_depths.last().is_some_and(|&d| d == depth) {
                    test_depths.pop();
                }
                depth -= 1;
            }
            Tok::Punct(';') if pending_attr => {
                // `#[cfg(test)] use ...;` — attribute gated a single item.
                pending_attr = false;
            }
            _ => {}
        }
        if !test_depths.is_empty() {
            in_test[i] = true;
        }
        i += 1;
    }
    in_test
}

/// Lints one file's source. `rel` is the workspace-relative path used
/// for classification and messages.
pub fn lint_source(rel: &str, source: &str, config: &Config) -> Vec<Finding> {
    let lexed = lex_file(source);
    let class = classify(rel);
    let n_lines = lexed.n_lines.max(1);

    let mut safety_lines = vec![false; n_lines + 2];
    let mut allows = Vec::new();
    for comment in &lexed.comments {
        let trimmed = comment.text.trim_start_matches(['/', '*', '!']).trim_start();
        if trimmed.to_ascii_lowercase().starts_with("safety:") {
            safety_lines[comment.line..=comment.end_line.min(n_lines)]
                .iter_mut()
                .for_each(|l| *l = true);
        }
        allows.extend(parse_allows(comment));
    }

    let mut code_lines = vec![false; n_lines + 2];
    for token in &lexed.tokens {
        if token.line <= n_lines {
            code_lines[token.line] = true;
        }
    }

    let scan = FileScan {
        rel,
        class,
        tokens: &lexed.tokens,
        in_test: mark_test_regions(&lexed.tokens),
        safety_lines,
        code_lines,
        allows,
    };

    let mut findings = Vec::new();
    lint_d001(&scan, config, &mut findings);
    lint_d002(&scan, config, &mut findings);
    lint_d003(&scan, &mut findings);
    lint_s001(&scan, &mut findings);
    lint_p001(&scan, &mut findings);
    lint_f001(&scan, &mut findings);

    apply_suppressions(&scan, &mut findings);
    findings.sort_by_key(|f| (f.line, f.code));
    findings
}

fn lex_file(source: &str) -> Lexed {
    lexer::lex(source)
}

/// Marks findings covered by a valid allow. An allow covers its own
/// line(s) and, when written on comment-only lines, the next code line
/// below it.
fn apply_suppressions(scan: &FileScan<'_>, findings: &mut [Finding]) {
    suppress_core(&scan.allows, &scan.code_lines, findings.iter_mut());
}

/// The suppression core, shared between the lexical linter (which holds
/// a full [`FileScan`]) and the analyzer (which re-derives the allow
/// facts from the lex it already has).
fn suppress_core<'a>(
    allows: &[Allow],
    code_lines: &[bool],
    findings: impl Iterator<Item = &'a mut Finding>,
) {
    if allows.is_empty() {
        return;
    }
    for finding in findings {
        for allow in allows {
            if allow.code != finding.code {
                continue;
            }
            let allow_on_comment_only_line =
                code_lines.get(allow.line).map(|has_code| !has_code).unwrap_or(true);
            let covers = if allow.end_line >= finding.line {
                // Same line (trailing comment) or a comment above that
                // hasn't started yet — only the same line counts here.
                allow.line <= finding.line
            } else {
                // Comment block above: the allow must sit on a
                // comment-only line, with only comment/blank lines
                // between it and the finding line (a trailing allow on
                // an unrelated code line never leaks downward).
                allow_on_comment_only_line
                    && (allow.end_line + 1..finding.line)
                        .all(|l| l >= code_lines.len() || !code_lines[l])
            };
            if covers {
                if allow.reason.is_some() {
                    finding.suppressed = true;
                    finding.reason = allow.reason.clone();
                } else {
                    finding.message.push_str(
                        " [lint:allow without a reason is ignored — write lint:allow(CODE, why)]",
                    );
                }
                break;
            }
        }
    }
}

/// Is `line` covered by a valid (reasoned) `lint:allow` for any of
/// `codes`? Used by the taint analysis: a wall-clock source the lexical
/// D002 lint excused with a reason (telemetry-only timing) must not
/// seed interprocedural taint either — the human already adjudicated
/// that call site.
pub(crate) fn line_excused(lexed: &Lexed, line: usize, codes: &[Code]) -> bool {
    let mut dummies: Vec<Finding> = codes
        .iter()
        .map(|&code| Finding {
            file: String::new(),
            line,
            code,
            message: String::new(),
            suppressed: false,
            reason: None,
        })
        .collect();
    let mut refs: Vec<&mut Finding> = dummies.iter_mut().collect();
    suppress_by_allows(lexed, &mut refs);
    dummies.iter().any(|f| f.suppressed)
}

/// Applies `lint:allow` suppressions to analyzer findings for one file,
/// deriving the allow list and code-line map from its lex.
pub(crate) fn suppress_by_allows(lexed: &Lexed, findings: &mut [&mut Finding]) {
    let n_lines = lexed.n_lines.max(1);
    let mut allows = Vec::new();
    for comment in &lexed.comments {
        allows.extend(parse_allows(comment));
    }
    let mut code_lines = vec![false; n_lines + 2];
    for token in &lexed.tokens {
        if token.line <= n_lines {
            code_lines[token.line] = true;
        }
    }
    suppress_core(&allows, &code_lines, findings.iter_mut().map(|f| &mut **f));
}

fn ident_is(tok: &Tok, name: &str) -> bool {
    matches!(tok, Tok::Ident(n) if n == name)
}

/// D001: HashMap/HashSet/RandomState anywhere in a determinism-critical
/// path (the fix is BTreeMap/BTreeSet or an explicit sort at the
/// boundary, at which point the name disappears from the file).
fn lint_d001(scan: &FileScan<'_>, config: &Config, findings: &mut Vec<Finding>) {
    if scan.class == FileClass::Test || !config.d001_applies(scan.rel) {
        return;
    }
    for (i, token) in scan.tokens.iter().enumerate() {
        if scan.in_test[i] {
            continue;
        }
        if let Tok::Ident(name) = &token.tok {
            if name == "HashMap" || name == "HashSet" || name == "RandomState" {
                findings.push(Finding {
                    file: scan.rel.to_string(),
                    line: token.line,
                    code: Code::D001,
                    message: format!(
                        "`{name}` in a determinism-critical path (iteration order feeds \
                         exports/journals); use BTreeMap/BTreeSet or sort at the boundary"
                    ),
                    suppressed: false,
                    reason: None,
                });
            }
        }
    }
}

/// D002: wall-clock / entropy sources outside the telemetry allowlist.
fn lint_d002(scan: &FileScan<'_>, config: &Config, findings: &mut Vec<Finding>) {
    if scan.class == FileClass::Test || config.d002_allowed(scan.rel) {
        return;
    }
    let toks = scan.tokens;
    for i in 0..toks.len() {
        if scan.in_test[i] {
            continue;
        }
        let qualified_now = |type_name: &str| -> bool {
            ident_is(&toks[i].tok, type_name)
                && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
                && toks.get(i + 3).is_some_and(|t| ident_is(&t.tok, "now"))
        };
        let source = if qualified_now("SystemTime") {
            Some("SystemTime::now")
        } else if qualified_now("Instant") {
            Some("Instant::now")
        } else if ident_is(&toks[i].tok, "from_entropy") {
            Some("from_entropy")
        } else if ident_is(&toks[i].tok, "thread_rng") {
            Some("thread_rng")
        } else {
            None
        };
        if let Some(source) = source {
            findings.push(Finding {
                file: scan.rel.to_string(),
                line: toks[i].line,
                code: Code::D002,
                message: format!(
                    "wall-clock/entropy source `{source}` outside the telemetry allowlist; \
                     results must not depend on time or machine entropy"
                ),
                suppressed: false,
                reason: None,
            });
        }
    }
}

/// D003: `seed_from_u64(...)` whose argument contains no identifier —
/// i.e. a constant seed that cannot derive from the grid-position
/// helpers (`split_seed`, the model-seed formula, or a caller-provided
/// seed).
fn lint_d003(scan: &FileScan<'_>, findings: &mut Vec<Finding>) {
    if scan.class == FileClass::Test {
        return;
    }
    let toks = scan.tokens;
    for i in 0..toks.len() {
        if scan.in_test[i] || !ident_is(&toks[i].tok, "seed_from_u64") {
            continue;
        }
        if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
            continue;
        }
        let mut depth = 1i64;
        let mut k = i + 2;
        let mut has_ident = false;
        let mut empty = true;
        while k < toks.len() && depth > 0 {
            match &toks[k].tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => depth -= 1,
                Tok::Ident(_) => has_ident = true,
                _ => {}
            }
            if depth > 0 {
                empty = false;
            }
            k += 1;
        }
        // `fn seed_from_u64(seed: u64)` declarations contain the
        // parameter identifier, so only literal-only argument lists fire.
        if !has_ident && !empty {
            findings.push(Finding {
                file: scan.rel.to_string(),
                line: toks[i].line,
                code: Code::D003,
                message: "RNG constructed from a constant seed; derive the seed from the \
                          grid-position helpers (split_seed / model-seed formula) or take it \
                          from the caller"
                    .to_string(),
                suppressed: false,
                reason: None,
            });
        }
    }
}

/// S001: `unsafe` block / `unsafe impl` / `unsafe trait` without a
/// `SAFETY:` comment on the same line or in the contiguous comment block
/// directly above.
fn lint_s001(scan: &FileScan<'_>, findings: &mut Vec<Finding>) {
    let toks = scan.tokens;
    for i in 0..toks.len() {
        if !ident_is(&toks[i].tok, "unsafe") {
            continue;
        }
        let next = toks.get(i + 1).map(|t| &t.tok);
        let what = match next {
            Some(Tok::Punct('{')) => "unsafe block",
            Some(Tok::Ident(n)) if n == "impl" => "unsafe impl",
            Some(Tok::Ident(n)) if n == "trait" => "unsafe trait",
            // `unsafe fn` bodies get explicit blocks via
            // deny(unsafe_op_in_unsafe_fn); the declaration itself is a
            // contract, not an assertion.
            _ => continue,
        };
        let line = toks[i].line;
        let mut covered = scan.safety_lines.get(line).copied().unwrap_or(false);
        if !covered {
            // Walk up through the contiguous comment/blank block.
            let mut l = line.saturating_sub(1);
            while l >= 1 {
                let has_code = scan.code_lines.get(l).copied().unwrap_or(false);
                if has_code {
                    break;
                }
                if scan.safety_lines.get(l).copied().unwrap_or(false) {
                    covered = true;
                    break;
                }
                if l == 1 {
                    break;
                }
                l -= 1;
            }
        }
        if !covered {
            findings.push(Finding {
                file: scan.rel.to_string(),
                line,
                code: Code::S001,
                message: format!("{what} without a `// SAFETY:` comment justifying it"),
                suppressed: false,
                reason: None,
            });
        }
    }
}

/// P001: `.unwrap()` / `.expect(` / `panic!` in library code.
fn lint_p001(scan: &FileScan<'_>, findings: &mut Vec<Finding>) {
    if scan.class != FileClass::Library {
        return;
    }
    let toks = scan.tokens;
    for i in 0..toks.len() {
        if scan.in_test[i] {
            continue;
        }
        let preceded_by_dot =
            i > 0 && matches!(toks[i - 1].tok, Tok::Punct('.'));
        let followed_by_paren =
            matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')));
        let what = match &toks[i].tok {
            Tok::Ident(n) if n == "unwrap" && preceded_by_dot && followed_by_paren => ".unwrap()",
            Tok::Ident(n) if n == "expect" && preceded_by_dot && followed_by_paren => ".expect(..)",
            Tok::Ident(n)
                if n == "panic"
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!'))) =>
            {
                "panic!"
            }
            _ => continue,
        };
        findings.push(Finding {
            file: scan.rel.to_string(),
            line: toks[i].line,
            code: Code::P001,
            message: format!(
                "`{what}` in library code; return an error (graceful degradation) or \
                 justify the invariant with lint:allow(P001, why)"
            ),
            suppressed: false,
            reason: None,
        });
    }
}

/// F001: `==` / `!=` where an adjacent operand token is a float literal.
fn lint_f001(scan: &FileScan<'_>, findings: &mut Vec<Finding>) {
    if scan.class != FileClass::Library {
        return;
    }
    let toks = scan.tokens;
    for i in 0..toks.len() {
        if scan.in_test[i] || !matches!(toks[i].tok, Tok::EqEq | Tok::NotEq) {
            continue;
        }
        let prev_float = i > 0 && matches!(toks[i - 1].tok, Tok::Float);
        let next_float = match toks.get(i + 1).map(|t| &t.tok) {
            Some(Tok::Float) => true,
            Some(Tok::Punct('-')) => matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Float)),
            _ => false,
        };
        if prev_float || next_float {
            let op = if matches!(toks[i].tok, Tok::EqEq) { "==" } else { "!=" };
            findings.push(Finding {
                file: scan.rel.to_string(),
                line: toks[i].line,
                code: Code::F001,
                message: format!(
                    "float `{op}` comparison against a literal; prefer an epsilon/total_cmp \
                     or justify exactness with lint:allow(F001, why)"
                ),
                suppressed: false,
                reason: None,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Workspace walking, baseline, reporting.

/// Recursively collects `.rs` files under the configured roots, sorted
/// for deterministic reporting. Skips `target`, VCS metadata and lint
/// fixture directories.
pub fn collect_files(root: &Path, config: &Config) -> std::io::Result<Vec<PathBuf>> {
    collect_rs_files(root, &config.roots)
}

/// Recursively collects `.rs` files under `roots`, sorted for
/// deterministic reporting (the analyzer scans a different root set
/// than the lexical linter, hence the root-list form).
pub fn collect_rs_files(root: &Path, roots: &[String]) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in roots {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if matches!(name, "target" | ".git" | "fixtures" | "results" | "node_modules") {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Result of linting a whole tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding (suppressed included), sorted by (file, line, code).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that count against the baseline (unsuppressed).
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// Active findings grouped by (file, code).
    pub fn counts(&self) -> BTreeMap<(String, Code), usize> {
        let mut counts: BTreeMap<(String, Code), usize> = BTreeMap::new();
        for finding in self.active() {
            *counts.entry((finding.file.clone(), finding.code)).or_insert(0) += 1;
        }
        counts
    }
}

/// Lints every collected file under `root`.
pub fn lint_tree(root: &Path, config: &Config) -> std::io::Result<Report> {
    let mut report = Report::default();
    for path in collect_files(root, config)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        report.findings.extend(lint_source(&rel, &source, config));
        report.files_scanned += 1;
    }
    report.findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.code).cmp(&(b.file.as_str(), b.line, b.code))
    });
    Ok(report)
}

/// The grandfathered findings: `(file, code) -> count`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Baselined counts.
    pub counts: BTreeMap<(String, Code), usize>,
}

impl Baseline {
    /// Parses the `CODE count path` line format. Unknown codes and
    /// malformed lines are errors — a corrupt baseline must not silently
    /// weaken the gate.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (code, count, path) = match (parts.next(), parts.next(), parts.next()) {
                (Some(c), Some(n), Some(p)) => (c, n, p),
                _ => return Err(format!("baseline line {}: expected `CODE count path`", i + 1)),
            };
            let code = Code::parse(code)
                .ok_or_else(|| format!("baseline line {}: unknown code `{code}`", i + 1))?;
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
            if count == 0 {
                return Err(format!("baseline line {}: zero-count entry is stale", i + 1));
            }
            if counts.insert((path.to_string(), code), count).is_some() {
                return Err(format!("baseline line {}: duplicate entry", i + 1));
            }
        }
        Ok(Baseline { counts })
    }

    /// Renders the canonical baseline file.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# demodq-lint baseline: grandfathered findings, `CODE count path` per line.\n\
             # Shrink-only: fix findings, then regenerate with `demodq-lint --write-baseline`.\n",
        );
        for ((path, code), count) in &self.counts {
            let _ = writeln!(out, "{} {count} {path}", code.name());
        }
        out
    }

    /// Builds a baseline from a report's active findings.
    pub fn from_report(report: &Report) -> Baseline {
        Baseline { counts: report.counts() }
    }
}

/// The gate verdict of a report against a baseline.
#[derive(Debug, Default)]
pub struct Verdict {
    /// (file, code, actual, baselined) where actual > baselined.
    pub new: Vec<(String, Code, usize, usize)>,
    /// (file, code, actual, baselined) where baselined > actual.
    pub stale: Vec<(String, Code, usize, usize)>,
}

impl Verdict {
    /// True when the tree matches the baseline exactly.
    pub fn clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Compares a report against the baseline. Over-baseline counts are new
/// findings; under-baseline counts are stale entries (the baseline must
/// shrink with the fix).
pub fn compare(report: &Report, baseline: &Baseline) -> Verdict {
    let counts = report.counts();
    let mut verdict = Verdict::default();
    let mut keys: Vec<&(String, Code)> = counts.keys().chain(baseline.counts.keys()).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        let actual = counts.get(key).copied().unwrap_or(0);
        let grandfathered = baseline.counts.get(key).copied().unwrap_or(0);
        if actual > grandfathered {
            verdict.new.push((key.0.clone(), key.1, actual, grandfathered));
        } else if actual < grandfathered {
            verdict.stale.push((key.0.clone(), key.1, actual, grandfathered));
        }
    }
    verdict
}

/// Compares only the given code scope of a report against the matching
/// slice of the baseline. The lexical linter and the analyzer share one
/// baseline file; each gates on its own codes ([`Code::LEXICAL`] /
/// [`Code::ANALYSIS`]) so neither sees the other's grandfathered
/// entries as stale.
pub fn compare_scoped(report: &Report, baseline: &Baseline, codes: &[Code]) -> Verdict {
    let in_scope = |c: &Code| codes.contains(c);
    let scoped_report = Report {
        findings: report.findings.iter().filter(|f| in_scope(&f.code)).cloned().collect(),
        files_scanned: report.files_scanned,
    };
    let scoped_baseline = Baseline {
        counts: baseline
            .counts
            .iter()
            .filter(|((_, c), _)| in_scope(c))
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
    };
    compare(&scoped_report, &scoped_baseline)
}

/// Rewrites the in-scope slice of a baseline from a report, preserving
/// the other tool's entries verbatim (`--write-baseline` must never
/// drop the sibling scope).
pub fn rewrite_baseline_scoped(old: &Baseline, report: &Report, codes: &[Code]) -> Baseline {
    let mut counts: BTreeMap<(String, Code), usize> = old
        .counts
        .iter()
        .filter(|((_, c), _)| !codes.contains(c))
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    for ((file, code), n) in Baseline::from_report(report).counts {
        if codes.contains(&code) {
            counts.insert((file, code), n);
        }
    }
    Baseline { counts }
}

/// Minimal JSON string escaping for the machine-readable output.
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/core/src/runner.rs"), FileClass::Library);
        assert_eq!(classify("vendor/rayon/src/lib.rs"), FileClass::Library);
        assert_eq!(classify("src/lib.rs"), FileClass::Library);
        assert_eq!(classify("crates/serve/src/main.rs"), FileClass::Binary);
        assert_eq!(classify("crates/bench/src/bin/loadgen.rs"), FileClass::Binary);
        assert_eq!(classify("tests/study_resume.rs"), FileClass::Test);
        assert_eq!(classify("crates/tabular/tests/proptests.rs"), FileClass::Test);
        assert_eq!(classify("examples/serve_quickstart.rs"), FileClass::Test);
    }

    #[test]
    fn baseline_roundtrip_and_validation() {
        let mut baseline = Baseline::default();
        baseline.counts.insert(("a/b.rs".to_string(), Code::P001), 3);
        baseline.counts.insert(("a/c.rs".to_string(), Code::F001), 1);
        let text = baseline.render();
        let parsed = Baseline::parse(&text).expect("roundtrip parses");
        assert_eq!(parsed, baseline);

        assert!(Baseline::parse("XYZ 1 a.rs").is_err());
        assert!(Baseline::parse("P001 zero a.rs").is_err());
        assert!(Baseline::parse("P001 0 a.rs").is_err());
        assert!(Baseline::parse("P001 1 a.rs\nP001 2 a.rs").is_err());
        assert!(Baseline::parse("# comment\n\n").expect("comments ok").counts.is_empty());
    }

    #[test]
    fn compare_detects_new_and_stale() {
        let mut report = Report::default();
        report.findings.push(Finding {
            file: "x.rs".to_string(),
            line: 1,
            code: Code::P001,
            message: String::new(),
            suppressed: false,
            reason: None,
        });
        let mut baseline = Baseline::default();
        baseline.counts.insert(("y.rs".to_string(), Code::F001), 2);
        let verdict = compare(&report, &baseline);
        assert_eq!(verdict.new.len(), 1);
        assert_eq!(verdict.stale.len(), 1);
        assert!(!verdict.clean());

        baseline.counts.clear();
        baseline.counts.insert(("x.rs".to_string(), Code::P001), 1);
        assert!(compare(&report, &baseline).clean());
    }

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
