//! The analyzer's AST: a deliberately small subset of Rust surface
//! syntax — items, functions, blocks, paths, calls, method calls,
//! macros and closures — which is exactly the structure the flow-aware
//! analyses (T001/L001/E001/K001) consume.
//!
//! Everything the parser cannot classify is skipped, never mis-parsed:
//! the AST over-approximates "what does this function call" and nothing
//! else. Expression *values* are not modelled; argument spans only
//! record whether they contain an identifier (enough to tell a
//! literal-only `seed_from_u64(42)` from a derived seed).

/// One parsed source file.
#[derive(Debug, Default)]
pub struct File {
    /// Workspace-relative path (forward slashes).
    pub rel: String,
    /// Crate name inferred from the path (`crates/<name>`, `vendor/<name>`,
    /// or the root package).
    pub krate: String,
    /// Top-level items, in source order.
    pub items: Vec<Item>,
}

/// A top-level or module-nested item.
#[derive(Debug)]
pub enum Item {
    /// `mod name { ... }` (inline). `mod name;` declarations are dropped —
    /// module identity is derived from file paths, not `mod` statements.
    Mod(ModItem),
    /// A free function.
    Fn(FnItem),
    /// `impl [Trait for] Type { ... }` — methods carry the type name.
    Impl(ImplItem),
    /// `trait Name { ... }` — default method bodies are analysed too.
    Trait(TraitItem),
}

/// An inline module.
#[derive(Debug)]
pub struct ModItem {
    /// Module name.
    pub name: String,
    /// `true` when the module is gated `#[cfg(test)]`.
    pub cfg_test: bool,
    /// Nested items.
    pub items: Vec<Item>,
}

/// A function (free, method, or trait default).
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// `true` for `#[test]` / `#[cfg(test)]`-gated functions.
    pub is_test: bool,
    /// The body; `None` for bodyless declarations (trait methods,
    /// `extern` items).
    pub body: Option<Block>,
}

/// An `impl` block.
#[derive(Debug)]
pub struct ImplItem {
    /// The implemented type's name (last path segment of the self type).
    pub type_name: String,
    /// Methods and associated functions.
    pub fns: Vec<FnItem>,
    /// `true` when the impl is gated `#[cfg(test)]`.
    pub cfg_test: bool,
}

/// A trait definition (only its default-bodied methods matter here).
#[derive(Debug)]
pub struct TraitItem {
    /// Trait name.
    pub name: String,
    /// Declared methods (bodyless ones have `body: None`).
    pub fns: Vec<FnItem>,
}

/// A `{ ... }` block: the flat list of interesting expressions inside,
/// in source order. Control-flow keywords are not modelled — an `if`'s
/// two arms simply contribute their expressions in order, which is the
/// right over-approximation for "may call".
#[derive(Debug, Default)]
pub struct Block {
    /// Expressions in source order.
    pub exprs: Vec<Expr>,
}

/// An expression node the analyses care about.
#[derive(Debug)]
pub enum Expr {
    /// `path::to::f(args)` — a call through a (possibly one-segment) path.
    Call(CallExpr),
    /// `recv.name(args)` — a method call.
    MethodCall(MethodCallExpr),
    /// `name!(...)` / `name![...]` / `name!{...}`.
    Macro(MacroExpr),
    /// `|args| body` / `move |args| body`. Expression-bodied closures
    /// contribute their calls to the *enclosing* scope (documented
    /// approximation); block-bodied ones nest here.
    Closure(ClosureExpr),
    /// A nested `{ ... }` block (loop/if/match bodies and friends).
    Block(Block),
}

/// A path call.
#[derive(Debug)]
pub struct CallExpr {
    /// Path segments, e.g. `["SystemTime", "now"]` or `["helper"]`.
    pub path: Vec<String>,
    /// 1-based line of the call.
    pub line: usize,
    /// `true` when the argument span contains at least one identifier.
    pub args_have_ident: bool,
    /// Nested expressions found inside the argument list.
    pub args: Vec<Expr>,
}

/// A method call.
#[derive(Debug)]
pub struct MethodCallExpr {
    /// Method name.
    pub name: String,
    /// The trailing `ident(.ident)*` chain of the receiver, when the
    /// receiver is such a chain (e.g. `["self", "states"]` for
    /// `self.states.lock()`); empty for computed receivers.
    pub recv: Vec<String>,
    /// 1-based line of the call.
    pub line: usize,
    /// Number of top-level arguments (0 distinguishes `Mutex::lock()`
    /// from `io::Read::read(&mut buf)`).
    pub n_args: usize,
    /// `true` when the argument span contains at least one identifier.
    pub args_have_ident: bool,
    /// Nested expressions found inside the argument list.
    pub args: Vec<Expr>,
}

/// A macro invocation.
#[derive(Debug)]
pub struct MacroExpr {
    /// Macro name without the `!`.
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// Nested expressions found inside the macro body.
    pub body: Vec<Expr>,
}

/// A closure.
#[derive(Debug)]
pub struct ClosureExpr {
    /// 1-based line of the opening `|`.
    pub line: usize,
    /// The closure body's expressions (block-bodied closures only; an
    /// expression body contributes to the enclosing block instead).
    pub body: Vec<Expr>,
}

impl Block {
    /// Walks every expression in the block (depth-first, source order),
    /// including nested blocks, closures, macro bodies and call
    /// arguments.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Expr)) {
        walk_exprs(&self.exprs, visit);
    }
}

fn walk_exprs<'a>(exprs: &'a [Expr], visit: &mut impl FnMut(&'a Expr)) {
    for expr in exprs {
        visit(expr);
        match expr {
            Expr::Call(c) => walk_exprs(&c.args, visit),
            Expr::MethodCall(m) => walk_exprs(&m.args, visit),
            Expr::Macro(m) => walk_exprs(&m.body, visit),
            Expr::Closure(c) => walk_exprs(&c.body, visit),
            Expr::Block(b) => walk_exprs(&b.exprs, visit),
        }
    }
}

impl File {
    /// Every function in the file with its module path (inline `mod`s
    /// below the file) and owning type (for impl methods), depth-first.
    pub fn functions(&self) -> Vec<FnRef<'_>> {
        let mut out = Vec::new();
        collect_fns(&self.items, &mut Vec::new(), None, false, &mut out);
        out
    }
}

/// A function together with where it sits.
#[derive(Debug)]
pub struct FnRef<'a> {
    /// The function.
    pub item: &'a FnItem,
    /// Inline-module path inside the file (not including the file itself).
    pub modules: Vec<String>,
    /// Impl/trait type name for methods, `None` for free fns.
    pub owner: Option<&'a str>,
    /// True when the fn or an enclosing mod/impl is `#[cfg(test)]`-gated.
    pub in_test: bool,
}

fn collect_fns<'a>(
    items: &'a [Item],
    modules: &mut Vec<String>,
    owner: Option<&'a str>,
    in_test: bool,
    out: &mut Vec<FnRef<'a>>,
) {
    for item in items {
        match item {
            Item::Fn(f) => out.push(FnRef {
                item: f,
                modules: modules.clone(),
                owner,
                in_test: in_test || f.is_test,
            }),
            Item::Mod(m) => {
                modules.push(m.name.clone());
                collect_fns(&m.items, modules, None, in_test || m.cfg_test, out);
                modules.pop();
            }
            Item::Impl(i) => {
                for f in &i.fns {
                    out.push(FnRef {
                        item: f,
                        modules: modules.clone(),
                        owner: Some(&i.type_name),
                        in_test: in_test || i.cfg_test || f.is_test,
                    });
                }
            }
            Item::Trait(t) => {
                for f in &t.fns {
                    out.push(FnRef {
                        item: f,
                        modules: modules.clone(),
                        owner: Some(&t.name),
                        in_test: in_test || f.is_test,
                    });
                }
            }
        }
    }
}
