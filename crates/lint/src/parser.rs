//! A recursive-descent parser for the Rust subset the analyzer needs:
//! items (`mod`/`fn`/`impl`/`trait`), blocks, paths, calls, method
//! calls, macro invocations and closures, built directly on the
//! [`crate::lexer`] token stream.
//!
//! The parser is **total and error-tolerant**: it never fails and never
//! loops — anything it cannot classify is skipped token-by-token, and
//! every skipping helper is bounded. The produced AST over-approximates
//! "which calls can this function make", which is the only question the
//! analyses ask of it. Known, deliberate approximations:
//!
//! * expression-bodied closures contribute their calls to the enclosing
//!   scope (block-bodied closures nest properly);
//! * `if`/`match`/`loop` control flow is flattened — both arms "happen";
//! * nested `fn` items inside bodies are inlined into the enclosing
//!   function;
//! * type information does not exist: method calls are resolved by name.

use crate::ast::{
    Block, CallExpr, ClosureExpr, Expr, File, FnItem, ImplItem, Item, MacroExpr, MethodCallExpr,
    ModItem, TraitItem,
};
use crate::lexer::{self, Lexed, Tok, Token};

/// A parsed file plus the raw lex it came from (the lex carries the
/// comments that drive `lint:allow` suppressions and SAFETY tracking).
pub struct Parsed {
    /// The AST.
    pub file: File,
    /// The underlying lex.
    pub lexed: Lexed,
}

/// Infers the crate name from a workspace-relative path.
pub fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") | Some("vendor") => parts.next().unwrap_or("unknown").to_string(),
        // Root package sources, integration tests, examples.
        _ => "demodq".to_string(),
    }
}

/// Parses one source file into the analyzer AST.
pub fn parse_source(rel: &str, source: &str) -> Parsed {
    let lexed = lexer::lex(source);
    let mut parser = Parser { toks: &lexed.tokens, pos: 0, prev: None };
    let items = parser.parse_items(false);
    Parsed { file: File { rel: rel.to_string(), krate: crate_of(rel), items }, lexed }
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    /// Last consumed token kind (closure-start disambiguation).
    prev: Option<Tok>,
}

/// Attribute flags pending application to the next item.
#[derive(Default, Clone, Copy)]
struct PendingAttrs {
    test: bool,
    cfg_test: bool,
}

impl<'a> Parser<'a> {
    fn peek(&self, ahead: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + ahead).map(|t| &t.tok)
    }

    fn line(&self) -> usize {
        self.toks.get(self.pos).map(|t| t.line).unwrap_or(0)
    }

    fn bump(&mut self) {
        if let Some(t) = self.toks.get(self.pos) {
            self.prev = Some(t.tok.clone());
        }
        self.pos += 1;
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(self.peek(0), Some(Tok::Punct(p)) if *p == c)
    }

    fn ident_at(&self, ahead: usize) -> Option<&'a str> {
        match self.peek(ahead) {
            Some(Tok::Ident(name)) => Some(name.as_str()),
            _ => None,
        }
    }

    // -- item level ---------------------------------------------------------

    /// Parses items until EOF, or until the matching `}` when
    /// `until_close` is set (the `}` is consumed).
    fn parse_items(&mut self, until_close: bool) -> Vec<Item> {
        let mut items = Vec::new();
        let mut pending = PendingAttrs::default();
        while self.pos < self.toks.len() {
            if until_close && self.at_punct('}') {
                self.bump();
                break;
            }
            match self.peek(0) {
                Some(Tok::Punct('#')) => {
                    let attrs = self.parse_attribute();
                    pending.test |= attrs.test;
                    pending.cfg_test |= attrs.cfg_test;
                }
                Some(Tok::Ident(kw)) => match kw.as_str() {
                    "fn" => {
                        items.push(Item::Fn(self.parse_fn(pending)));
                        pending = PendingAttrs::default();
                    }
                    "mod" => {
                        if let Some(m) = self.parse_mod(pending) {
                            items.push(Item::Mod(m));
                        }
                        pending = PendingAttrs::default();
                    }
                    "impl" => {
                        items.push(Item::Impl(self.parse_impl(pending)));
                        pending = PendingAttrs::default();
                    }
                    "trait" => {
                        items.push(Item::Trait(self.parse_trait()));
                        pending = PendingAttrs::default();
                    }
                    "struct" | "enum" | "union" => {
                        self.bump();
                        self.skip_to_semi_or_braces();
                        pending = PendingAttrs::default();
                    }
                    "use" | "type" | "static" | "const" | "extern" | "macro_rules" => {
                        // `const fn` / `unsafe extern "C" fn` are handled by
                        // the modifier pass below; a bare `const`/`static`/
                        // `use`/`type` item is skipped to its `;`, and
                        // `extern "C" { ... }` / `macro_rules! m { ... }`
                        // to their closing brace.
                        if (kw == "const" || kw == "extern") && self.fn_follows_modifiers() {
                            self.bump();
                            continue;
                        }
                        self.bump();
                        self.skip_to_semi_or_braces();
                        pending = PendingAttrs::default();
                    }
                    "pub" | "unsafe" | "async" | "default" => {
                        self.bump();
                        if self.at_punct('(') {
                            self.skip_delimited('(', ')');
                        }
                    }
                    _ => self.bump(),
                },
                Some(_) => self.bump(),
                None => break,
            }
        }
        items
    }

    /// After a `const`/`extern` modifier, does a `fn` keyword follow
    /// (within the `extern "C" fn` / `const fn` shapes)?
    fn fn_follows_modifiers(&self) -> bool {
        let mut k = 1;
        while k < 6 {
            match self.peek(k) {
                Some(Tok::Str) => k += 1, // the "C" in extern "C" fn
                Some(Tok::Ident(n)) if n == "fn" => return true,
                Some(Tok::Ident(n)) if n == "unsafe" || n == "extern" => k += 1,
                _ => return false,
            }
        }
        false
    }

    /// Consumes a `#[...]` / `#![...]` attribute, classifying
    /// `#[test]` and `#[cfg(test, ...)]`.
    fn parse_attribute(&mut self) -> PendingAttrs {
        let mut out = PendingAttrs::default();
        self.bump(); // '#'
        if self.at_punct('!') {
            self.bump();
        }
        if !self.at_punct('[') {
            return out;
        }
        // Inspect the head of the attribute before skipping it whole.
        match self.ident_at(1) {
            Some("test") if matches!(self.peek(2), Some(Tok::Punct(']'))) => out.test = true,
            // #[cfg(test)] / #[cfg(test, feature = "...")] — `test`
            // must be the first argument, same as the lexical lint.
            Some("cfg")
                if matches!(self.peek(2), Some(Tok::Punct('(')))
                    && self.ident_at(3) == Some("test") =>
            {
                out.cfg_test = true;
            }
            _ => {}
        }
        self.skip_delimited('[', ']');
        out
    }

    /// Parses `fn name ...(...) ... { body }` (cursor on `fn`). Bodyless
    /// declarations (`;`) produce `body: None`.
    fn parse_fn(&mut self, pending: PendingAttrs) -> FnItem {
        let line = self.line();
        self.bump(); // fn
        let name = match self.peek(0) {
            Some(Tok::Ident(n)) => {
                let n = n.clone();
                self.bump();
                n
            }
            _ => String::from("<anon>"),
        };
        // Signature: skip generics/params/return type up to `{` or `;`.
        let body = if self.skip_signature() { Some(self.parse_block()) } else { None };
        FnItem { name, line, is_test: pending.test || pending.cfg_test, body }
    }

    /// Skips a fn signature up to its body. Returns `true` when a `{`
    /// body follows (cursor on the `{`), `false` for `;` declarations
    /// (the `;` is consumed).
    fn skip_signature(&mut self) -> bool {
        let mut guard = 0usize;
        while self.pos < self.toks.len() && guard < 100_000 {
            guard += 1;
            match self.peek(0) {
                Some(Tok::Punct('{')) => return true,
                Some(Tok::Punct(';')) => {
                    self.bump();
                    return false;
                }
                Some(Tok::Punct('<')) => self.skip_angles(),
                Some(Tok::Punct('(')) => self.skip_delimited('(', ')'),
                Some(Tok::Punct('[')) => self.skip_delimited('[', ']'),
                Some(Tok::Punct('-')) if matches!(self.peek(1), Some(Tok::Punct('>'))) => {
                    self.bump();
                    self.bump();
                }
                _ => self.bump(),
            }
        }
        false
    }

    /// Parses `mod name { items }`; returns `None` for `mod name;`.
    fn parse_mod(&mut self, pending: PendingAttrs) -> Option<ModItem> {
        self.bump(); // mod
        let name = match self.peek(0) {
            Some(Tok::Ident(n)) => {
                let n = n.clone();
                self.bump();
                n
            }
            _ => return None,
        };
        if self.at_punct('{') {
            self.bump();
            let items = self.parse_items(true);
            Some(ModItem { name, cfg_test: pending.test || pending.cfg_test, items })
        } else {
            if self.at_punct(';') {
                self.bump();
            }
            None
        }
    }

    /// Parses `impl [<...>] [Trait for] Type { assoc items }`.
    fn parse_impl(&mut self, pending: PendingAttrs) -> ImplItem {
        self.bump(); // impl
        let mut idents: Vec<String> = Vec::new();
        let mut after_for: Option<usize> = None;
        let mut guard = 0usize;
        while self.pos < self.toks.len() && guard < 100_000 {
            guard += 1;
            match self.peek(0) {
                Some(Tok::Punct('{')) => break,
                Some(Tok::Punct(';')) => {
                    // `impl Trait for Type;` style (rare) — no body.
                    self.bump();
                    return ImplItem {
                        type_name: impl_type_name(&idents, after_for),
                        fns: Vec::new(),
                        cfg_test: pending.test || pending.cfg_test,
                    };
                }
                Some(Tok::Punct('<')) => self.skip_angles(),
                Some(Tok::Punct('(')) => self.skip_delimited('(', ')'),
                Some(Tok::Punct('-')) if matches!(self.peek(1), Some(Tok::Punct('>'))) => {
                    self.bump();
                    self.bump();
                }
                Some(Tok::Ident(n)) if n == "for" => {
                    after_for = Some(idents.len());
                    self.bump();
                }
                Some(Tok::Ident(n)) if n == "where" => {
                    // Everything after `where` is bounds, not the type.
                    self.skip_where_clause();
                    break;
                }
                Some(Tok::Ident(n)) => {
                    idents.push(n.clone());
                    self.bump();
                }
                _ => self.bump(),
            }
        }
        let type_name = impl_type_name(&idents, after_for);
        let mut fns = Vec::new();
        if self.at_punct('{') {
            self.bump();
            for item in self.parse_items(true) {
                if let Item::Fn(f) = item {
                    fns.push(f);
                }
            }
        }
        ImplItem { type_name, fns, cfg_test: pending.test || pending.cfg_test }
    }

    /// Parses `trait Name ... { items }` (default method bodies kept).
    fn parse_trait(&mut self) -> TraitItem {
        self.bump(); // trait
        let name = match self.peek(0) {
            Some(Tok::Ident(n)) => {
                let n = n.clone();
                self.bump();
                n
            }
            _ => String::from("<anon>"),
        };
        // Supertraits / generics / where clause, up to the body.
        let mut guard = 0usize;
        while self.pos < self.toks.len() && guard < 100_000 {
            guard += 1;
            match self.peek(0) {
                Some(Tok::Punct('{')) => break,
                Some(Tok::Punct(';')) => {
                    self.bump();
                    return TraitItem { name, fns: Vec::new() };
                }
                Some(Tok::Punct('<')) => self.skip_angles(),
                Some(Tok::Punct('(')) => self.skip_delimited('(', ')'),
                Some(Tok::Punct('-')) if matches!(self.peek(1), Some(Tok::Punct('>'))) => {
                    self.bump();
                    self.bump();
                }
                _ => self.bump(),
            }
        }
        let mut fns = Vec::new();
        if self.at_punct('{') {
            self.bump();
            for item in self.parse_items(true) {
                if let Item::Fn(f) = item {
                    fns.push(f);
                }
            }
        }
        TraitItem { name, fns }
    }

    /// Skips a `where` clause up to (not including) the `{` that opens
    /// the item body, or through a terminating `;`.
    fn skip_where_clause(&mut self) {
        self.bump(); // where
        let mut guard = 0usize;
        while self.pos < self.toks.len() && guard < 100_000 {
            guard += 1;
            match self.peek(0) {
                Some(Tok::Punct('{')) => return,
                Some(Tok::Punct(';')) => return,
                Some(Tok::Punct('<')) => self.skip_angles(),
                Some(Tok::Punct('(')) => self.skip_delimited('(', ')'),
                Some(Tok::Punct('-')) if matches!(self.peek(1), Some(Tok::Punct('>'))) => {
                    self.bump();
                    self.bump();
                }
                _ => self.bump(),
            }
        }
    }

    /// Skips a non-fn item body: to the first top-level `;`, or through a
    /// balanced `{ ... }` when one opens first.
    fn skip_to_semi_or_braces(&mut self) {
        let mut guard = 0usize;
        while self.pos < self.toks.len() && guard < 200_000 {
            guard += 1;
            match self.peek(0) {
                Some(Tok::Punct(';')) => {
                    self.bump();
                    return;
                }
                Some(Tok::Punct('{')) => {
                    self.skip_delimited('{', '}');
                    return;
                }
                Some(Tok::Punct('(')) => self.skip_delimited('(', ')'),
                Some(Tok::Punct('[')) => self.skip_delimited('[', ']'),
                Some(Tok::Punct('<')) => self.skip_angles(),
                _ => self.bump(),
            }
        }
    }

    /// Skips a balanced `open ... close` region, cursor on `open`.
    fn skip_delimited(&mut self, open: char, close: char) {
        let mut depth = 0i64;
        let mut guard = 0usize;
        while self.pos < self.toks.len() && guard < 500_000 {
            guard += 1;
            match self.peek(0) {
                Some(Tok::Punct(c)) if *c == open => depth += 1,
                Some(Tok::Punct(c)) if *c == close => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Skips a balanced `< ... >` region (generics/turbofish), cursor on
    /// `<`. `->` arrows inside do not count as closers. Bails out after a
    /// bounded number of tokens (a `<` that was really a comparison).
    fn skip_angles(&mut self) {
        let start = self.pos;
        let mut depth = 0i64;
        let mut guard = 0usize;
        while self.pos < self.toks.len() && guard < 1_000 {
            guard += 1;
            match self.peek(0) {
                Some(Tok::Punct('-')) if matches!(self.peek(1), Some(Tok::Punct('>'))) => {
                    self.bump();
                }
                Some(Tok::Punct('<')) => depth += 1,
                Some(Tok::Punct('>')) => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                Some(Tok::Punct(';')) | Some(Tok::Punct('{')) | Some(Tok::Punct('}')) => {
                    // A `<` that opened generics never runs into these;
                    // this was a comparison — rewind past just the `<`.
                    self.pos = start + 1;
                    return;
                }
                None => break,
                _ => {}
            }
            self.bump();
        }
        self.pos = (start + 1).min(self.toks.len());
    }

    // -- expression level ---------------------------------------------------

    /// Parses a `{ ... }` block, cursor on the `{`.
    fn parse_block(&mut self) -> Block {
        self.bump(); // '{'
        self.prev = Some(Tok::Punct('{'));
        Block { exprs: self.parse_exprs_until(Some('}')) }
    }

    /// Walks expression-position tokens until the matching closer (which
    /// is consumed) or EOF, producing the flat list of interesting nodes.
    fn parse_exprs_until(&mut self, close: Option<char>) -> Vec<Expr> {
        let mut exprs = Vec::new();
        while self.pos < self.toks.len() {
            match self.peek(0) {
                Some(Tok::Punct(c)) if Some(*c) == close => {
                    self.bump();
                    return exprs;
                }
                Some(Tok::Punct('}')) => {
                    // Unbalanced close for our context: let the caller
                    // deal with it (error tolerance — don't consume).
                    return exprs;
                }
                Some(Tok::Punct('{')) => {
                    exprs.push(Expr::Block(self.parse_block()));
                }
                Some(Tok::Punct('(')) => {
                    self.bump();
                    self.prev = Some(Tok::Punct('('));
                    exprs.extend(self.parse_exprs_until(Some(')')));
                    self.prev = Some(Tok::Punct(')'));
                }
                Some(Tok::Punct('[')) => {
                    self.bump();
                    self.prev = Some(Tok::Punct('['));
                    exprs.extend(self.parse_exprs_until(Some(']')));
                    self.prev = Some(Tok::Punct(']'));
                }
                Some(Tok::Punct('#')) => {
                    self.bump();
                    if self.at_punct('!') {
                        self.bump();
                    }
                    if self.at_punct('[') {
                        self.skip_delimited('[', ']');
                    }
                }
                Some(Tok::Punct('.')) => self.parse_dot(&mut exprs),
                Some(Tok::Punct('|')) => {
                    if self.closure_starts_here() {
                        if let Some(expr) = self.parse_closure() {
                            exprs.push(expr);
                            continue;
                        }
                    }
                    self.bump();
                }
                Some(Tok::Ident(kw)) if kw == "move" && matches!(self.peek(1), Some(Tok::Punct('|'))) => {
                    self.bump();
                    if let Some(expr) = self.parse_closure() {
                        exprs.push(expr);
                    }
                }
                Some(Tok::Ident(kw)) if kw == "fn" && self.ident_at(1).is_some() => {
                    // Nested fn item: its calls attribute to the encloser.
                    self.bump();
                    self.bump(); // name
                    if self.skip_signature() {
                        exprs.push(Expr::Block(self.parse_block()));
                    }
                }
                Some(Tok::Ident(_)) => {
                    if let Some(expr) = self.parse_path_expr() {
                        exprs.push(expr);
                    }
                }
                Some(_) => self.bump(),
                None => break,
            }
        }
        exprs
    }

    /// `.` in expression position: method call, field access, tuple
    /// index, `.await`, or a range `..`.
    fn parse_dot(&mut self, exprs: &mut Vec<Expr>) {
        let dot_index = self.pos;
        self.bump(); // '.'
        let Some(Tok::Ident(name)) = self.peek(0) else {
            return; // `.0` tuple index, `..` range — nothing to do
        };
        let name = name.clone();
        let line = self.line();
        // Turbofish between name and args: `.collect::<Vec<_>>()`.
        let mut k = 1;
        if matches!(self.peek(1), Some(Tok::Punct(':')))
            && matches!(self.peek(2), Some(Tok::Punct(':')))
            && matches!(self.peek(3), Some(Tok::Punct('<')))
        {
            // Consume name + `::`, then the angles; then expect `(`.
            self.bump(); // name
            self.bump(); // ':'
            self.bump(); // ':'
            self.skip_angles();
            if self.at_punct('(') {
                let recv = receiver_chain(self.toks, dot_index);
                let (args, n_args, args_have_ident) = self.parse_args();
                exprs.push(Expr::MethodCall(MethodCallExpr {
                    name,
                    recv,
                    line,
                    n_args,
                    args_have_ident,
                    args,
                }));
            }
            return;
        }
        if matches!(self.peek(k), Some(Tok::Punct('('))) {
            self.bump(); // name
            let recv = receiver_chain(self.toks, dot_index);
            let (args, n_args, args_have_ident) = self.parse_args();
            exprs.push(Expr::MethodCall(MethodCallExpr {
                name,
                recv,
                line,
                n_args,
                args_have_ident,
                args,
            }));
        } else {
            // Field access / `.await`.
            self.bump();
            k = 0;
            let _ = k;
        }
    }

    /// An identifier in expression position: a (possibly multi-segment)
    /// path, optionally a call or a macro invocation.
    fn parse_path_expr(&mut self) -> Option<Expr> {
        let line = self.line();
        let mut path: Vec<String> = Vec::new();
        while let Some(Tok::Ident(seg)) = self.peek(0) {
            path.push(seg.clone());
            self.bump();
            // `::` continuation (segment or turbofish).
            if matches!(self.peek(0), Some(Tok::Punct(':')))
                && matches!(self.peek(1), Some(Tok::Punct(':')))
            {
                match self.peek(2) {
                    Some(Tok::Ident(_)) => {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    Some(Tok::Punct('<')) => {
                        self.bump();
                        self.bump();
                        self.skip_angles();
                        // `Vec::<u8>::new(...)` — the path may continue.
                        if matches!(self.peek(0), Some(Tok::Punct(':')))
                            && matches!(self.peek(1), Some(Tok::Punct(':')))
                            && matches!(self.peek(2), Some(Tok::Ident(_)))
                        {
                            self.bump();
                            self.bump();
                            continue;
                        }
                        break;
                    }
                    _ => break,
                }
            }
            break;
        }
        if path.is_empty() {
            self.bump();
            return None;
        }
        // Macro invocation `name!(..)` / `name![..]` / `name!{..}`.
        if path.len() == 1
            && matches!(self.peek(0), Some(Tok::Punct('!')))
            && matches!(
                self.peek(1),
                Some(Tok::Punct('(')) | Some(Tok::Punct('[')) | Some(Tok::Punct('{'))
            )
        {
            let name = path.pop().unwrap_or_default();
            self.bump(); // '!'
            let body = match self.peek(0) {
                Some(Tok::Punct('(')) => {
                    self.bump();
                    self.parse_exprs_until(Some(')'))
                }
                Some(Tok::Punct('[')) => {
                    self.bump();
                    self.parse_exprs_until(Some(']'))
                }
                _ => {
                    self.bump();
                    self.parse_exprs_until(Some('}'))
                }
            };
            return Some(Expr::Macro(MacroExpr { name, line, body }));
        }
        if self.at_punct('(') {
            let (args, _n, args_have_ident) = self.parse_args();
            return Some(Expr::Call(CallExpr { path, line, args_have_ident, args }));
        }
        None
    }

    /// Parses a `( ... )` argument list, cursor on `(`. Returns the
    /// nested expressions, the top-level argument count, and whether any
    /// identifier appears in the span.
    fn parse_args(&mut self) -> (Vec<Expr>, usize, bool) {
        self.bump(); // '('
        self.prev = Some(Tok::Punct('('));
        let mut exprs = Vec::new();
        let mut commas = 0usize;
        let mut any_token = false;
        let mut has_ident = false;
        loop {
            match self.peek(0) {
                Some(Tok::Punct(')')) => {
                    self.bump();
                    break;
                }
                Some(Tok::Punct('}')) | None => break, // tolerance
                Some(Tok::Punct(',')) => {
                    commas += 1;
                    any_token = true;
                    self.bump();
                }
                Some(Tok::Punct('{')) => {
                    any_token = true;
                    let before = self.pos;
                    exprs.push(Expr::Block(self.parse_block()));
                    has_ident |= self.span_has_ident(before);
                }
                Some(Tok::Punct('(')) => {
                    any_token = true;
                    let before = self.pos;
                    self.bump();
                    exprs.extend(self.parse_exprs_until(Some(')')));
                    has_ident |= self.span_has_ident(before);
                }
                Some(Tok::Punct('[')) => {
                    any_token = true;
                    let before = self.pos;
                    self.bump();
                    exprs.extend(self.parse_exprs_until(Some(']')));
                    has_ident |= self.span_has_ident(before);
                }
                Some(Tok::Punct('.')) => {
                    any_token = true;
                    self.parse_dot(&mut exprs);
                }
                Some(Tok::Punct('|')) => {
                    any_token = true;
                    if self.closure_starts_here() {
                        if let Some(expr) = self.parse_closure() {
                            exprs.push(expr);
                            continue;
                        }
                    }
                    self.bump();
                }
                Some(Tok::Ident(kw)) if kw == "move" && matches!(self.peek(1), Some(Tok::Punct('|'))) => {
                    any_token = true;
                    self.bump();
                    if let Some(expr) = self.parse_closure() {
                        exprs.push(expr);
                    }
                }
                Some(Tok::Ident(_)) => {
                    any_token = true;
                    has_ident = true;
                    if let Some(expr) = self.parse_path_expr() {
                        exprs.push(expr);
                    }
                }
                Some(_) => {
                    any_token = true;
                    self.bump();
                }
            }
        }
        let n_args = if any_token { commas + 1 } else { 0 };
        (exprs, n_args, has_ident)
    }

    /// Did the region consumed since `before` contain an identifier?
    fn span_has_ident(&self, before: usize) -> bool {
        self.toks[before..self.pos.min(self.toks.len())]
            .iter()
            .any(|t| matches!(t.tok, Tok::Ident(_)))
    }

    /// Is the `|` at the cursor a closure opener (vs binary or)? Decided
    /// from the previously consumed token: closures appear after
    /// delimiters, separators and `return`/`=`, never after an operand.
    fn closure_starts_here(&self) -> bool {
        match &self.prev {
            None => true,
            Some(Tok::Punct(c)) => matches!(c, '(' | ',' | '=' | '{' | ';' | ':' | '>'),
            Some(Tok::Ident(kw)) => matches!(kw.as_str(), "return" | "else" | "move" | "in"),
            _ => false,
        }
    }

    /// Parses `|params| body`, cursor on the opening `|`. Returns `None`
    /// (cursor restored) when no closing `|` appears nearby — the token
    /// was a binary `|` after all.
    fn parse_closure(&mut self) -> Option<Expr> {
        let start = self.pos;
        let line = self.line();
        self.bump(); // '|'
        let mut guard = 0usize;
        let mut depth = 0i64;
        // Scan the parameter list for the closing `|` at depth 0.
        while self.pos < self.toks.len() && guard < 200 {
            guard += 1;
            match self.peek(0) {
                Some(Tok::Punct('(')) | Some(Tok::Punct('[')) | Some(Tok::Punct('<')) => {
                    depth += 1;
                    self.bump();
                }
                Some(Tok::Punct(')')) | Some(Tok::Punct(']')) | Some(Tok::Punct('>')) => {
                    depth -= 1;
                    self.bump();
                }
                Some(Tok::Punct('|')) if depth <= 0 => {
                    self.bump();
                    // Block body nests; expression body contributes to
                    // the enclosing scope (the walker keeps going).
                    let body = if self.at_punct('{') {
                        self.parse_block().exprs
                    } else {
                        Vec::new()
                    };
                    return Some(Expr::Closure(ClosureExpr { line, body }));
                }
                Some(Tok::Punct('{')) | Some(Tok::Punct('}')) | Some(Tok::Punct(';')) | None => {
                    break; // not a closure — params never contain these
                }
                _ => self.bump(),
            }
        }
        self.pos = start;
        self.bump(); // consume the `|` as a plain operator
        None
    }
}

/// `impl` self-type name from the collected top-level idents.
fn impl_type_name(idents: &[String], after_for: Option<usize>) -> String {
    let slice = match after_for {
        Some(i) if i < idents.len() => &idents[i..],
        _ => idents,
    };
    slice.last().cloned().unwrap_or_else(|| String::from("<unknown>"))
}

/// The trailing `ident(.ident)*` chain immediately before the `.` at
/// `dot_index` — the method receiver, when it is a simple chain.
fn receiver_chain(toks: &[Token], dot_index: usize) -> Vec<String> {
    let mut chain: Vec<String> = Vec::new();
    let mut j = dot_index;
    loop {
        if j == 0 {
            break;
        }
        match &toks[j - 1].tok {
            Tok::Ident(name) => {
                chain.push(name.clone());
                j -= 1;
                // A preceding `.` continues the chain; `::` means the
                // head is a path segment — include it and stop.
                if j >= 1 && matches!(toks[j - 1].tok, Tok::Punct('.')) {
                    j -= 1;
                    continue;
                }
                break;
            }
            _ => break,
        }
    }
    chain.reverse();
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;

    fn parse(src: &str) -> File {
        parse_source("crates/demo/src/lib.rs", src).file
    }

    /// Flattens every call-ish node in a fn body to `name@line` strings.
    fn calls_of(file: &File, fn_name: &str) -> Vec<String> {
        let fns = file.functions();
        let f = fns
            .iter()
            .find(|f| f.item.name == fn_name)
            .unwrap_or_else(|| panic!("fn {fn_name} not parsed"));
        let mut out = Vec::new();
        if let Some(body) = &f.item.body {
            body.walk(&mut |e| match e {
                Expr::Call(c) => out.push(c.path.join("::")),
                Expr::MethodCall(m) => out.push(format!(".{}", m.name)),
                Expr::Macro(m) => out.push(format!("{}!", m.name)),
                _ => {}
            });
        }
        out
    }

    #[test]
    fn items_fns_and_impls_parse() {
        let src = r#"
            pub struct Foo { a: u8 }
            impl Foo {
                pub fn new() -> Foo { Foo { a: helper() } }
                fn private(&self) { self.a.to_string(); }
            }
            impl std::fmt::Display for Foo {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { write!(f, "x") }
            }
            mod inner {
                pub fn nested() { super::helper(); }
            }
            fn helper() -> u8 { 7 }
        "#;
        let file = parse(src);
        let fns = file.functions();
        let names: Vec<&str> = fns.iter().map(|f| f.item.name.as_str()).collect();
        assert_eq!(names, vec!["new", "private", "fmt", "nested", "helper"]);
        let new = fns.iter().find(|f| f.item.name == "new").expect("new");
        assert_eq!(new.owner, Some("Foo"));
        let fmt = fns.iter().find(|f| f.item.name == "fmt").expect("fmt");
        assert_eq!(fmt.owner, Some("Foo"), "impl Trait for Type owns by Type");
        let nested = fns.iter().find(|f| f.item.name == "nested").expect("nested");
        assert_eq!(nested.modules, vec!["inner".to_string()]);
        assert_eq!(calls_of(&file, "new"), vec!["helper"]);
    }

    #[test]
    fn method_calls_carry_receiver_chains() {
        let src = r#"
            fn f(&self) {
                let g = self.states.lock();
                REGISTRY.lock();
                foo().lock();
                self.deques[0].lock();
            }
        "#;
        let file = parse(src);
        let fns = file.functions();
        let body = fns[0].item.body.as_ref().expect("body");
        let mut methods = Vec::new();
        body.walk(&mut |e| {
            if let Expr::MethodCall(m) = e {
                methods.push((m.name.clone(), m.recv.clone(), m.n_args));
            }
        });
        assert_eq!(methods.len(), 4);
        assert_eq!(methods[0], ("lock".into(), vec!["self".into(), "states".into()], 0));
        assert_eq!(methods[1], ("lock".into(), vec!["REGISTRY".into()], 0));
        assert_eq!(methods[2].1, Vec::<String>::new(), "computed receiver has no chain");
        assert_eq!(methods[3].1, Vec::<String>::new(), "indexed receiver has no chain");
    }

    #[test]
    fn closures_and_macros_nest() {
        let src = r#"
            fn f(v: &[u64]) {
                v.iter().map(|x| helper(*x)).count();
                let g = move |a: u64| { deep(a); };
                let total = v.len() | 1; // binary or, not a closure
                println!("total {}", format!("{}", other()));
            }
        "#;
        let file = parse(src);
        let calls = calls_of(&file, "f");
        assert!(calls.contains(&"helper".to_string()), "{calls:?}");
        assert!(calls.contains(&"deep".to_string()), "{calls:?}");
        assert!(calls.contains(&"other".to_string()), "{calls:?}");
        assert!(calls.contains(&"println!".to_string()), "{calls:?}");
        assert!(calls.contains(&"format!".to_string()), "{calls:?}");
    }

    #[test]
    fn literal_vs_derived_call_arguments() {
        let src = r#"
            fn f(seed: u64) {
                Rng64::seed_from_u64(42);
                Rng64::seed_from_u64(seed ^ 0x9E37);
                Rng64::seed_from_u64(split_seed(7, 3));
            }
        "#;
        let file = parse(src);
        let fns = file.functions();
        let mut flags = Vec::new();
        fns[0].item.body.as_ref().expect("body").walk(&mut |e| {
            if let Expr::Call(c) = e {
                if c.path.last().map(String::as_str) == Some("seed_from_u64") {
                    flags.push(c.args_have_ident);
                }
            }
        });
        assert_eq!(flags, vec![false, true, true]);
    }

    #[test]
    fn test_attributes_mark_functions() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn helper_in_tests() { SystemTime::now(); }
            }
            #[test]
            fn a_test() { Instant::now(); }
            fn library_code() {}
        "#;
        let file = parse(src);
        let fns = file.functions();
        let by_name = |n: &str| fns.iter().find(|f| f.item.name == n).expect("fn");
        assert!(by_name("helper_in_tests").in_test);
        assert!(by_name("a_test").in_test);
        assert!(!by_name("library_code").in_test);
    }

    #[test]
    fn turbofish_and_generics_do_not_derail() {
        let src = r#"
            fn f<T: Clone + Into<Vec<u8>>>(x: T) -> Vec<u8> where T: Sized {
                let v = Vec::<u8>::with_capacity(4);
                let c: Vec<u8> = x.clone().into();
                items.iter().collect::<Vec<_>>();
                target(c)
            }
            fn g() {}
        "#;
        let file = parse(src);
        let fns = file.functions();
        assert_eq!(fns.len(), 2, "g must still be seen after f's generics");
        let calls = calls_of(&file, "f");
        assert!(calls.contains(&"Vec::with_capacity".to_string()), "{calls:?}");
        assert!(calls.contains(&".collect".to_string()), "{calls:?}");
        assert!(calls.contains(&"target".to_string()), "{calls:?}");
    }

    #[test]
    fn trait_default_bodies_and_extern_blocks() {
        let src = r#"
            pub trait Scorer {
                fn name(&self) -> &str;
                fn score(&self) -> f64 { fallback() }
            }
            extern "C" {
                fn epoll_create1(flags: i32) -> i32;
            }
            const unsafe extern "C" fn shim() {}
        "#;
        let file = parse(src);
        let fns = file.functions();
        let names: Vec<&str> = fns.iter().map(|f| f.item.name.as_str()).collect();
        assert!(names.contains(&"score"));
        assert!(names.contains(&"shim"));
        assert_eq!(calls_of(&file, "score"), vec!["fallback"]);
    }

    #[test]
    fn crate_inference() {
        assert_eq!(crate_of("crates/mlcore/src/kernels.rs"), "mlcore");
        assert_eq!(crate_of("vendor/rayon/src/lib.rs"), "rayon");
        assert_eq!(crate_of("src/lib.rs"), "demodq");
        assert_eq!(crate_of("tests/study_resume.rs"), "demodq");
    }
}
