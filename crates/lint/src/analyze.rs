//! `demodq-analyze` — the AST/call-graph analyzer driver.
//!
//! Parses every workspace source (vendor excluded — see
//! [`AnalyzeConfig`]), builds the call graph, and runs the four
//! flow-aware analyses:
//!
//! | code | meaning |
//! |------|---------|
//! | T001 | determinism taint: a fn in a determinism-critical file transitively reaches a wall-clock/entropy source |
//! | L001 | lock-order cycle across `Mutex`/`RwLock` acquisition orders (one call level inlined) |
//! | E001 | blocking call (`thread::sleep`, `read_to_end`/`write_all`, lock held across `predict_batch`) reachable from an event-loop handler |
//! | K001 | allocation (`Vec::new`/`push`/`to_vec`/`vec!`/`format!`) inside the hot scoring kernels |
//!
//! Findings reuse the `// lint:allow(CODE, reason)` suppression and
//! shrink-only baseline machinery of the lexical linter; both tools
//! share `lint-baseline.txt`, each comparing only its own code scope.

use crate::callgraph::{self, Graph, RawCall};
use crate::parser;
use crate::{Code, Finding, Report};
use std::path::Path;

/// Path policy for the analyzer.
///
/// Unlike the lexical linter, the analyzer does **not** scan `vendor/`:
/// the call-graph over-approximation would link workspace method calls
/// into vendored internals (rayon blocks and sleeps by design), and
/// vendored code is frozen anyway. The parser itself is still exercised
/// against vendor sources in tests to prove error tolerance.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Top-level directories to scan.
    pub roots: Vec<String>,
    /// T001 sinks: determinism-critical files (suffix match) — same
    /// set as the lexical D001 path list.
    pub sink_paths: Vec<String>,
    /// T001 allowlist (prefix match): telemetry/bench files that may
    /// read the clock and never propagate taint to their callers.
    pub allow_paths: Vec<String>,
    /// E001 entries: files (suffix match) whose non-test fns anchor
    /// the event-loop reachability scan.
    pub entry_files: Vec<String>,
    /// E001 allowlist (prefix match): files reachability never enters
    /// (the threaded fallback server blocks by design).
    pub e001_allow: Vec<String>,
    /// K001 scope: hot-kernel files (suffix match).
    pub kernel_paths: Vec<String>,
}

impl AnalyzeConfig {
    /// The demodq workspace policy.
    pub fn demodq() -> AnalyzeConfig {
        AnalyzeConfig {
            roots: vec![
                "crates".to_string(),
                "src".to_string(),
                "tests".to_string(),
                "examples".to_string(),
            ],
            sink_paths: vec![
                "crates/core/src/export.rs".to_string(),
                "crates/core/src/journal.rs".to_string(),
                "crates/core/src/runner.rs".to_string(),
                "crates/core/src/results.rs".to_string(),
                "crates/core/src/report.rs".to_string(),
                "crates/core/src/tables.rs".to_string(),
                "crates/serve/src/metrics.rs".to_string(),
            ],
            allow_paths: vec![
                "crates/core/src/progress.rs".to_string(),
                "crates/serve/".to_string(),
                "crates/bench/".to_string(),
            ],
            entry_files: vec!["crates/serve/src/event.rs".to_string()],
            e001_allow: vec!["crates/serve/src/server.rs".to_string()],
            kernel_paths: vec!["crates/mlcore/src/kernels.rs".to_string()],
        }
    }

    fn is_sink(&self, rel: &str) -> bool {
        self.sink_paths.iter().any(|s| rel.ends_with(s.as_str()))
    }

    fn is_allowed(&self, rel: &str) -> bool {
        self.allow_paths.iter().any(|p| rel.starts_with(p.as_str()))
    }

    fn is_entry_file(&self, rel: &str) -> bool {
        self.entry_files.iter().any(|s| rel.ends_with(s.as_str()))
    }

    fn is_e001_allowed(&self, rel: &str) -> bool {
        self.e001_allow.iter().any(|p| rel.starts_with(p.as_str()) || rel.ends_with(p.as_str()))
    }

    fn is_kernel(&self, rel: &str) -> bool {
        self.kernel_paths.iter().any(|s| rel.ends_with(s.as_str()))
    }
}

/// Analyzes a set of in-memory sources (`(rel_path, source)` pairs).
/// This is the unit-test entry point; [`analyze_tree`] feeds it from
/// disk.
pub fn analyze_sources(sources: &[(String, String)], config: &AnalyzeConfig) -> Report {
    let mut files = Vec::with_capacity(sources.len());
    let mut lexes = Vec::with_capacity(sources.len());
    for (rel, src) in sources {
        let p = parser::parse_source(rel, src);
        files.push(p.file);
        lexes.push(p.lexed);
    }
    let graph = callgraph::build(&files);

    let lex_by_rel: std::collections::BTreeMap<&str, &crate::lexer::Lexed> =
        files.iter().zip(&lexes).map(|(f, l)| (f.rel.as_str(), l)).collect();
    let excused = |rel: &str, line: usize| -> bool {
        lex_by_rel
            .get(rel)
            .map(|l| crate::line_excused(l, line, &[Code::T001, Code::D002, Code::D003]))
            .unwrap_or(false)
    };

    let mut findings = Vec::new();
    crate::taint::run(
        &graph,
        &|rel| config.is_sink(rel),
        &|rel| config.is_allowed(rel),
        &excused,
        &mut findings,
    );
    crate::locks::run(&graph, &mut findings);
    run_e001(&graph, config, &mut findings);
    run_k001(&graph, config, &mut findings);

    // Suppressions: same machinery as the lexical linter, driven by the
    // lex that the parse already produced.
    for (file, lexed) in files.iter().zip(&lexes) {
        let rel = file.rel.as_str();
        let mut slice: Vec<&mut Finding> =
            findings.iter_mut().filter(|f| f.file == rel).collect();
        if slice.is_empty() {
            continue;
        }
        crate::suppress_by_allows(lexed, &mut slice);
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.code).cmp(&(b.file.as_str(), b.line, b.code))
    });
    Report { findings, files_scanned: files.len() }
}

/// Analyzes every `.rs` file under `root`'s configured roots.
pub fn analyze_tree(root: &Path, config: &AnalyzeConfig) -> std::io::Result<Report> {
    let mut sources = Vec::new();
    for path in crate::collect_rs_files(root, &config.roots)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        sources.push((rel, source));
    }
    Ok(analyze_sources(&sources, config))
}

/// E001: forward reachability from the event-loop handler fns; any
/// blocking call on a reachable path is reported with its entry chain.
fn run_e001(graph: &Graph, config: &AnalyzeConfig, findings: &mut Vec<Finding>) {
    let n = graph.fns.len();
    // parent[i] = (caller index, entry distance) for the BFS tree.
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut reachable = vec![false; n];
    let mut queue: Vec<usize> = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if config.is_entry_file(&f.file) && !f.in_test {
            reachable[i] = true;
            queue.push(i);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let cur = queue[head];
        head += 1;
        for edge in &graph.fns[cur].edges {
            let callee = &graph.fns[edge.callee];
            if reachable[edge.callee] || callee.in_test || config.is_e001_allowed(&callee.file) {
                continue;
            }
            reachable[edge.callee] = true;
            parent[edge.callee] = Some(cur);
            queue.push(edge.callee);
        }
    }

    let chain = |mut i: usize| -> String {
        let mut names = vec![graph.fns[i].display()];
        let mut guard = 0;
        while let Some(p) = parent[i] {
            names.push(graph.fns[p].display());
            i = p;
            guard += 1;
            if guard > 64 {
                break;
            }
        }
        names.reverse();
        names.join(" -> ")
    };

    for (i, f) in graph.fns.iter().enumerate() {
        if !reachable[i] || config.is_e001_allowed(&f.file) {
            continue;
        }
        let mut lock_lines: Vec<usize> = Vec::new();
        for call in &f.calls {
            if let Some((_, line)) = crate::locks::acquisition(call) {
                lock_lines.push(line);
            }
            let blocking = match call {
                RawCall::Path { path, .. } => {
                    let last = path.last().map(String::as_str);
                    let qual = path.len().checked_sub(2).map(|k| path[k].as_str());
                    if last == Some("sleep") && qual == Some("thread") {
                        Some("std::thread::sleep".to_string())
                    } else {
                        None
                    }
                }
                RawCall::Method { name, .. } => match name.as_str() {
                    "read_to_end" | "read_to_string" | "read_exact" | "write_all" => {
                        Some(format!(".{name}(..)"))
                    }
                    _ => None,
                },
                RawCall::Macro { .. } => None,
            };
            if let Some(what) = blocking {
                findings.push(Finding {
                    file: f.file.clone(),
                    line: call.line(),
                    code: Code::E001,
                    message: format!(
                        "blocking call `{what}` on an event-loop path ({}); the epoll loop \
                         must never block on a foreign fd or sleep — queue the work or move \
                         it off-loop",
                        chain(i)
                    ),
                    suppressed: false,
                    reason: None,
                });
            }
            // A lock acquired earlier in this fn and still (assumed)
            // held when scoring runs stalls every connection.
            let is_predict = match call {
                RawCall::Path { path, .. } => {
                    path.last().map(String::as_str) == Some("predict_batch")
                }
                RawCall::Method { name, .. } => name == "predict_batch",
                RawCall::Macro { .. } => false,
            };
            if is_predict {
                // Calls iterate in source order, so anything already in
                // `lock_lines` was acquired before this call — no line
                // comparison (which would miss one-line bodies).
                if let Some(&acq) = lock_lines.first() {
                    findings.push(Finding {
                        file: f.file.clone(),
                        line: call.line(),
                        code: Code::E001,
                        message: format!(
                            "`predict_batch` called with a lock acquired at line {acq} \
                             (assumed still held) on an event-loop path ({}); score outside \
                             the guard",
                            chain(i)
                        ),
                        suppressed: false,
                        reason: None,
                    });
                }
            }
        }
    }
}

/// K001: allocations inside the hot-kernel files must go through the
/// caller-provided scratch pool.
fn run_k001(graph: &Graph, config: &AnalyzeConfig, findings: &mut Vec<Finding>) {
    for f in &graph.fns {
        if !config.is_kernel(&f.file) || f.in_test {
            continue;
        }
        for call in &f.calls {
            let what = match call {
                RawCall::Path { path, .. } => match path.last().map(String::as_str) {
                    Some("new") if path.len() >= 2 && (path[path.len() - 2] == "Vec" || path[path.len() - 2] == "String") => {
                        Some(format!("{}::new()", path[path.len() - 2]))
                    }
                    _ => None,
                },
                RawCall::Method { name, n_args, .. } => match name.as_str() {
                    "push" => Some(".push(..)".to_string()),
                    "to_vec" if *n_args == 0 => Some(".to_vec()".to_string()),
                    _ => None,
                },
                RawCall::Macro { name, .. } => match name.as_str() {
                    "vec" => Some("vec![..]".to_string()),
                    "format" => Some("format!(..)".to_string()),
                    _ => None,
                },
            };
            if let Some(what) = what {
                findings.push(Finding {
                    file: f.file.clone(),
                    line: call.line(),
                    code: Code::K001,
                    message: format!(
                        "allocation `{what}` in hot kernel `{}`; route the buffer through \
                         the scratch pool (caller-reserved, reused across rows)",
                        f.display()
                    ),
                    suppressed: false,
                    reason: None,
                });
            }
        }
    }
}
