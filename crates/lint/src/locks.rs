//! L001 — lock-order cycle detection.
//!
//! Every zero-argument `.lock()` / `.read()` / `.write()` method call
//! with a simple `ident(.ident)*` receiver chain is treated as a lock
//! acquisition; the lock's identity is `(crate, last non-self receiver
//! ident)` — `self.states.lock()` in crate `serve` is the lock
//! `serve::states`. (The zero-argument filter excludes `io::Read::read`
//! and `io::Write::write`, which always take a buffer; computed
//! receivers like `deques[i].lock()` have no chain and are skipped —
//! a documented soundness gap.)
//!
//! Per function we record the acquisition order, assuming every guard
//! is held to the end of the function (an over-approximation — early
//! `drop(guard)` is invisible here). One call level is inlined:
//! acquisitions inside a direct callee are appended as **edge targets
//! only** after the caller's own earlier acquisitions — never as
//! sources, which would fabricate an ordering between two sibling
//! callees. A cycle in the resulting lock-order graph (including a
//! same-lock self-loop from a double acquisition in one function) is
//! reported once per offending edge-closing function.

use crate::callgraph::{Graph, RawCall};
use crate::{Code, Finding};
use std::collections::{BTreeMap, BTreeSet};

/// A lock identity.
type LockId = (String, String);

/// One acquisition site in a function.
struct Acq {
    id: LockId,
    line: usize,
    /// Source-order index in the fn's call list — lines tie when a
    /// whole body sits on one line, call order never does.
    seq: usize,
}

/// The receiver-derived lock name, if this call is an acquisition.
pub(crate) fn acquisition(call: &RawCall) -> Option<(String, usize)> {
    let RawCall::Method { name, recv, line, n_args, .. } = call else { return None };
    if *n_args != 0 || !matches!(name.as_str(), "lock" | "read" | "write") {
        return None;
    }
    // Last receiver segment that isn't `self` names the lock field.
    let field = recv.iter().rev().find(|s| s.as_str() != "self")?;
    Some((field.clone(), *line))
}

/// Runs L001 over the graph.
pub fn run(graph: &Graph, findings: &mut Vec<Finding>) {
    // Per-fn own acquisitions, in source order.
    let own: Vec<Vec<Acq>> = graph
        .fns
        .iter()
        .map(|f| {
            if f.in_test {
                return Vec::new();
            }
            f.calls
                .iter()
                .enumerate()
                .filter_map(|(seq, call)| {
                    acquisition(call)
                        .map(|(field, line)| Acq { id: (f.krate.clone(), field), line, seq })
                })
                .collect()
        })
        .collect();

    // Lock-order edges: id_a -> id_b, annotated with the fn and line
    // that close the edge (the site of the second acquisition).
    let mut edges: BTreeMap<LockId, BTreeSet<LockId>> = BTreeMap::new();
    let mut edge_site: BTreeMap<(LockId, LockId), (usize, usize)> = BTreeMap::new();
    let mut add_edge = |a: &LockId, b: &LockId, f: usize, line: usize| {
        if edges.entry(a.clone()).or_default().insert(b.clone()) {
            edge_site.insert((a.clone(), b.clone()), (f, line));
        }
    };

    for (i, f) in graph.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        // Own-before-own (includes same-lock self-loops: a double
        // acquisition of a non-reentrant mutex in one fn).
        for (ai, a) in own[i].iter().enumerate() {
            for b in own[i].iter().skip(ai + 1) {
                add_edge(&a.id, &b.id, i, b.line);
            }
        }
        // Own-before-callee: one level of inlining, targets only.
        for edge in &f.edges {
            if graph.fns[edge.callee].in_test {
                continue;
            }
            for a in &own[i] {
                if a.seq >= edge.seq {
                    continue; // acquired after (or by) the call itself
                }
                for b in &own[edge.callee] {
                    if a.id == b.id {
                        // Re-acquiring the same lock through a callee is
                        // a real deadlock shape, but self-loops are only
                        // trusted within one fn (the callee may be
                        // called elsewhere without the lock held).
                        continue;
                    }
                    add_edge(&a.id, &b.id, i, edge.line);
                }
            }
        }
    }

    // Find cycles: self-loops, then DFS for longer ones.
    let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (a, succs) in &edges {
        for b in succs {
            let closes_cycle = a == b || reaches(&edges, b, a);
            if !closes_cycle {
                continue;
            }
            let Some(&(f, line)) = edge_site.get(&(a.clone(), b.clone())) else { continue };
            if !reported.insert((f, line)) {
                continue;
            }
            let shape = if a == b {
                format!("`{}::{}` is acquired twice on one path", a.0, a.1)
            } else {
                format!(
                    "`{}::{}` is acquired before `{}::{}` here, but the reverse order also \
                     exists in the workspace",
                    a.0, a.1, b.0, b.1
                )
            };
            findings.push(Finding {
                file: graph.fns[f].file.clone(),
                line,
                code: Code::L001,
                message: format!(
                    "lock-order cycle: {shape} (in `{}`); pick one global acquisition order \
                     or narrow the guard scope",
                    graph.fns[f].display()
                ),
                suppressed: false,
                reason: None,
            });
        }
    }
}

/// Is `to` reachable from `from` in the lock-order graph?
fn reaches(edges: &BTreeMap<LockId, BTreeSet<LockId>>, from: &LockId, to: &LockId) -> bool {
    let mut seen: BTreeSet<&LockId> = BTreeSet::new();
    let mut stack: Vec<&LockId> = vec![from];
    while let Some(cur) = stack.pop() {
        if cur == to {
            return true;
        }
        if !seen.insert(cur) {
            continue;
        }
        if let Some(succs) = edges.get(cur) {
            stack.extend(succs.iter());
        }
    }
    false
}
