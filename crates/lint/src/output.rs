//! Human and JSON report rendering, shared by the `demodq-lint` and
//! `demodq-analyze` binaries.

use crate::{json_escape, Code, Report, Verdict};

/// Prints the actionable findings and the gate verdict for humans.
pub fn print_human(tool: &str, report: &Report, verdict: &Verdict) {
    // Only findings in (file, code) groups that exceed the baseline are
    // actionable; print them all (the grandfathered ones give context).
    let over: std::collections::BTreeSet<(&str, Code)> =
        verdict.new.iter().map(|(f, c, _, _)| (f.as_str(), *c)).collect();
    for finding in report.active() {
        if over.contains(&(finding.file.as_str(), finding.code)) {
            println!(
                "{}:{}: {} {}",
                finding.file,
                finding.line,
                finding.code.name(),
                finding.message
            );
        }
    }
    for (file, code, actual, grandfathered) in &verdict.new {
        println!(
            "NEW {file} {}: {actual} finding(s), {grandfathered} baselined",
            code.name()
        );
    }
    for (file, code, actual, grandfathered) in &verdict.stale {
        println!(
            "STALE {file} {}: baseline says {grandfathered}, found {actual} — \
             shrink the baseline (--write-baseline) to lock in the fix",
            code.name()
        );
    }
    let suppressed = report.findings.iter().filter(|f| f.suppressed).count();
    let active = report.active().count();
    println!(
        "{tool}: {} file(s), {} active finding(s) ({} suppressed), {} new, {} stale — {}",
        report.files_scanned,
        active,
        suppressed,
        verdict.new.len(),
        verdict.stale.len(),
        if verdict.clean() { "clean" } else { "FAIL" }
    );
}

/// Prints the machine-readable report.
pub fn print_json(report: &Report, verdict: &Verdict) {
    let mut out = String::from("{\n  \"findings\": [\n");
    let active: Vec<_> = report.active().collect();
    for (i, finding) in active.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"code\": \"{}\", \"message\": \"{}\"}}{}\n",
            json_escape(&finding.file),
            finding.line,
            finding.code.name(),
            json_escape(&finding.message),
            if i + 1 < active.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"suppressed\": [\n");
    let suppressed: Vec<_> = report.findings.iter().filter(|f| f.suppressed).collect();
    for (i, finding) in suppressed.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"code\": \"{}\", \"reason\": \"{}\"}}{}\n",
            json_escape(&finding.file),
            finding.line,
            finding.code.name(),
            json_escape(finding.reason.as_deref().unwrap_or("")),
            if i + 1 < suppressed.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"new\": [\n");
    for (i, (file, code, actual, grandfathered)) in verdict.new.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"code\": \"{}\", \"count\": {actual}, \"baselined\": {grandfathered}}}{}\n",
            json_escape(file),
            code.name(),
            if i + 1 < verdict.new.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"stale\": [\n");
    for (i, (file, code, actual, grandfathered)) in verdict.stale.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"code\": \"{}\", \"count\": {actual}, \"baselined\": {grandfathered}}}{}\n",
            json_escape(file),
            code.name(),
            if i + 1 < verdict.stale.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"summary\": {{\"files\": {}, \"active\": {}, \"suppressed\": {}, \"clean\": {}}}\n}}\n",
        report.files_scanned,
        report.active().count(),
        suppressed.len(),
        verdict.clean()
    ));
    print!("{out}");
}
