//! A minimal Rust lexer: just enough token structure for path- and
//! pattern-level lints, but fully aware of the places where naive text
//! matching goes wrong — line and (nested) block comments, cooked and
//! raw strings (any `#` depth), byte strings, char literals vs
//! lifetimes, and raw identifiers.
//!
//! The lexer never fails: unterminated constructs simply run to end of
//! file. Lints operate on the token stream, so a pattern inside a string
//! literal or a comment can never produce a finding.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unsafe`, `HashMap`, `unwrap`, ...).
    Ident(String),
    /// Integer literal (any base, any suffix except `f32`/`f64`).
    Int,
    /// Float literal (`1.0`, `1e3`, `1f64`, ...).
    Float,
    /// String, byte-string, raw-string or char literal.
    Str,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// Any other single punctuation character.
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// A comment plus the 1-based lines it spans (inclusive).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// First line of the comment.
    pub line: usize,
    /// Last line of the comment (same as `line` for `//` comments).
    pub end_line: usize,
}

/// The full lex of one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in order, comments excluded.
    pub tokens: Vec<Token>,
    /// All comments, in order.
    pub comments: Vec<Comment>,
    /// Total number of source lines.
    pub n_lines: usize,
}

/// Lexes `source` into tokens and comments.
pub fn lex(source: &str) -> Lexed {
    Lexer { chars: source.chars().collect(), pos: 0, line: 1, out: Lexed::default() }.run(source)
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Lexed,
}

impl Lexer {
    fn run(mut self, source: &str) -> Lexed {
        // Shebang: `#!` at the very start of the file is a host-interpreter
        // line, not two Rust tokens — unless the next char is `[`, which
        // makes it an inner attribute (`#![deny(...)]`). Consuming the line
        // whole keeps the stray `#` `!` pair from ever desyncing attribute
        // or raw-string tracking downstream.
        if self.peek(0) == Some('#') && self.peek(1) == Some('!') && self.peek(2) != Some('[') {
            while let Some(c) = self.peek(0) {
                if c == '\n' {
                    break;
                }
                self.pos += 1;
            }
        }
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.cooked_string(),
                'b' | 'r' | 'c' if self.is_literal_prefix() => self.prefixed_literal(),
                '\'' => self.quote(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphabetic() => self.ident(),
                '=' if self.peek(1) == Some('=') => self.push2(Tok::EqEq),
                '!' if self.peek(1) == Some('=') => self.push2(Tok::NotEq),
                c => {
                    self.push(Tok::Punct(c));
                    self.pos += 1;
                }
            }
        }
        self.out.n_lines = source.lines().count();
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, tok: Tok) {
        self.out.tokens.push(Token { tok, line: self.line });
    }

    fn push2(&mut self, tok: Tok) {
        self.push(tok);
        self.pos += 2;
    }

    /// Does the `b`/`r`/`c` at the cursor start a string literal (vs an
    /// ordinary identifier such as `result` or a raw identifier `r#type`)?
    fn is_literal_prefix(&self) -> bool {
        let (a, b) = (self.peek(0), self.peek(1));
        match (a, b) {
            // b"...", c"...", r"..."
            (_, Some('"')) => true,
            // br"..." / br#"..."#
            (Some('b'), Some('r')) => matches!(self.peek(2), Some('"') | Some('#')),
            // r#"..."# — but r#ident is a raw identifier, not a string.
            (Some('r'), Some('#')) => {
                let mut k = 1;
                while self.peek(k) == Some('#') {
                    k += 1;
                }
                self.peek(k) == Some('"')
            }
            _ => false,
        }
    }

    fn line_comment(&mut self) {
        self.pos += 2;
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.comments.push(Comment { text, line: self.line, end_line: self.line });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        self.pos += 2;
        let start = self.pos;
        let mut depth = 1usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.pos += 2;
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                self.pos += 2;
            } else {
                if c == '\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.pos = (self.pos + 2).min(self.chars.len());
        self.out.comments.push(Comment { text, line: start_line, end_line: self.line });
    }

    fn cooked_string(&mut self) {
        let start_line = self.line;
        self.pos += 1; // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => self.pos += 2,
                '"' => {
                    self.pos += 1;
                    break;
                }
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.out.tokens.push(Token { tok: Tok::Str, line: start_line });
    }

    /// `b"..."`, `r"..."`, `br#"..."#`, `c"..."` — anything
    /// [`Self::is_literal_prefix`] accepted.
    fn prefixed_literal(&mut self) {
        let start_line = self.line;
        // Skip the alphabetic prefix (b, r, br, rb, c).
        while matches!(self.peek(0), Some('b') | Some('r') | Some('c')) {
            self.pos += 1;
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some('"') {
            // Defensive: is_literal_prefix guarantees a quote here.
            self.out.tokens.push(Token { tok: Tok::Str, line: start_line });
            return;
        }
        self.pos += 1;
        if hashes == 0 && !self.raw_prefix_escapes() {
            // r"..." has no escapes; b"..." and c"..." do.
            self.raw_until_quote(0);
        } else if hashes == 0 {
            // b"..."/c"...": cooked rules (escapes active).
            while let Some(c) = self.peek(0) {
                match c {
                    '\\' => self.pos += 2,
                    '"' => {
                        self.pos += 1;
                        break;
                    }
                    '\n' => {
                        self.line += 1;
                        self.pos += 1;
                    }
                    _ => self.pos += 1,
                }
            }
        } else {
            self.raw_until_quote(hashes);
        }
        self.out.tokens.push(Token { tok: Tok::Str, line: start_line });
    }

    /// Whether the literal prefix just consumed was a cooked (escaping)
    /// one. Only `r`-prefixed strings are escape-free; this is looked up
    /// from the characters immediately before the cursor.
    fn raw_prefix_escapes(&self) -> bool {
        // The char right before the opening quote run: for zero hashes the
        // quote is at pos-1 and the prefix letter at pos-2.
        !matches!(self.chars.get(self.pos.wrapping_sub(2)), Some('r'))
    }

    /// Consumes a raw-string body until `"` followed by `hashes` `#`s.
    fn raw_until_quote(&mut self, hashes: usize) {
        while let Some(c) = self.peek(0) {
            if c == '"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            if c == '\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    /// `'` starts either a char literal or a lifetime.
    fn quote(&mut self) {
        // Lifetime: 'ident not followed by a closing quote.
        if let Some(c1) = self.peek(1) {
            if (c1 == '_' || c1.is_alphabetic()) && self.peek(2) != Some('\'') {
                self.pos += 1; // the quote
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                // Lifetimes carry no lint signal; drop them.
                return;
            }
        }
        // Char literal.
        self.pos += 1;
        match self.peek(0) {
            Some('\\') => {
                self.pos += 2; // backslash + escaped char (covers '\'', '\\')
                // \u{...} and \x.. run until the closing quote below.
                while let Some(c) = self.peek(0) {
                    self.pos += 1;
                    if c == '\'' {
                        break;
                    }
                }
            }
            Some(_) => {
                self.pos += 1;
                if self.peek(0) == Some('\'') {
                    self.pos += 1;
                }
            }
            None => {}
        }
        self.push(Tok::Str);
    }

    fn number(&mut self) {
        let mut is_float = false;
        // Base prefix?
        if self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('X') | Some('b') | Some('B') | Some('o') | Some('O'))
        {
            self.pos += 2;
            while let Some(c) = self.peek(0) {
                if c.is_ascii_hexdigit() || c == '_' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            self.push(Tok::Int);
            return;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        // Fractional part: `.` followed by a digit (so `0..n` and
        // `1.max(2)` stay integers).
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.pos += 1;
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        } else if self.peek(0) == Some('.')
            && !matches!(self.peek(1), Some('.') | Some('_'))
            && !self.peek(1).is_some_and(|c| c.is_alphabetic())
        {
            // Trailing-dot float: `1.`
            is_float = true;
            self.pos += 1;
        }
        // Exponent.
        if matches!(self.peek(0), Some('e') | Some('E')) {
            let mut k = 1;
            if matches!(self.peek(1), Some('+') | Some('-')) {
                k = 2;
            }
            if self.peek(k).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                self.pos += k;
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
            }
        }
        // Suffix (u8, i64, f64, usize, ...).
        let suffix_start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let suffix: String = self.chars[suffix_start..self.pos].iter().collect();
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
        self.push(if is_float { Tok::Float } else { Tok::Int });
    }

    fn ident(&mut self) {
        // Raw identifier r#name (the raw-string case was routed away).
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.pos += 2;
        }
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let name: String = self.chars[start..self.pos].iter().collect();
        self.push(Tok::Ident(name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(name) => Some(name),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_patterns() {
        let src = r##"
// HashMap in a comment
/* SystemTime::now() in a block /* nested */ comment */
let s = "HashMap::new()";
let r = r#"Instant::now()"#;
let b = b"unwrap()";
fn real() { HashMap::new(); }
"##;
        let names = idents(src);
        assert!(names.contains(&"HashMap".to_string()));
        assert!(!names.contains(&"SystemTime".to_string()));
        assert!(!names.contains(&"Instant".to_string()));
        assert!(!names.contains(&"unwrap".to_string()));
        // All three comment bodies were captured.
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("HashMap"));
        assert!(lexed.comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; let esc = '\\''; x }";
        let lexed = lex(src);
        let strs = lexed.tokens.iter().filter(|t| t.tok == Tok::Str).count();
        assert_eq!(strs, 2, "exactly the two char literals");
    }

    #[test]
    fn float_vs_int_literals() {
        let toks = |src: &str| -> Vec<Tok> { lex(src).tokens.into_iter().map(|t| t.tok).collect() };
        assert!(toks("1.0").contains(&Tok::Float));
        assert!(toks("1e3").contains(&Tok::Float));
        assert!(toks("2f64").contains(&Tok::Float));
        assert!(!toks("0..n").contains(&Tok::Float));
        assert!(!toks("1.max(2)").contains(&Tok::Float));
        assert!(!toks("0xAB").contains(&Tok::Float));
        assert!(toks("1_000.5").contains(&Tok::Float));
    }

    #[test]
    fn eqeq_and_noteq_are_single_tokens() {
        let lexed = lex("a == 1.0 && b != 2");
        let kinds: Vec<Tok> = lexed.tokens.into_iter().map(|t| t.tok).collect();
        assert!(kinds.contains(&Tok::EqEq));
        assert!(kinds.contains(&Tok::NotEq));
    }

    #[test]
    fn line_numbers_advance_in_multiline_strings() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let lexed = lex(src);
        let b_line = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("b".to_string()))
            .map(|t| t.line);
        assert_eq!(b_line, Some(3));
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn shebang_is_skipped_whole() {
        // A shebang line is not Rust tokens; in particular a stray `r#"`
        // inside it must not open a raw string that swallows the file.
        let src = "#!/usr/bin/env -S cargo -Zscript r#\"\nfn real() { let x = Instant::now(); }\n";
        let names = idents(src);
        assert!(names.contains(&"Instant".to_string()), "code after the shebang still lexes");
        assert!(!names.contains(&"usr".to_string()), "shebang body yields no tokens");
        // The `#` and `!` themselves are consumed, not emitted as puncts.
        let puncts: Vec<char> = lex(src)
            .tokens
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Punct(c) => Some(c),
                _ => None,
            })
            .collect();
        assert!(!puncts.contains(&'#'));
    }

    #[test]
    fn inner_attribute_header_is_not_a_shebang() {
        // `#![deny(...)]` at file start is an inner attribute: the `#`,
        // `!`, `[` tokens must survive and raw-string tracking after the
        // header must stay in sync.
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n#![allow(dead_code)]\nlet s = r#\"SystemTime::now()\"#;\nlet after = 1;\n";
        let lexed = lex(src);
        let names = idents(src);
        assert!(names.contains(&"deny".to_string()));
        assert!(names.contains(&"after".to_string()));
        assert!(!names.contains(&"SystemTime".to_string()), "raw string stayed a string");
        let hashes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Punct('#'))
            .count();
        assert_eq!(hashes, 2, "one `#` punct per inner attribute");
    }

    #[test]
    fn raw_string_with_hashes_and_quotes() {
        let src = r###"let s = r##"body with "quotes" and # marks"##; let after = 2;"###;
        let names = idents(src);
        assert!(names.contains(&"after".to_string()));
        assert!(!names.contains(&"body".to_string()));
    }
}
