//! T001 — interprocedural determinism taint.
//!
//! Sources are the wall-clock/entropy calls the lexical D002/D003 lints
//! match (`SystemTime::now`, `Instant::now`, `from_entropy`,
//! `thread_rng`, literal-seeded `seed_from_u64`); sinks are the
//! functions defined in the determinism-critical files (export /
//! journal / runner / results / report / tables / metrics). Taint
//! propagates from a source-containing function to every transitive
//! caller through the call graph, so a sink that reaches a tainted
//! helper three calls away is reported with the full call chain — the
//! lexical lints only ever see the file the source sits in.
//!
//! Functions in the telemetry allowlist (the D002 allowlist) are
//! neither sources nor propagators: progress bars and benchmark
//! harnesses measure wall-clock by design, and their callers must not
//! inherit taint from them. Test functions are ignored entirely.

use crate::callgraph::{Graph, RawCall};
use crate::{Code, Finding};

/// Describes the determinism source a call site matches, if any.
pub fn source_pattern(call: &RawCall) -> Option<String> {
    match call {
        RawCall::Path { path, args_have_ident, .. } => {
            let last = path.last().map(String::as_str)?;
            let qual = path.len().checked_sub(2).map(|i| path[i].as_str());
            match (qual, last) {
                (Some("SystemTime"), "now") => Some("SystemTime::now()".to_string()),
                (Some("Instant"), "now") => Some("Instant::now()".to_string()),
                (_, "from_entropy") => Some("from_entropy()".to_string()),
                (_, "thread_rng") => Some("thread_rng()".to_string()),
                (_, "seed_from_u64") if !args_have_ident => {
                    Some("seed_from_u64(<literal>)".to_string())
                }
                _ => None,
            }
        }
        RawCall::Method { name, args_have_ident, .. } => match name.as_str() {
            "from_entropy" => Some(".from_entropy()".to_string()),
            "seed_from_u64" if !args_have_ident => Some(".seed_from_u64(<literal>)".to_string()),
            _ => None,
        },
        RawCall::Macro { .. } => None,
    }
}

/// How a function became tainted.
#[derive(Debug, Clone)]
enum Taint {
    /// The fn itself contains a source call at this line.
    Direct { line: usize, desc: String },
    /// The fn calls a tainted fn at this line.
    Via { line: usize, callee: usize },
}

/// Runs T001 over the graph. `is_sink_file` selects the
/// determinism-critical files; `is_allowed_file` the telemetry
/// allowlist (no sources, no propagation); `is_excused` reports call
/// sites a reasoned `lint:allow(D002/D003/T001)` already adjudicated —
/// those do not seed taint.
pub fn run(
    graph: &Graph,
    is_sink_file: &dyn Fn(&str) -> bool,
    is_allowed_file: &dyn Fn(&str) -> bool,
    is_excused: &dyn Fn(&str, usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let n = graph.fns.len();
    let mut taint: Vec<Option<Taint>> = vec![None; n];
    let mut queue: Vec<usize> = Vec::new();

    // Seed: functions that contain a source call directly.
    for (i, f) in graph.fns.iter().enumerate() {
        if f.in_test || is_allowed_file(&f.file) {
            continue;
        }
        for call in &f.calls {
            if let Some(desc) = source_pattern(call) {
                if is_excused(&f.file, call.line()) {
                    continue;
                }
                taint[i] = Some(Taint::Direct { line: call.line(), desc });
                queue.push(i);
                break;
            }
        }
    }

    // Propagate to transitive callers (reverse BFS).
    let callers = graph.callers();
    let mut head = 0;
    while head < queue.len() {
        let cur = queue[head];
        head += 1;
        for &(caller, line) in &callers[cur] {
            if taint[caller].is_some() {
                continue;
            }
            let cf = &graph.fns[caller];
            if cf.in_test || is_allowed_file(&cf.file) {
                continue;
            }
            taint[caller] = Some(Taint::Via { line, callee: cur });
            queue.push(caller);
        }
    }

    // Report every tainted sink-file function, with its chain.
    for (i, f) in graph.fns.iter().enumerate() {
        if !is_sink_file(&f.file) || f.in_test {
            continue;
        }
        let Some(t) = &taint[i] else { continue };
        let (line, chain) = chain_of(graph, &taint, i, t);
        findings.push(Finding {
            file: f.file.clone(),
            line,
            code: Code::T001,
            message: format!(
                "determinism taint: `{}` (in a determinism-critical file) reaches a \
                 wall-clock/entropy source: {chain}; derive values from the seed-derivation \
                 helpers or hoist the source behind the telemetry boundary",
                f.display()
            ),
            suppressed: false,
            reason: None,
        });
    }
}

/// Renders `sink -> a -> b [source() at file:line]` and returns the
/// line to report (the sink fn's own call/source line — where the
/// suppression, if any, belongs).
fn chain_of(graph: &Graph, taint: &[Option<Taint>], start: usize, t: &Taint) -> (usize, String) {
    let mut chain = vec![graph.fns[start].display()];
    let mut reported_line: Option<usize> = None;
    let mut cur_fn = start;
    let mut cur = t.clone();
    let mut guard = 0;
    loop {
        guard += 1;
        match cur {
            Taint::Direct { line, desc } => {
                reported_line.get_or_insert(line);
                let site = &graph.fns[cur_fn].file;
                let msg = format!("{} [{desc} at {site}:{line}]", chain.join(" -> "));
                return (reported_line.unwrap_or(line), msg);
            }
            Taint::Via { line, callee } => {
                reported_line.get_or_insert(line);
                chain.push(graph.fns[callee].display());
                cur_fn = callee;
                match &taint[callee] {
                    Some(next) if guard < 64 => cur = next.clone(),
                    _ => {
                        let msg = chain.join(" -> ");
                        return (reported_line.unwrap_or(line), msg);
                    }
                }
            }
        }
    }
}
