//! `demodq-lint` CLI: lints the workspace, compares against the
//! committed baseline and exits nonzero on any drift.
//!
//! ```text
//! demodq-lint [--root DIR] [--baseline FILE] [--format human|json]
//!             [--write-baseline] [--no-baseline] [--codes]
//! ```
//!
//! Exit codes: `0` clean (tree matches the baseline exactly), `1` new
//! findings or stale baseline entries, `2` usage or I/O error.

use demodq_lint::{compare, json_escape, lint_tree, Baseline, Code, Config, Report, Verdict};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    root: PathBuf,
    baseline: Option<PathBuf>,
    format: Format,
    write_baseline: bool,
    no_baseline: bool,
    codes: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Human,
    Json,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from("."),
        baseline: None,
        format: Format::Human,
        write_baseline: false,
        no_baseline: false,
        codes: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                cli.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                cli.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a file")?));
            }
            "--format" => match args.next().as_deref() {
                Some("human") => cli.format = Format::Human,
                Some("json") => cli.format = Format::Json,
                other => return Err(format!("--format must be human|json, got {other:?}")),
            },
            "--write-baseline" => cli.write_baseline = true,
            "--no-baseline" => cli.no_baseline = true,
            "--codes" => cli.codes = true,
            "--help" | "-h" => {
                return Err("usage: demodq-lint [--root DIR] [--baseline FILE] \
                            [--format human|json] [--write-baseline] [--no-baseline] [--codes]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    if cli.codes {
        for code in Code::ALL {
            println!("{}  {}", code.name(), code.describe());
        }
        return ExitCode::SUCCESS;
    }

    let config = Config::demodq();
    let report = match lint_tree(&cli.root, &config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("demodq-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = cli.baseline.clone().unwrap_or_else(|| cli.root.join("lint-baseline.txt"));
    if cli.write_baseline {
        let baseline = Baseline::from_report(&report);
        if let Err(e) = std::fs::write(&baseline_path, baseline.render()) {
            eprintln!("demodq-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote {} ({} entries, {} grandfathered findings)",
            baseline_path.display(),
            baseline.counts.len(),
            baseline.counts.values().sum::<usize>()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if cli.no_baseline {
        Baseline::default()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(baseline) => baseline,
                Err(e) => {
                    eprintln!("demodq-lint: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!(
                    "demodq-lint: cannot read baseline {} ({e}); run with --write-baseline \
                     to create it or --no-baseline to compare against empty",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        }
    };

    let verdict = compare(&report, &baseline);
    match cli.format {
        Format::Human => print_human(&report, &verdict),
        Format::Json => print_json(&report, &verdict),
    }
    if verdict.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_human(report: &Report, verdict: &Verdict) {
    // Only findings in (file, code) groups that exceed the baseline are
    // actionable; print them all (the grandfathered ones give context).
    let over: std::collections::BTreeSet<(&str, Code)> =
        verdict.new.iter().map(|(f, c, _, _)| (f.as_str(), *c)).collect();
    for finding in report.active() {
        if over.contains(&(finding.file.as_str(), finding.code)) {
            println!(
                "{}:{}: {} {}",
                finding.file,
                finding.line,
                finding.code.name(),
                finding.message
            );
        }
    }
    for (file, code, actual, grandfathered) in &verdict.new {
        println!(
            "NEW {file} {}: {actual} finding(s), {grandfathered} baselined",
            code.name()
        );
    }
    for (file, code, actual, grandfathered) in &verdict.stale {
        println!(
            "STALE {file} {}: baseline says {grandfathered}, found {actual} — \
             shrink the baseline (--write-baseline) to lock in the fix",
            code.name()
        );
    }
    let suppressed = report.findings.iter().filter(|f| f.suppressed).count();
    let active = report.active().count();
    println!(
        "demodq-lint: {} file(s), {} active finding(s) ({} suppressed), {} new, {} stale — {}",
        report.files_scanned,
        active,
        suppressed,
        verdict.new.len(),
        verdict.stale.len(),
        if verdict.clean() { "clean" } else { "FAIL" }
    );
}

fn print_json(report: &Report, verdict: &Verdict) {
    let mut out = String::from("{\n  \"findings\": [\n");
    let active: Vec<_> = report.active().collect();
    for (i, finding) in active.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"code\": \"{}\", \"message\": \"{}\"}}{}\n",
            json_escape(&finding.file),
            finding.line,
            finding.code.name(),
            json_escape(&finding.message),
            if i + 1 < active.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"suppressed\": [\n");
    let suppressed: Vec<_> = report.findings.iter().filter(|f| f.suppressed).collect();
    for (i, finding) in suppressed.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"code\": \"{}\", \"reason\": \"{}\"}}{}\n",
            json_escape(&finding.file),
            finding.line,
            finding.code.name(),
            json_escape(finding.reason.as_deref().unwrap_or("")),
            if i + 1 < suppressed.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"new\": [\n");
    for (i, (file, code, actual, grandfathered)) in verdict.new.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"code\": \"{}\", \"count\": {actual}, \"baselined\": {grandfathered}}}{}\n",
            json_escape(file),
            code.name(),
            if i + 1 < verdict.new.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"stale\": [\n");
    for (i, (file, code, actual, grandfathered)) in verdict.stale.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"code\": \"{}\", \"count\": {actual}, \"baselined\": {grandfathered}}}{}\n",
            json_escape(file),
            code.name(),
            if i + 1 < verdict.stale.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"summary\": {{\"files\": {}, \"active\": {}, \"suppressed\": {}, \"clean\": {}}}\n}}\n",
        report.files_scanned,
        report.active().count(),
        suppressed.len(),
        verdict.clean()
    ));
    print!("{out}");
}
