//! `demodq-analyze` CLI: parses the workspace, builds the call graph,
//! runs the flow-aware analyses (T001/L001/E001/K001) and compares
//! against the shared `lint-baseline.txt`.
//!
//! ```text
//! demodq-analyze [--root DIR] [--baseline FILE] [--format human|json]
//!                [--write-baseline] [--no-baseline] [--codes]
//! ```
//!
//! Exit codes: `0` clean (tree matches the analyzer scope of the
//! baseline exactly), `1` new findings or stale entries, `2` usage or
//! I/O error.

use demodq_lint::analyze::{analyze_tree, AnalyzeConfig};
use demodq_lint::output::{print_human, print_json};
use demodq_lint::{compare_scoped, rewrite_baseline_scoped, Baseline, Code};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    root: PathBuf,
    baseline: Option<PathBuf>,
    format: Format,
    write_baseline: bool,
    no_baseline: bool,
    codes: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Human,
    Json,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from("."),
        baseline: None,
        format: Format::Human,
        write_baseline: false,
        no_baseline: false,
        codes: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                cli.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                cli.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a file")?));
            }
            "--format" => match args.next().as_deref() {
                Some("human") => cli.format = Format::Human,
                Some("json") => cli.format = Format::Json,
                other => return Err(format!("--format must be human|json, got {other:?}")),
            },
            "--write-baseline" => cli.write_baseline = true,
            "--no-baseline" => cli.no_baseline = true,
            "--codes" => cli.codes = true,
            "--help" | "-h" => {
                return Err("usage: demodq-analyze [--root DIR] [--baseline FILE] \
                            [--format human|json] [--write-baseline] [--no-baseline] [--codes]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    if cli.codes {
        for code in Code::ANALYSIS {
            println!("{}  {}", code.name(), code.describe());
        }
        return ExitCode::SUCCESS;
    }

    let config = AnalyzeConfig::demodq();
    let report = match analyze_tree(&cli.root, &config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("demodq-analyze: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = cli.baseline.clone().unwrap_or_else(|| cli.root.join("lint-baseline.txt"));
    if cli.write_baseline {
        // Rewrite only the analyzer scope: the lexical linter's entries
        // in the shared baseline file must survive untouched.
        let old = std::fs::read_to_string(&baseline_path)
            .ok()
            .and_then(|t| Baseline::parse(&t).ok())
            .unwrap_or_default();
        let baseline = rewrite_baseline_scoped(&old, &report, &Code::ANALYSIS);
        if let Err(e) = std::fs::write(&baseline_path, baseline.render()) {
            eprintln!("demodq-analyze: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote {} ({} entries, {} grandfathered findings)",
            baseline_path.display(),
            baseline.counts.len(),
            baseline.counts.values().sum::<usize>()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if cli.no_baseline {
        Baseline::default()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(baseline) => baseline,
                Err(e) => {
                    eprintln!("demodq-analyze: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!(
                    "demodq-analyze: cannot read baseline {} ({e}); run with --write-baseline \
                     to create it or --no-baseline to compare against empty",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        }
    };

    // Gate only on the analyzer scope — the lexical codes belong to
    // demodq-lint, which shares this baseline file.
    let verdict = compare_scoped(&report, &baseline, &Code::ANALYSIS);
    match cli.format {
        Format::Human => print_human("demodq-analyze", &report, &verdict),
        Format::Json => print_json(&report, &verdict),
    }
    if verdict.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
