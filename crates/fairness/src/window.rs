//! Sliding-window group accounting for live fairness-drift telemetry.
//!
//! A [`SlidingGroupWindow`] holds the last `capacity` labeled
//! observations of one (privileged/disadvantaged) group spec and keeps
//! the pair of confusion matrices incrementally up to date, so a serving
//! tier can compute windowed disparities in O(1) per observation instead
//! of re-tallying the window on every scrape.
//!
//! Determinism: the window is **count-based** and every observation is
//! stamped with a caller-supplied logical `tick` (an injected clock, not
//! a wall-clock read — this module never touches `SystemTime`/`Instant`,
//! so drift accounting replays identically in tests). Time-based
//! trimming, when wanted, goes through [`SlidingGroupWindow::evict_older_than`]
//! with whatever tick source the caller injects.

use crate::confusion::GroupConfusions;
use crate::metrics::FairnessMetric;
use std::collections::VecDeque;

/// One labeled, group-attributed observation, packed to a byte plus its
/// logical timestamp.
#[derive(Debug, Clone, Copy)]
struct Observation {
    tick: u64,
    /// bit 0: privileged, bit 1: y_true, bit 2: y_pred.
    bits: u8,
}

impl Observation {
    fn new(tick: u64, privileged: bool, y_true: bool, y_pred: bool) -> Observation {
        let bits =
            u8::from(privileged) | (u8::from(y_true) << 1) | (u8::from(y_pred) << 2);
        Observation { tick, bits }
    }

    fn privileged(self) -> bool {
        self.bits & 1 != 0
    }

    fn y_true(self) -> bool {
        self.bits & 2 != 0
    }

    fn y_pred(self) -> bool {
        self.bits & 4 != 0
    }
}

/// A bounded sliding window of labeled predictions for one group spec,
/// with incrementally maintained group confusion matrices.
#[derive(Debug, Clone)]
pub struct SlidingGroupWindow {
    capacity: usize,
    entries: VecDeque<Observation>,
    counts: GroupConfusions,
    /// Total observations ever pushed (not capped by the window).
    observed: u64,
}

impl SlidingGroupWindow {
    /// A window holding at most `capacity` observations (min 1).
    pub fn new(capacity: usize) -> SlidingGroupWindow {
        let capacity = capacity.max(1);
        SlidingGroupWindow {
            capacity,
            entries: VecDeque::with_capacity(capacity.min(4096)),
            counts: GroupConfusions::default(),
            observed: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Observations currently inside the window.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the window holds no observations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total observations ever pushed through the window.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Adds one labeled observation at logical time `tick`, evicting the
    /// oldest entry when the window is full. Nonzero labels count as
    /// positive. Ticks are expected to be non-decreasing; the window does
    /// not reorder.
    pub fn push(&mut self, tick: u64, privileged: bool, y_true: u8, y_pred: u8) {
        if self.entries.len() == self.capacity {
            if let Some(old) = self.entries.pop_front() {
                Self::tally(&mut self.counts, old, false);
            }
        }
        let obs = Observation::new(tick, privileged, y_true != 0, y_pred != 0);
        Self::tally(&mut self.counts, obs, true);
        self.entries.push_back(obs);
        self.observed += 1;
    }

    /// Drops observations whose tick is older than `now_tick - max_age`.
    /// `now_tick` comes from the caller's injected clock, so eviction is
    /// as deterministic as the tick stream itself.
    pub fn evict_older_than(&mut self, now_tick: u64, max_age: u64) {
        let cutoff = now_tick.saturating_sub(max_age);
        while let Some(&front) = self.entries.front() {
            if front.tick >= cutoff {
                break;
            }
            Self::tally(&mut self.counts, front, false);
            self.entries.pop_front();
        }
    }

    /// The window's current pair of group confusion matrices.
    pub fn confusions(&self) -> GroupConfusions {
        self.counts
    }

    /// Windowed signed disparity of `metric`; `None` while the metric is
    /// undefined on the window (e.g. a group with no positives yet).
    pub fn signed_disparity(&self, metric: FairnessMetric) -> Option<f64> {
        metric.signed_disparity(&self.counts)
    }

    /// Windowed absolute disparity of `metric`.
    pub fn absolute_disparity(&self, metric: FairnessMetric) -> Option<f64> {
        metric.absolute_disparity(&self.counts)
    }

    fn tally(counts: &mut GroupConfusions, obs: Observation, add: bool) {
        let cm = if obs.privileged() { &mut counts.privileged } else { &mut counts.disadvantaged };
        let cell = match (obs.y_true(), obs.y_pred()) {
            (false, false) => &mut cm.tn,
            (false, true) => &mut cm.fp,
            (true, false) => &mut cm.fn_,
            (true, true) => &mut cm.tp,
        };
        if add {
            *cell += 1;
        } else {
            *cell = cell.saturating_sub(1);
        }
    }
}

/// Drift of a windowed disparity against a training-time baseline:
/// `window - baseline`, defined only when both sides are.
pub fn disparity_drift(window: Option<f64>, baseline: Option<f64>) -> Option<f64> {
    match (window, baseline) {
        (Some(w), Some(b)) => Some(w - b),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confusion::group_confusions;
    use crate::groups::Groups;

    /// Reference: re-tally the window contents from scratch.
    fn brute_force(entries: &[(bool, u8, u8)]) -> GroupConfusions {
        let y_true: Vec<u8> = entries.iter().map(|e| e.1).collect();
        let y_pred: Vec<u8> = entries.iter().map(|e| e.2).collect();
        let groups = Groups {
            privileged: entries.iter().map(|e| e.0).collect(),
            disadvantaged: entries.iter().map(|e| !e.0).collect(),
        };
        group_confusions(&y_true, &y_pred, &groups)
    }

    #[test]
    fn incremental_counts_match_brute_force_through_eviction() {
        let mut window = SlidingGroupWindow::new(8);
        let mut log: Vec<(bool, u8, u8)> = Vec::new();
        // A deterministic pseudo-stream of 50 observations.
        let mut state = 0x9E3779B97F4A7C15u64;
        for tick in 0..50u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let privileged = state & 1 == 0;
            let y_true = u8::from(state & 2 != 0);
            let y_pred = u8::from(state & 4 != 0);
            window.push(tick, privileged, y_true, y_pred);
            log.push((privileged, y_true, y_pred));
            let tail = &log[log.len().saturating_sub(8)..];
            assert_eq!(window.confusions(), brute_force(tail), "tick {tick}");
            assert_eq!(window.len(), tail.len());
        }
        assert_eq!(window.observed(), 50);
        assert_eq!(window.capacity(), 8);
    }

    #[test]
    fn disparities_follow_the_window_not_the_history() {
        let mut window = SlidingGroupWindow::new(4);
        assert!(window.is_empty());
        assert!(window.signed_disparity(FairnessMetric::EqualOpportunity).is_none());
        // Fill with perfect parity: both groups get a recalled positive.
        window.push(0, true, 1, 1);
        window.push(1, false, 1, 1);
        window.push(2, true, 1, 1);
        window.push(3, false, 1, 1);
        assert_eq!(window.signed_disparity(FairnessMetric::EqualOpportunity), Some(0.0));
        // Push 4 unfair observations: privileged positives recalled, the
        // disadvantaged missed; the fair prefix must be fully evicted.
        window.push(4, true, 1, 1);
        window.push(5, false, 1, 0);
        window.push(6, true, 1, 1);
        window.push(7, false, 1, 0);
        let eo = window.signed_disparity(FairnessMetric::EqualOpportunity);
        assert_eq!(eo, Some(1.0), "window must forget the fair history");
        assert_eq!(window.absolute_disparity(FairnessMetric::EqualOpportunity), Some(1.0));
        assert_eq!(window.len(), 4);
    }

    #[test]
    fn tick_eviction_uses_the_injected_clock() {
        let mut window = SlidingGroupWindow::new(100);
        for tick in 0..10u64 {
            window.push(tick, tick & 1 == 0, 1, 1);
        }
        window.evict_older_than(12, 5); // cutoff at tick 7
        assert_eq!(window.len(), 3, "ticks 7, 8, 9 survive");
        let gc = window.confusions();
        assert_eq!(gc.privileged.tp + gc.disadvantaged.tp, 3);
        // Re-running the same eviction is a no-op (deterministic).
        window.evict_older_than(12, 5);
        assert_eq!(window.len(), 3);
    }

    /// Every gauge a scrape could export from `window`: either undefined
    /// (`None`) or a finite number — a NaN/inf in telemetry is a bug.
    fn assert_gauges_finite(window: &SlidingGroupWindow, context: &str) {
        for metric in FairnessMetric::all() {
            for gauge in
                [window.signed_disparity(metric), window.absolute_disparity(metric)]
            {
                if let Some(v) = gauge {
                    assert!(v.is_finite(), "{context}: {metric:?} produced {v}");
                }
                let drift = disparity_drift(gauge, Some(0.25));
                if let Some(v) = drift {
                    assert!(v.is_finite(), "{context}: {metric:?} drift produced {v}");
                }
            }
        }
    }

    #[test]
    fn empty_window_gauges_are_undefined_not_nan() {
        let window = SlidingGroupWindow::new(16);
        assert!(window.is_empty());
        for metric in FairnessMetric::all() {
            assert_eq!(window.signed_disparity(metric), None);
            assert_eq!(window.absolute_disparity(metric), None);
        }
        assert_gauges_finite(&window, "empty window");
    }

    #[test]
    fn single_group_traffic_never_yields_nan() {
        // Only privileged observations: every cross-group difference is
        // undefined, and nothing may leak a NaN from the empty side.
        let mut window = SlidingGroupWindow::new(8);
        for tick in 0..12u64 {
            window.push(tick, true, u8::from(tick & 1 == 0), u8::from(tick & 2 == 0));
            assert_gauges_finite(&window, "privileged-only traffic");
        }
        for metric in FairnessMetric::all() {
            assert_eq!(
                window.signed_disparity(metric),
                None,
                "{metric:?} must be undefined with an empty disadvantaged side"
            );
        }
    }

    #[test]
    fn window_of_size_one_stays_finite_across_every_observation_shape() {
        // Capacity clamps to 1; each push fully replaces the window, so
        // the gauges flip between None and single-observation values —
        // all of which must be finite.
        let mut window = SlidingGroupWindow::new(0);
        assert_eq!(window.capacity(), 1);
        for privileged in [false, true] {
            for y_true in [0u8, 1] {
                for y_pred in [0u8, 1] {
                    window.push(0, privileged, y_true, y_pred);
                    assert_eq!(window.len(), 1);
                    assert_gauges_finite(
                        &window,
                        &format!("size-1 window ({privileged}, {y_true}, {y_pred})"),
                    );
                }
            }
        }
        assert_eq!(window.observed(), 8);
    }

    #[test]
    fn drift_is_defined_only_when_both_sides_are() {
        assert_eq!(disparity_drift(Some(0.4), Some(0.1)), Some(0.30000000000000004));
        assert_eq!(disparity_drift(None, Some(0.1)), None);
        assert_eq!(disparity_drift(Some(0.4), None), None);
    }
}
