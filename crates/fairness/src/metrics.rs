//! Group fairness metrics for binary classification.
//!
//! Each metric is a *signed disparity* `metric(privileged) −
//! metric(disadvantaged)`; 0 means the metric is satisfied. The study's
//! impact classification uses the **absolute** disparity (a cleaning
//! technique worsens fairness when it increases |disparity|), accessible
//! via [`FairnessMetric::absolute_disparity`].

use crate::confusion::GroupConfusions;

/// The group fairness metrics available to analyses.
///
/// The paper's headline metrics are [`FairnessMetric::PredictiveParity`]
/// (precision parity — the vendor's interest) and
/// [`FairnessMetric::EqualOpportunity`] (recall parity — the applicant's
/// interest); the rest are included for the commonly-reported set of group
/// fairness metrics the raw confusion counts enable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FairnessMetric {
    /// Precision difference: TPpriv/(TPpriv+FPpriv) − TPdis/(TPdis+FPdis).
    PredictiveParity,
    /// Recall difference: TPpriv/(TPpriv+FNpriv) − TPdis/(TPdis+FNdis).
    EqualOpportunity,
    /// Selection-rate difference (a.k.a. statistical parity difference).
    DemographicParity,
    /// False-positive-rate difference.
    FprParity,
    /// Mean of the absolute recall and FPR differences (equalized odds
    /// reduces to 0 iff both TPR and FPR match across groups).
    EqualizedOdds,
    /// Accuracy difference.
    AccuracyParity,
}

impl FairnessMetric {
    /// All metrics.
    pub fn all() -> [FairnessMetric; 6] {
        [
            FairnessMetric::PredictiveParity,
            FairnessMetric::EqualOpportunity,
            FairnessMetric::DemographicParity,
            FairnessMetric::FprParity,
            FairnessMetric::EqualizedOdds,
            FairnessMetric::AccuracyParity,
        ]
    }

    /// The two headline metrics of the paper's evaluation.
    pub fn headline() -> [FairnessMetric; 2] {
        [FairnessMetric::PredictiveParity, FairnessMetric::EqualOpportunity]
    }

    /// Short name used in tables and result keys.
    pub fn name(&self) -> &'static str {
        match self {
            FairnessMetric::PredictiveParity => "PP",
            FairnessMetric::EqualOpportunity => "EO",
            FairnessMetric::DemographicParity => "DP",
            FairnessMetric::FprParity => "FPRP",
            FairnessMetric::EqualizedOdds => "EOdds",
            FairnessMetric::AccuracyParity => "AccP",
        }
    }

    /// Parses a short metric name.
    pub fn parse(name: &str) -> Option<FairnessMetric> {
        match name {
            "PP" | "predictive-parity" => Some(FairnessMetric::PredictiveParity),
            "EO" | "equal-opportunity" => Some(FairnessMetric::EqualOpportunity),
            "DP" | "demographic-parity" => Some(FairnessMetric::DemographicParity),
            "FPRP" | "fpr-parity" => Some(FairnessMetric::FprParity),
            "EOdds" | "equalized-odds" => Some(FairnessMetric::EqualizedOdds),
            "AccP" | "accuracy-parity" => Some(FairnessMetric::AccuracyParity),
            _ => None,
        }
    }

    /// The signed disparity (privileged − disadvantaged).
    ///
    /// `None` when the metric is undefined for either group (e.g. precision
    /// with no positive predictions in a group).
    pub fn signed_disparity(&self, gc: &GroupConfusions) -> Option<f64> {
        let p = &gc.privileged;
        let d = &gc.disadvantaged;
        match self {
            FairnessMetric::PredictiveParity => Some(p.precision()? - d.precision()?),
            FairnessMetric::EqualOpportunity => Some(p.recall()? - d.recall()?),
            FairnessMetric::DemographicParity => Some(p.selection_rate()? - d.selection_rate()?),
            FairnessMetric::FprParity => {
                Some(p.false_positive_rate()? - d.false_positive_rate()?)
            }
            FairnessMetric::EqualizedOdds => {
                let tpr = (p.recall()? - d.recall()?).abs();
                let fpr = (p.false_positive_rate()? - d.false_positive_rate()?).abs();
                Some((tpr + fpr) / 2.0)
            }
            FairnessMetric::AccuracyParity => Some(p.accuracy()? - d.accuracy()?),
        }
    }

    /// The absolute disparity — the quantity whose growth/shrinkage the
    /// impact classification tests.
    pub fn absolute_disparity(&self, gc: &GroupConfusions) -> Option<f64> {
        self.signed_disparity(gc).map(f64::abs)
    }
}

impl std::fmt::Display for FairnessMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConfusionMatrix;

    fn gc(p: ConfusionMatrix, d: ConfusionMatrix) -> GroupConfusions {
        GroupConfusions { privileged: p, disadvantaged: d }
    }

    #[test]
    fn predictive_parity_is_precision_gap() {
        // priv precision 0.8 (8/10), dis precision 0.5 (5/10).
        let g = gc(
            ConfusionMatrix { tn: 10, fp: 2, fn_: 3, tp: 8 },
            ConfusionMatrix { tn: 10, fp: 5, fn_: 3, tp: 5 },
        );
        let pp = FairnessMetric::PredictiveParity.signed_disparity(&g).unwrap();
        assert!((pp - 0.3).abs() < 1e-12);
        assert!((FairnessMetric::PredictiveParity.absolute_disparity(&g).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn equal_opportunity_is_recall_gap() {
        // priv recall 8/11, dis recall 5/8.
        let g = gc(
            ConfusionMatrix { tn: 10, fp: 2, fn_: 3, tp: 8 },
            ConfusionMatrix { tn: 10, fp: 5, fn_: 3, tp: 5 },
        );
        let eo = FairnessMetric::EqualOpportunity.signed_disparity(&g).unwrap();
        assert!((eo - (8.0 / 11.0 - 5.0 / 8.0)).abs() < 1e-12);
    }

    #[test]
    fn perfect_parity_is_zero_for_all_metrics() {
        let cm = ConfusionMatrix { tn: 10, fp: 2, fn_: 3, tp: 8 };
        let g = gc(cm, cm);
        for metric in FairnessMetric::all() {
            let s = metric.signed_disparity(&g).unwrap();
            assert!(s.abs() < 1e-12, "{metric}: {s}");
        }
    }

    #[test]
    fn undefined_when_group_metric_undefined() {
        // Disadvantaged group has no positive predictions: precision undefined.
        let g = gc(
            ConfusionMatrix { tn: 5, fp: 1, fn_: 1, tp: 3 },
            ConfusionMatrix { tn: 5, fp: 0, fn_: 4, tp: 0 },
        );
        assert!(FairnessMetric::PredictiveParity.signed_disparity(&g).is_none());
        // Recall is defined (4 actual positives).
        assert!(FairnessMetric::EqualOpportunity.signed_disparity(&g).is_some());
    }

    #[test]
    fn demographic_parity_uses_selection_rates() {
        // priv selects 6/12, dis selects 3/12.
        let g = gc(
            ConfusionMatrix { tn: 4, fp: 2, fn_: 2, tp: 4 },
            ConfusionMatrix { tn: 7, fp: 1, fn_: 2, tp: 2 },
        );
        let dp = FairnessMetric::DemographicParity.signed_disparity(&g).unwrap();
        assert!((dp - 0.25).abs() < 1e-12);
    }

    #[test]
    fn equalized_odds_combines_tpr_and_fpr() {
        // TPR gap = |0.8 - 0.6| = 0.2; FPR gap = |0.1 - 0.3| = 0.2 -> 0.2.
        let g = gc(
            ConfusionMatrix { tn: 9, fp: 1, fn_: 2, tp: 8 },
            ConfusionMatrix { tn: 7, fp: 3, fn_: 4, tp: 6 },
        );
        let eo = FairnessMetric::EqualizedOdds.signed_disparity(&g).unwrap();
        assert!((eo - 0.2).abs() < 1e-12);
        // EqualizedOdds is already non-negative.
        assert_eq!(
            FairnessMetric::EqualizedOdds.absolute_disparity(&g).unwrap(),
            eo
        );
    }

    #[test]
    fn names_round_trip() {
        for metric in FairnessMetric::all() {
            assert_eq!(FairnessMetric::parse(metric.name()), Some(metric));
        }
        assert_eq!(FairnessMetric::parse("nope"), None);
        assert_eq!(FairnessMetric::headline().len(), 2);
    }
}
