//! Group predicates and group membership masks.

use tabular::{Cell, DataFrame, TabularError};

/// Comparison operator of a group predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality (categorical or numeric).
    Eq,
    /// Inequality.
    Ne,
    /// Strictly greater (numeric only).
    Gt,
    /// Greater or equal (numeric only).
    Ge,
    /// Strictly less (numeric only).
    Lt,
    /// Less or equal (numeric only).
    Le,
}

impl CmpOp {
    fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
        }
    }
}

/// The right-hand side of a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum PredicateValue {
    /// Numeric comparison value.
    Num(f64),
    /// Categorical comparison label.
    Cat(String),
}

/// A membership predicate on one sensitive attribute, e.g.
/// `("age", Gt, 25)` or `("sex", Eq, "male")` — the Rust form of the
/// `privileged_groups` entries in the paper's Listing 1.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupPredicate {
    /// Sensitive attribute name.
    pub attribute: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Comparison value.
    pub value: PredicateValue,
}

impl GroupPredicate {
    /// Numeric predicate constructor.
    pub fn num(attribute: impl Into<String>, op: CmpOp, value: f64) -> Self {
        GroupPredicate { attribute: attribute.into(), op, value: PredicateValue::Num(value) }
    }

    /// Categorical predicate constructor.
    pub fn cat(attribute: impl Into<String>, op: CmpOp, value: impl Into<String>) -> Self {
        GroupPredicate {
            attribute: attribute.into(),
            op,
            value: PredicateValue::Cat(value.into()),
        }
    }

    /// Evaluates the predicate for every row.
    ///
    /// Rows with a missing sensitive attribute evaluate to `false`
    /// (they fall into the disadvantaged side of a single-attribute
    /// partition, consistent with "privileged group and all other tuples").
    pub fn evaluate(&self, frame: &DataFrame) -> Result<Vec<bool>, TabularError> {
        let n = frame.n_rows();
        let mut mask = Vec::with_capacity(n);
        for i in 0..n {
            let cell = frame.cell(i, &self.attribute)?;
            let hit = match (&self.value, cell) {
                (PredicateValue::Num(v), Cell::Num(x)) => match self.op {
                    CmpOp::Eq => x == *v,
                    CmpOp::Ne => x != *v,
                    CmpOp::Gt => x > *v,
                    CmpOp::Ge => x >= *v,
                    CmpOp::Lt => x < *v,
                    CmpOp::Le => x <= *v,
                },
                (PredicateValue::Cat(v), Cell::Str(s)) => match self.op {
                    CmpOp::Eq => s == v,
                    CmpOp::Ne => s != v,
                    _ => {
                        return Err(TabularError::InvalidArgument(format!(
                            "operator {} not supported for categorical attribute '{}'",
                            self.op.symbol(),
                            self.attribute
                        )))
                    }
                },
                (_, Cell::Missing) => false,
                _ => {
                    return Err(TabularError::KindMismatch {
                        column: self.attribute.clone(),
                        expected: match self.value {
                            PredicateValue::Num(_) => "numeric",
                            PredicateValue::Cat(_) => "categorical",
                        },
                    })
                }
            };
            mask.push(hit);
        }
        Ok(mask)
    }
}

impl std::fmt::Display for GroupPredicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.value {
            PredicateValue::Num(v) => write!(f, "{} {} {}", self.attribute, self.op.symbol(), v),
            PredicateValue::Cat(v) => write!(f, "{} {} '{}'", self.attribute, self.op.symbol(), v),
        }
    }
}

/// How groups are derived from predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupSpec {
    /// One predicate; privileged = predicate true, disadvantaged = rest.
    /// Partitions the data.
    SingleAttribute(GroupPredicate),
    /// Conjunction of predicates; privileged = all true, disadvantaged =
    /// all false, mixed tuples excluded. Does *not* partition the data.
    Intersectional(Vec<GroupPredicate>),
}

impl GroupSpec {
    /// Short label used in result keys, e.g. `sex` or `sex*age`.
    pub fn label(&self) -> String {
        match self {
            GroupSpec::SingleAttribute(p) => p.attribute.clone(),
            GroupSpec::Intersectional(ps) => ps
                .iter()
                .map(|p| p.attribute.as_str())
                .collect::<Vec<_>>()
                .join("*"),
        }
    }

    /// True when the spec is intersectional.
    pub fn is_intersectional(&self) -> bool {
        matches!(self, GroupSpec::Intersectional(_))
    }

    /// Computes privileged/disadvantaged membership masks.
    pub fn evaluate(&self, frame: &DataFrame) -> Result<Groups, TabularError> {
        match self {
            GroupSpec::SingleAttribute(pred) => {
                let privileged = pred.evaluate(frame)?;
                let disadvantaged = privileged.iter().map(|&b| !b).collect();
                Ok(Groups { privileged, disadvantaged })
            }
            GroupSpec::Intersectional(preds) => {
                if preds.is_empty() {
                    return Err(TabularError::InvalidArgument(
                        "intersectional spec needs at least one predicate".to_string(),
                    ));
                }
                let masks: Vec<Vec<bool>> = preds
                    .iter()
                    .map(|p| p.evaluate(frame))
                    .collect::<Result<_, _>>()?;
                let n = frame.n_rows();
                let mut privileged = vec![true; n];
                let mut disadvantaged = vec![true; n];
                for mask in &masks {
                    for i in 0..n {
                        privileged[i] &= mask[i];
                        disadvantaged[i] &= !mask[i];
                    }
                }
                Ok(Groups { privileged, disadvantaged })
            }
        }
    }
}

/// Privileged/disadvantaged membership masks over a frame's rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Groups {
    /// True for rows in the (intersectionally) privileged group.
    pub privileged: Vec<bool>,
    /// True for rows in the (intersectionally) disadvantaged group.
    pub disadvantaged: Vec<bool>,
}

impl Groups {
    /// Number of privileged rows.
    pub fn n_privileged(&self) -> usize {
        self.privileged.iter().filter(|&&b| b).count()
    }

    /// Number of disadvantaged rows.
    pub fn n_disadvantaged(&self) -> usize {
        self.disadvantaged.iter().filter(|&&b| b).count()
    }

    /// Number of rows excluded from both groups (always 0 for
    /// single-attribute specs).
    pub fn n_excluded(&self) -> usize {
        self.privileged
            .iter()
            .zip(&self.disadvantaged)
            .filter(|(&p, &d)| !p && !d)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::ColumnRole;

    fn demo_frame() -> DataFrame {
        DataFrame::builder()
            .numeric("age", ColumnRole::Sensitive, vec![30.0, 20.0, 50.0, f64::NAN])
            .categorical(
                "sex",
                ColumnRole::Sensitive,
                &[Some("male"), Some("female"), Some("male"), Some("female")],
            )
            .numeric("y", ColumnRole::Label, vec![1.0, 0.0, 1.0, 0.0])
            .build()
            .unwrap()
    }

    #[test]
    fn numeric_predicate_ops() {
        let df = demo_frame();
        let gt = GroupPredicate::num("age", CmpOp::Gt, 25.0).evaluate(&df).unwrap();
        assert_eq!(gt, vec![true, false, true, false]); // NaN -> false
        let le = GroupPredicate::num("age", CmpOp::Le, 30.0).evaluate(&df).unwrap();
        assert_eq!(le, vec![true, true, false, false]);
        let eq = GroupPredicate::num("age", CmpOp::Eq, 20.0).evaluate(&df).unwrap();
        assert_eq!(eq, vec![false, true, false, false]);
        let ne = GroupPredicate::num("age", CmpOp::Ne, 20.0).evaluate(&df).unwrap();
        assert_eq!(ne, vec![true, false, true, false]); // NaN -> false even for Ne
    }

    #[test]
    fn categorical_predicate() {
        let df = demo_frame();
        let eq = GroupPredicate::cat("sex", CmpOp::Eq, "male").evaluate(&df).unwrap();
        assert_eq!(eq, vec![true, false, true, false]);
        let ne = GroupPredicate::cat("sex", CmpOp::Ne, "male").evaluate(&df).unwrap();
        assert_eq!(ne, vec![false, true, false, true]);
        // Ordering on categorical is rejected.
        assert!(GroupPredicate::cat("sex", CmpOp::Gt, "male").evaluate(&df).is_err());
    }

    #[test]
    fn kind_mismatch_rejected() {
        let df = demo_frame();
        assert!(GroupPredicate::num("sex", CmpOp::Eq, 1.0).evaluate(&df).is_err());
        assert!(GroupPredicate::cat("age", CmpOp::Eq, "30").evaluate(&df).is_err());
        assert!(GroupPredicate::num("nope", CmpOp::Eq, 1.0).evaluate(&df).is_err());
    }

    #[test]
    fn single_attribute_partitions() {
        let df = demo_frame();
        let spec = GroupSpec::SingleAttribute(GroupPredicate::cat("sex", CmpOp::Eq, "male"));
        let groups = spec.evaluate(&df).unwrap();
        assert_eq!(groups.n_privileged(), 2);
        assert_eq!(groups.n_disadvantaged(), 2);
        assert_eq!(groups.n_excluded(), 0);
        assert!(!spec.is_intersectional());
        assert_eq!(spec.label(), "sex");
    }

    #[test]
    fn intersectional_excludes_mixed() {
        let df = demo_frame();
        let spec = GroupSpec::Intersectional(vec![
            GroupPredicate::cat("sex", CmpOp::Eq, "male"),
            GroupPredicate::num("age", CmpOp::Gt, 25.0),
        ]);
        let groups = spec.evaluate(&df).unwrap();
        // Row 0: male, 30 -> privileged. Row 1: female, 20 -> disadvantaged.
        // Row 2: male, 50 -> privileged. Row 3: female, NaN -> both preds
        // false -> disadvantaged.
        assert_eq!(groups.privileged, vec![true, false, true, false]);
        assert_eq!(groups.disadvantaged, vec![false, true, false, true]);
        assert_eq!(spec.label(), "sex*age");
        assert!(spec.is_intersectional());
    }

    #[test]
    fn intersectional_mixed_tuple_excluded() {
        let df = DataFrame::builder()
            .categorical("sex", ColumnRole::Sensitive, &[Some("male")])
            .numeric("age", ColumnRole::Sensitive, vec![20.0])
            .build()
            .unwrap();
        let spec = GroupSpec::Intersectional(vec![
            GroupPredicate::cat("sex", CmpOp::Eq, "male"),
            GroupPredicate::num("age", CmpOp::Gt, 25.0),
        ]);
        let groups = spec.evaluate(&df).unwrap();
        // Male (privileged axis 1) but young (disadvantaged axis 2): excluded.
        assert_eq!(groups.n_privileged(), 0);
        assert_eq!(groups.n_disadvantaged(), 0);
        assert_eq!(groups.n_excluded(), 1);
    }

    #[test]
    fn empty_intersectional_rejected() {
        let df = demo_frame();
        assert!(GroupSpec::Intersectional(vec![]).evaluate(&df).is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(GroupPredicate::num("age", CmpOp::Gt, 25.0).to_string(), "age > 25");
        assert_eq!(
            GroupPredicate::cat("sex", CmpOp::Eq, "male").to_string(),
            "sex == 'male'"
        );
    }
}
