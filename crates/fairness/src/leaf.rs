//! Per-leaf group confusion accounting — the counting substrate of
//! model-side rectification.
//!
//! A tree-structured classifier partitions the validation rows into
//! cells (one per reachable leaf). Forcing a leaf's prediction to 0 or 1
//! moves every validation row of that cell in one deterministic way, so
//! the fairness and accuracy consequences of any set of leaf edits can
//! be computed **exactly** from per-leaf confusion counts — no model
//! re-evaluation inside the search. [`LeafAccounting`] holds those
//! counts per leaf (privileged / disadvantaged / group-excluded rows
//! separately), and its [`LeafAccounting::forced`] transform gives the
//! closed-form post-edit counts the rectifier's branch-and-bound bound
//! is built from.

use crate::confusion::GroupConfusions;
use crate::groups::Groups;
use crate::ConfusionMatrix;

/// Confusion counts of one leaf's validation rows, split three ways:
/// privileged rows, disadvantaged rows, and rows excluded from both
/// groups (possible under intersectional specs — they still count
/// toward accuracy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeafAccounting {
    /// Counts over the leaf's privileged rows.
    pub privileged: ConfusionMatrix,
    /// Counts over the leaf's disadvantaged rows.
    pub disadvantaged: ConfusionMatrix,
    /// Counts over rows in neither group.
    pub excluded: ConfusionMatrix,
}

/// Applies the force-to-`label` transform to one confusion matrix: every
/// row now predicts `label`, so actual positives land in tp (label 1) or
/// fn (label 0) and actual negatives in fp (label 1) or tn (label 0).
fn force_cm(cm: &ConfusionMatrix, label: u8) -> ConfusionMatrix {
    let positives = cm.tp + cm.fn_;
    let negatives = cm.fp + cm.tn;
    if label == 1 {
        ConfusionMatrix { tp: positives, fp: negatives, fn_: 0, tn: 0 }
    } else {
        ConfusionMatrix { tp: 0, fp: 0, fn_: positives, tn: negatives }
    }
}

impl LeafAccounting {
    /// Tallies one row into the accounting.
    pub fn add(&mut self, privileged: bool, disadvantaged: bool, y_true: u8, y_pred: u8) {
        let cm = if privileged {
            &mut self.privileged
        } else if disadvantaged {
            &mut self.disadvantaged
        } else {
            &mut self.excluded
        };
        match (y_true, y_pred) {
            (0, 0) => cm.tn += 1,
            (0, _) => cm.fp += 1,
            (_, 0) => cm.fn_ += 1,
            _ => cm.tp += 1,
        }
    }

    /// Total validation rows of the leaf.
    pub fn total(&self) -> u64 {
        self.privileged.total() + self.disadvantaged.total() + self.excluded.total()
    }

    /// Misclassified validation rows of the leaf (all three partitions).
    pub fn errors(&self) -> u64 {
        self.privileged.fp
            + self.privileged.fn_
            + self.disadvantaged.fp
            + self.disadvantaged.fn_
            + self.excluded.fp
            + self.excluded.fn_
    }

    /// The accounting after forcing every row of the leaf to predict
    /// `label` — the exact post-edit counts, closed form.
    pub fn forced(&self, label: u8) -> LeafAccounting {
        LeafAccounting {
            privileged: force_cm(&self.privileged, label),
            disadvantaged: force_cm(&self.disadvantaged, label),
            excluded: force_cm(&self.excluded, label),
        }
    }

    /// Element-wise sum with another accounting.
    pub fn merge(&mut self, other: &LeafAccounting) {
        let add = |a: &mut ConfusionMatrix, b: &ConfusionMatrix| {
            a.tn += b.tn;
            a.fp += b.fp;
            a.fn_ += b.fn_;
            a.tp += b.tp;
        };
        add(&mut self.privileged, &other.privileged);
        add(&mut self.disadvantaged, &other.disadvantaged);
        add(&mut self.excluded, &other.excluded);
    }

    /// The group confusion pair a fairness metric consumes (excluded
    /// rows are dropped, exactly as in
    /// [`crate::confusion::group_confusions`]).
    pub fn group_confusions(&self) -> GroupConfusions {
        GroupConfusions { privileged: self.privileged, disadvantaged: self.disadvantaged }
    }
}

/// Tallies per-leaf accountings for a validation split.
///
/// `leaf_of_row[i]` is the dense cell index (`< n_cells`) row `i` routes
/// to; `y_pred` are the model's current predictions. The sum over all
/// returned accountings reproduces the overall confusion counts.
///
/// Panics when the input lengths disagree or a cell index is out of
/// range.
pub fn per_leaf_accounting(
    leaf_of_row: &[usize],
    n_cells: usize,
    y_true: &[u8],
    y_pred: &[u8],
    groups: &Groups,
) -> Vec<LeafAccounting> {
    assert_eq!(leaf_of_row.len(), y_true.len(), "leaf assignment length mismatch");
    assert_eq!(y_true.len(), y_pred.len(), "prediction length mismatch");
    assert_eq!(y_true.len(), groups.privileged.len(), "group mask length mismatch");
    let mut out = vec![LeafAccounting::default(); n_cells];
    for i in 0..y_true.len() {
        out[leaf_of_row[i]].add(
            groups.privileged[i],
            groups.disadvantaged[i],
            y_true[i],
            y_pred[i],
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn groups(privileged: Vec<bool>, disadvantaged: Vec<bool>) -> Groups {
        Groups { privileged, disadvantaged }
    }

    #[test]
    fn accounting_partitions_rows_three_ways() {
        let leaf_of_row = [0, 0, 1, 1, 0];
        let y_true = [1, 0, 1, 0, 1];
        let y_pred = [1, 1, 0, 0, 1];
        let g = groups(
            vec![true, true, false, false, false],
            vec![false, false, true, true, false],
        );
        let acc = per_leaf_accounting(&leaf_of_row, 2, &y_true, &y_pred, &g);
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[0].privileged, ConfusionMatrix { tn: 0, fp: 1, fn_: 0, tp: 1 });
        assert_eq!(acc[0].excluded.tp, 1, "ungrouped rows still count");
        assert_eq!(acc[1].disadvantaged, ConfusionMatrix { tn: 1, fp: 0, fn_: 1, tp: 0 });
        assert_eq!(acc[0].total() + acc[1].total(), 5);
        assert_eq!(acc[0].errors(), 1);
        assert_eq!(acc[1].errors(), 1);
    }

    #[test]
    fn sum_over_leaves_matches_overall_confusions() {
        let n = 60;
        let leaf_of_row: Vec<usize> = (0..n).map(|i| i % 4).collect();
        let y_true: Vec<u8> = (0..n).map(|i| ((i / 3) % 2) as u8).collect();
        let y_pred: Vec<u8> = (0..n).map(|i| ((i / 5) % 2) as u8).collect();
        let priv_mask: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let dis_mask: Vec<bool> = priv_mask.iter().map(|&b| !b).collect();
        let g = groups(priv_mask, dis_mask);
        let acc = per_leaf_accounting(&leaf_of_row, 4, &y_true, &y_pred, &g);
        let mut sum = LeafAccounting::default();
        for a in &acc {
            sum.merge(a);
        }
        let overall = crate::confusion::group_confusions(&y_true, &y_pred, &g);
        assert_eq!(sum.group_confusions(), overall);
        assert_eq!(sum.excluded.total(), 0);
    }

    #[test]
    fn forced_moves_every_row_to_the_label() {
        let mut acc = LeafAccounting::default();
        acc.add(true, false, 1, 0); // privileged fn
        acc.add(true, false, 0, 0); // privileged tn
        acc.add(false, true, 1, 1); // disadvantaged tp
        acc.add(false, false, 0, 1); // excluded fp
        let to_one = acc.forced(1);
        assert_eq!(to_one.privileged, ConfusionMatrix { tp: 1, fp: 1, fn_: 0, tn: 0 });
        assert_eq!(to_one.disadvantaged.tp, 1);
        assert_eq!(to_one.excluded.fp, 1);
        let to_zero = acc.forced(0);
        assert_eq!(to_zero.privileged, ConfusionMatrix { tp: 0, fp: 0, fn_: 1, tn: 1 });
        assert_eq!(to_zero.disadvantaged.fn_, 1);
        assert_eq!(to_zero.excluded.tn, 1);
        // Totals are invariant under forcing.
        assert_eq!(to_one.total(), acc.total());
        assert_eq!(to_zero.total(), acc.total());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        per_leaf_accounting(
            &[0],
            1,
            &[1, 0],
            &[1, 0],
            &groups(vec![true, true], vec![false, false]),
        );
    }
}
