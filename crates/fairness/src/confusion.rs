//! Group-wise confusion matrices.
//!
//! The framework's design decision (paper Section IV): record the *raw*
//! per-group confusion counts for every cleaning technique, so any group
//! fairness metric can be computed afterwards without re-running models.

use crate::groups::Groups;
use crate::ConfusionMatrix;

/// The pair of confusion matrices a fairness metric compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupConfusions {
    /// Confusion counts over the privileged group.
    pub privileged: ConfusionMatrix,
    /// Confusion counts over the disadvantaged group.
    pub disadvantaged: ConfusionMatrix,
}

/// Tallies group-wise confusion matrices for a prediction vector.
///
/// Rows excluded from both groups (possible under intersectional specs)
/// are counted in neither matrix.
///
/// Panics when the input lengths disagree.
pub fn group_confusions(y_true: &[u8], y_pred: &[u8], groups: &Groups) -> GroupConfusions {
    assert_eq!(y_true.len(), y_pred.len(), "prediction length mismatch");
    assert_eq!(y_true.len(), groups.privileged.len(), "group mask length mismatch");
    let mut out = GroupConfusions::default();
    for i in 0..y_true.len() {
        let cm = if groups.privileged[i] {
            &mut out.privileged
        } else if groups.disadvantaged[i] {
            &mut out.disadvantaged
        } else {
            continue;
        };
        match (y_true[i], y_pred[i]) {
            (0, 0) => cm.tn += 1,
            (0, _) => cm.fp += 1,
            (_, 0) => cm.fn_ += 1,
            _ => cm.tp += 1,
        }
    }
    out
}

impl GroupConfusions {
    /// Total number of tallied rows across both groups.
    pub fn total(&self) -> u64 {
        self.privileged.total() + self.disadvantaged.total()
    }

    /// Element-wise sum — used to aggregate counts across repeated runs
    /// before computing metrics (the paper aggregates confusion-matrix
    /// values over samples before computing fairness).
    pub fn merged(&self, other: &GroupConfusions) -> GroupConfusions {
        GroupConfusions {
            privileged: ConfusionMatrix {
                tn: self.privileged.tn + other.privileged.tn,
                fp: self.privileged.fp + other.privileged.fp,
                fn_: self.privileged.fn_ + other.privileged.fn_,
                tp: self.privileged.tp + other.privileged.tp,
            },
            disadvantaged: ConfusionMatrix {
                tn: self.disadvantaged.tn + other.disadvantaged.tn,
                fp: self.disadvantaged.fp + other.disadvantaged.fp,
                fn_: self.disadvantaged.fn_ + other.disadvantaged.fn_,
                tp: self.disadvantaged.tp + other.disadvantaged.tp,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn groups(privileged: Vec<bool>, disadvantaged: Vec<bool>) -> Groups {
        Groups { privileged, disadvantaged }
    }

    #[test]
    fn tallies_by_group() {
        let y_true = [1, 0, 1, 0];
        let y_pred = [1, 1, 0, 0];
        let g = groups(vec![true, true, false, false], vec![false, false, true, true]);
        let gc = group_confusions(&y_true, &y_pred, &g);
        assert_eq!(gc.privileged, ConfusionMatrix { tn: 0, fp: 1, fn_: 0, tp: 1 });
        assert_eq!(gc.disadvantaged, ConfusionMatrix { tn: 1, fp: 0, fn_: 1, tp: 0 });
        assert_eq!(gc.total(), 4);
    }

    #[test]
    fn excluded_rows_are_skipped() {
        let y_true = [1, 1];
        let y_pred = [1, 1];
        let g = groups(vec![true, false], vec![false, false]);
        let gc = group_confusions(&y_true, &y_pred, &g);
        assert_eq!(gc.total(), 1);
        assert_eq!(gc.privileged.tp, 1);
        assert_eq!(gc.disadvantaged.total(), 0);
    }

    #[test]
    fn conservation_of_counts() {
        // Counts in priv + dis == total rows for a partitioning spec.
        let y_true: Vec<u8> = (0..50).map(|i| (i % 2) as u8).collect();
        let y_pred: Vec<u8> = (0..50).map(|i| ((i / 2) % 2) as u8).collect();
        let priv_mask: Vec<bool> = (0..50).map(|i| i % 3 == 0).collect();
        let dis_mask: Vec<bool> = priv_mask.iter().map(|&b| !b).collect();
        let gc = group_confusions(&y_true, &y_pred, &groups(priv_mask, dis_mask));
        assert_eq!(gc.total(), 50);
    }

    #[test]
    fn merged_adds_counts() {
        let a = GroupConfusions {
            privileged: ConfusionMatrix { tn: 1, fp: 2, fn_: 3, tp: 4 },
            disadvantaged: ConfusionMatrix { tn: 5, fp: 6, fn_: 7, tp: 8 },
        };
        let b = a;
        let m = a.merged(&b);
        assert_eq!(m.privileged.tp, 8);
        assert_eq!(m.disadvantaged.tn, 10);
        assert_eq!(m.total(), 72);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        group_confusions(&[1], &[1, 0], &groups(vec![true], vec![false]));
    }
}
