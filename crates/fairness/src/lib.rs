//! # fairness — group fairness substrate
//!
//! Implements the paper's group machinery (Section II):
//!
//! * **group predicates** — declarative membership tests on sensitive
//!   attributes (`("age", >, 25)`, `("sex", ==, "male")`), mirroring the
//!   `privileged_groups` entries of the declarative dataset definitions;
//! * **single-attribute groups** — a predicate partitions the data into a
//!   privileged and a disadvantaged group;
//! * **intersectional groups** — the conjunction of several predicates;
//!   tuples privileged along one axis and disadvantaged along another are
//!   *excluded* (the paper's intersectional definitions deliberately do not
//!   partition the data);
//! * **group-wise confusion matrices** and the fairness metrics computed
//!   from them — predictive parity and equal opportunity (the two headline
//!   metrics), plus demographic parity, false-positive-rate parity,
//!   equalized odds and accuracy parity for follow-up analyses.
//!
//! ```
//! use fairness::{group_confusions, CmpOp, FairnessMetric, GroupPredicate, GroupSpec};
//! use tabular::{ColumnRole, DataFrame};
//!
//! let test = DataFrame::builder()
//!     .categorical("sex", ColumnRole::Sensitive,
//!         &[Some("male"), Some("male"), Some("female"), Some("female")])
//!     .numeric("label", ColumnRole::Label, vec![1.0, 0.0, 1.0, 0.0])
//!     .build()
//!     .unwrap();
//! let spec = GroupSpec::SingleAttribute(GroupPredicate::cat("sex", CmpOp::Eq, "male"));
//! let groups = spec.evaluate(&test).unwrap();
//!
//! let y_true = [1, 0, 1, 0];
//! let y_pred = [1, 0, 0, 0]; // misses the female positive
//! let gc = group_confusions(&y_true, &y_pred, &groups);
//! let eo = FairnessMetric::EqualOpportunity.signed_disparity(&gc).unwrap();
//! assert_eq!(eo, 1.0); // male recall 1.0, female recall 0.0
//! ```

pub mod confusion;
pub mod groups;
pub mod leaf;
pub mod metrics;
pub mod window;

pub use confusion::{group_confusions, GroupConfusions};
pub use groups::{CmpOp, GroupPredicate, GroupSpec, Groups, PredicateValue};
pub use leaf::{per_leaf_accounting, LeafAccounting};
pub use metrics::FairnessMetric;
pub use window::{disparity_drift, SlidingGroupWindow};

/// Re-export: the confusion-matrix type the metrics consume.
pub use mlcore_types::ConfusionMatrix;

/// Internal shim so `fairness` does not depend on all of `mlcore`:
/// the confusion matrix lives here in a tiny leaf module and `mlcore`'s
/// version is structurally identical. We re-implement it to keep the
/// crate graph acyclic (mlcore must not depend on fairness and vice versa).
mod mlcore_types {
    /// Counts of a binary confusion matrix (group-restricted).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct ConfusionMatrix {
        /// True negatives.
        pub tn: u64,
        /// False positives.
        pub fp: u64,
        /// False negatives.
        pub fn_: u64,
        /// True positives.
        pub tp: u64,
    }

    impl ConfusionMatrix {
        /// Total number of tallied examples.
        pub fn total(&self) -> u64 {
            self.tn + self.fp + self.fn_ + self.tp
        }

        /// Precision; `None` when no positive predictions exist.
        pub fn precision(&self) -> Option<f64> {
            let d = self.tp + self.fp;
            (d > 0).then(|| self.tp as f64 / d as f64)
        }

        /// Recall; `None` when no actual positives exist.
        pub fn recall(&self) -> Option<f64> {
            let d = self.tp + self.fn_;
            (d > 0).then(|| self.tp as f64 / d as f64)
        }

        /// False positive rate; `None` when no actual negatives exist.
        pub fn false_positive_rate(&self) -> Option<f64> {
            let d = self.fp + self.tn;
            (d > 0).then(|| self.fp as f64 / d as f64)
        }

        /// Fraction predicted positive; `None` when empty.
        pub fn selection_rate(&self) -> Option<f64> {
            let n = self.total();
            (n > 0).then(|| (self.tp + self.fp) as f64 / n as f64)
        }

        /// Accuracy; `None` when empty.
        pub fn accuracy(&self) -> Option<f64> {
            let n = self.total();
            (n > 0).then(|| (self.tp + self.tn) as f64 / n as f64)
        }
    }
}
