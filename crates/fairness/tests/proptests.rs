//! Property-based tests for groups and fairness metrics.

use fairness::{
    group_confusions, CmpOp, ConfusionMatrix, FairnessMetric, GroupConfusions, GroupPredicate,
    GroupSpec, Groups,
};
use proptest::prelude::*;
use tabular::{ColumnRole, DataFrame};

fn arb_confusion() -> impl Strategy<Value = ConfusionMatrix> {
    (0u64..500, 0u64..500, 0u64..500, 0u64..500)
        .prop_map(|(tn, fp, fn_, tp)| ConfusionMatrix { tn, fp, fn_, tp })
}

proptest! {
    #[test]
    fn single_attribute_always_partitions(
        ages in prop::collection::vec(prop_oneof![9 => 0.0..100.0f64, 1 => Just(f64::NAN)], 1..100),
        threshold in 0.0..100.0f64,
    ) {
        let df = DataFrame::builder()
            .numeric("age", ColumnRole::Sensitive, ages)
            .build()
            .unwrap();
        let spec = GroupSpec::SingleAttribute(GroupPredicate::num("age", CmpOp::Gt, threshold));
        let groups = spec.evaluate(&df).unwrap();
        prop_assert_eq!(groups.n_excluded(), 0);
        prop_assert_eq!(groups.n_privileged() + groups.n_disadvantaged(), df.n_rows());
    }

    #[test]
    fn intersectional_trichotomy(
        ages in prop::collection::vec(0.0..100.0f64, 1..100),
        incomes in prop::collection::vec(0.0..100.0f64, 1..100),
        t1 in 10.0..90.0f64,
        t2 in 10.0..90.0f64,
    ) {
        let n = ages.len().min(incomes.len());
        let df = DataFrame::builder()
            .numeric("age", ColumnRole::Sensitive, ages[..n].to_vec())
            .numeric("income", ColumnRole::Sensitive, incomes[..n].to_vec())
            .build()
            .unwrap();
        let spec = GroupSpec::Intersectional(vec![
            GroupPredicate::num("age", CmpOp::Gt, t1),
            GroupPredicate::num("income", CmpOp::Gt, t2),
        ]);
        let groups = spec.evaluate(&df).unwrap();
        // Privileged and disadvantaged never overlap.
        for i in 0..n {
            prop_assert!(!(groups.privileged[i] && groups.disadvantaged[i]));
        }
        prop_assert_eq!(
            groups.n_privileged() + groups.n_disadvantaged() + groups.n_excluded(),
            n
        );
    }

    #[test]
    fn confusion_counts_conserved(
        y in prop::collection::vec(0u8..2, 1..200),
        seed in any::<u64>(),
    ) {
        let n = y.len();
        let mut rng = tabular::Rng64::seed_from_u64(seed);
        let y_pred: Vec<u8> = (0..n).map(|_| u8::from(rng.bernoulli(0.5))).collect();
        let priv_mask: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
        let dis_mask: Vec<bool> = priv_mask.iter().map(|&b| !b).collect();
        let groups = Groups { privileged: priv_mask, disadvantaged: dis_mask };
        let gc = group_confusions(&y, &y_pred, &groups);
        prop_assert_eq!(gc.total() as usize, n);
    }

    #[test]
    fn disparities_are_bounded(p in arb_confusion(), d in arb_confusion()) {
        let gc = GroupConfusions { privileged: p, disadvantaged: d };
        for metric in FairnessMetric::all() {
            if let Some(v) = metric.signed_disparity(&gc) {
                prop_assert!((-1.0..=1.0).contains(&v), "{metric}: {v}");
                let abs = metric.absolute_disparity(&gc).unwrap();
                prop_assert!((0.0..=1.0).contains(&abs));
                prop_assert!((abs - v.abs()).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn identical_groups_have_zero_disparity(cm in arb_confusion()) {
        let gc = GroupConfusions { privileged: cm, disadvantaged: cm };
        for metric in FairnessMetric::all() {
            if let Some(v) = metric.signed_disparity(&gc) {
                prop_assert!(v.abs() < 1e-12, "{metric}: {v}");
            }
        }
    }

    #[test]
    fn swapping_groups_negates_signed_disparity(p in arb_confusion(), d in arb_confusion()) {
        let gc = GroupConfusions { privileged: p, disadvantaged: d };
        let swapped = GroupConfusions { privileged: d, disadvantaged: p };
        for metric in [
            FairnessMetric::PredictiveParity,
            FairnessMetric::EqualOpportunity,
            FairnessMetric::DemographicParity,
            FairnessMetric::FprParity,
            FairnessMetric::AccuracyParity,
        ] {
            match (metric.signed_disparity(&gc), metric.signed_disparity(&swapped)) {
                (Some(a), Some(b)) => prop_assert!((a + b).abs() < 1e-12, "{metric}"),
                (None, None) => {}
                _ => prop_assert!(false, "{metric}: definedness must be symmetric"),
            }
        }
        // EqualizedOdds is symmetric (absolute form) rather than odd.
        match (
            FairnessMetric::EqualizedOdds.signed_disparity(&gc),
            FairnessMetric::EqualizedOdds.signed_disparity(&swapped),
        ) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-12),
            (None, None) => {}
            _ => prop_assert!(false),
        }
    }

    #[test]
    fn merged_confusions_add(p in arb_confusion(), d in arb_confusion()) {
        let gc = GroupConfusions { privileged: p, disadvantaged: d };
        let doubled = gc.merged(&gc);
        prop_assert_eq!(doubled.total(), gc.total() * 2);
        // Ratio metrics are invariant under uniform scaling of counts.
        for metric in FairnessMetric::all() {
            match (metric.signed_disparity(&gc), metric.signed_disparity(&doubled)) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-12, "{metric}"),
                (None, None) => {}
                _ => prop_assert!(false, "{metric}: definedness changed under scaling"),
            }
        }
    }
}
