//! The multithreaded server loop.
//!
//! A nonblocking accept thread feeds accepted connections into a bounded
//! queue drained by a fixed pool of worker threads (keep-alive, one
//! connection per worker at a time). When the queue is full the accept
//! thread answers 503 immediately instead of queueing unbounded work.
//! Shutdown is graceful: the accept thread stops accepting, the queue is
//! closed, and workers finish their in-flight request before exiting.

use crate::http::{read_request, HttpError, Request, Response};
use crate::routes::App;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks an ephemeral
    /// port, reported by [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads handling connections. Each keep-alive connection
    /// pins its worker for the connection's lifetime, so this bounds the
    /// number of concurrent connections, not CPU use — blocking workers
    /// are cheap, so the default oversubscribes the cores.
    pub workers: usize,
    /// Accepted connections waiting for a worker before 503.
    pub queue_capacity: usize,
    /// Per-connection socket read timeout (also bounds how long an idle
    /// keep-alive connection can delay shutdown).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Emit one structured log line per request to stderr.
    pub log_requests: bool,
    /// Use the single-threaded epoll event loop with micro-batching
    /// (Linux only; elsewhere the threaded loop always runs).
    pub event_driven: bool,
    /// Flush the predict micro-batch once it holds this many rows.
    pub batch_max_rows: usize,
    /// Flush the predict micro-batch once its oldest job has waited this
    /// long, even if more traffic keeps arriving.
    pub batch_wait: Duration,
    /// Open-connection cap for the event loop; connections beyond it are
    /// answered 503 at accept time.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(4, usize::from);
        let workers = (cores * 4).max(16);
        ServerConfig {
            addr: "127.0.0.1:8080".to_string(),
            workers,
            queue_capacity: workers,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            log_requests: true,
            event_driven: cfg!(target_os = "linux"),
            batch_max_rows: 64,
            batch_wait: Duration::from_millis(1),
            max_connections: 1024,
        }
    }
}

/// A running server; dropping it (or calling [`Server::shutdown`]) drains
/// in-flight requests and stops.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving `app` on background threads.
    pub fn spawn(app: Arc<App>, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let event_driven = config.event_driven && cfg!(target_os = "linux");
        let accept_handle = std::thread::Builder::new()
            .name("demodq-accept".to_string())
            .spawn(move || {
                if event_driven {
                    run_event_loop(listener, app, config, accept_shutdown);
                } else {
                    accept_loop(listener, app, config, accept_shutdown);
                }
            })?;
        Ok(Server { local_addr, shutdown, accept_handle: Some(accept_handle) })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A flag that triggers shutdown when set (for signal handlers).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Stops accepting, drains in-flight requests, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(target_os = "linux")]
fn run_event_loop(
    listener: TcpListener,
    app: Arc<App>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
) {
    crate::event::run(listener, app, config, shutdown);
}

#[cfg(not(target_os = "linux"))]
fn run_event_loop(
    listener: TcpListener,
    app: Arc<App>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
) {
    accept_loop(listener, app, config, shutdown);
}

pub(crate) fn accept_loop(
    listener: TcpListener,
    app: Arc<App>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
) {
    let (sender, receiver) = sync_channel::<TcpStream>(config.queue_capacity.max(1));
    let receiver = Arc::new(Mutex::new(receiver));
    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .filter_map(|i| {
            let app = Arc::clone(&app);
            let receiver = Arc::clone(&receiver);
            let shutdown = Arc::clone(&shutdown);
            let log_requests = config.log_requests;
            std::thread::Builder::new()
                .name(format!("demodq-worker-{i}"))
                .spawn(move || worker_loop(&app, &receiver, &shutdown, log_requests))
                .map_err(|e| eprintln!("serve: cannot spawn worker {i}: {e}"))
                .ok()
        })
        .collect();
    if workers.is_empty() {
        // Degraded but not dead: serve requests on the accept thread
        // itself rather than refusing every connection.
        eprintln!("serve: no worker threads available; handling requests inline");
    }

    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(config.read_timeout));
                let _ = stream.set_write_timeout(Some(config.write_timeout));
                let _ = stream.set_nodelay(true);
                if workers.is_empty() {
                    handle_connection(&app, stream, &shutdown, config.log_requests);
                    continue;
                }
                match sender.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        // Shed load instead of queueing unbounded work.
                        app.metrics().observe_queue_full();
                        let mut writer = BufWriter::new(stream);
                        let _ = Response::error(503, "server is at capacity")
                            .write_to(&mut writer, false);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }

    // Close the queue; workers drain what was already accepted and exit.
    drop(sender);
    for worker in workers {
        let _ = worker.join();
    }
}

/// Receives connections off the shared queue until it closes.
fn worker_loop(
    app: &App,
    receiver: &Mutex<Receiver<TcpStream>>,
    shutdown: &AtomicBool,
    log_requests: bool,
) {
    loop {
        let stream = {
            // A poisoned lock only means another worker panicked while
            // holding it; the receiver itself is still sound.
            let guard = receiver.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        match stream {
            Ok(stream) => handle_connection(app, stream, shutdown, log_requests),
            Err(_) => return, // queue closed: shutdown
        }
    }
}

/// Serves one (possibly keep-alive) connection.
fn handle_connection(
    app: &App,
    stream: TcpStream,
    shutdown: &AtomicBool,
    log_requests: bool,
) {
    let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_default();
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    loop {
        // During drain, finish the in-flight request but accept no more.
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let started = Instant::now();
        match read_request(&mut reader) {
            Ok(None) => return, // clean close between requests
            Ok(Some(request)) => {
                // handle() routes, catches handler panics, and records
                // metrics; this loop only owns the socket lifecycle.
                let response = app.handle(&request);
                let keep_alive = request.keep_alive() && !shutdown.load(Ordering::SeqCst);
                if log_requests {
                    log_request(&peer, &request, &response, started.elapsed());
                }
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(HttpError::Io(_)) => return, // timeout or reset: just close
            Err(error) => {
                let response = Response::error(error.status(), &error.message());
                app.metrics().observe("other", response.status, started.elapsed());
                if log_requests {
                    log_line(&peer, "-", "-", response.status, started.elapsed(), 0);
                }
                let _ = response.write_to(&mut writer, false);
                return;
            }
        }
    }
}

fn log_request(peer: &str, request: &Request, response: &Response, elapsed: Duration) {
    log_line(peer, &request.method, &request.path, response.status, elapsed, request.body.len());
}

/// One structured JSON log line per request, on stderr.
pub(crate) fn log_line(peer: &str, method: &str, path: &str, status: u16, elapsed: Duration, body_bytes: usize) {
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    eprintln!(
        "{}",
        serde_json::json!({
            "ts_ms": ts_ms,
            "peer": peer,
            "method": method,
            "path": path,
            "status": status,
            "duration_us": elapsed.as_micros() as u64,
            "body_bytes": body_bytes,
        })
    );
}
