//! # demodq-serve — HTTP model serving for the demodq reproduction
//!
//! A dependency-free (std::net + `serde_json`) HTTP/1.1 service that
//! trains one tuned model per (dataset, model-kind) pair at startup and
//! serves them from a read-only registry:
//!
//! * `POST /v1/predict` — single rows or batches through the
//!   training-time feature encoder;
//! * `POST /v1/clean` — run a paper detector (+ repair) over submitted
//!   rows, returning flagged cells and repaired values;
//! * `POST /v1/audit` — group-wise confusion matrices and predictive-
//!   parity / equal-opportunity disparities on a labeled batch;
//! * `GET /healthz` — registry summary;
//! * `GET /metrics` — Prometheus counters and latency histograms.
//!
//! The binary (`demodq-serve`) adds SIGTERM/SIGINT handling with graceful
//! drain; the library pieces ([`Server::spawn`] on an ephemeral port) are
//! designed for in-process integration tests and examples.

pub mod codec;
pub mod drift;
pub mod event;
pub mod http;
pub mod metrics;
pub mod nb;
pub mod registry;
pub mod routes;
pub mod server;

pub use drift::{DriftConfig, DriftEntry, DriftStore};
pub use http::{Request, Response};
pub use metrics::Metrics;
pub use registry::{Registry, SharedRegistry};
pub use routes::App;
pub use server::{Server, ServerConfig};
