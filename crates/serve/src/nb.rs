//! Raw, dependency-free epoll bindings for the event-driven server.
//!
//! Linux-only by construction (the module is empty elsewhere; the server
//! falls back to its threaded loop). The four syscalls the event loop
//! needs — `epoll_create1`, `epoll_ctl`, `epoll_wait`, `close` — are
//! declared directly against libc, which the binary already links for
//! `signal`. No `mio`, no `libc` crate.
#![cfg(target_os = "linux")]

use std::io;
use std::os::unix::io::RawFd;

/// `EPOLLIN`: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// `EPOLLOUT`: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// `EPOLLERR`: error condition (always reported, never needs arming).
pub const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP`: hangup (always reported, never needs arming).
pub const EPOLLHUP: u32 = 0x010;
/// `EPOLLRDHUP`: peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs it
/// (no padding between `events` and `data`); other architectures use
/// natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN` | ...).
    pub events: u32,
    /// Caller-chosen token identifying the fd (we use the fd itself).
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed event (for the wait buffer).
    pub fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// An owned epoll instance.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // reported through errno, which last_os_error reads.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    /// Registers `fd` for `events`, tagged with `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the interest set of an already registered `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent { events, data: token };
        // SAFETY: `event` is a live, properly laid out epoll_event for the
        // duration of the call; the kernel copies it before returning.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Waits up to `timeout_ms` (`-1` = forever, `0` = poll) and fills
    /// `events`; returns how many entries are valid. `EINTR` reads as
    /// zero ready events so signal delivery never kills the loop.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        if events.is_empty() {
            return Ok(0);
        }
        // SAFETY: the buffer outlives the call and maxevents matches its
        // length, so the kernel writes only within bounds.
        let rc = unsafe {
            epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` is an fd this struct owns exclusively.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn epoll_reports_readability_and_tokens() {
        let epoll = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        epoll.add(listener.as_raw_fd(), EPOLLIN, 42).unwrap();

        // Nothing ready yet: a zero-timeout poll returns no events.
        let mut events = [EpollEvent::zeroed(); 8];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        // An incoming connection makes the listener readable.
        let mut client = TcpStream::connect(addr).unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        let (token, mask) = (events[0].data, events[0].events);
        assert_eq!(token, 42);
        assert_ne!(mask & EPOLLIN, 0);

        // Accepted stream: readable once bytes arrive, token preserved.
        let (peer, _) = listener.accept().unwrap();
        peer.set_nonblocking(true).unwrap();
        epoll.add(peer.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 7).unwrap();
        client.write_all(b"x").unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert!(n >= 1);
        assert!((0..n).any(|i| events[i].data == 7));

        // Interest can be modified and removed.
        epoll.modify(peer.as_raw_fd(), EPOLLIN | EPOLLOUT, 7).unwrap();
        epoll.delete(peer.as_raw_fd()).unwrap();
        epoll.delete(listener.as_raw_fd()).unwrap();
    }
}
