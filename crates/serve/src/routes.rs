//! Endpoint handlers: routing, JSON body handling, the model endpoints
//! (`/v1/predict`, `/v1/clean`, `/v1/audit`), and the batched predict
//! scorer the event loop drives.
//!
//! Prediction is *always* scored through the batched path: the blocking
//! route wraps a request into a one-job batch, the event loop coalesces
//! concurrent requests into larger ones. A batch snapshots the registry
//! exactly once, so every response in it reflects one generation; jobs
//! are grouped by (dataset, model), their transformed rows concatenated,
//! and each group scored with a single batched classifier call. Feature
//! encoding and scoring are row-independent, so batched results are
//! bit-identical to scoring each request alone.

use crate::codec::{cell_to_json, frame_from_rows};
use crate::drift::{DriftConfig, DriftEntry, DriftStore};
use crate::http::{Request, Response};
use crate::metrics::Metrics;
use crate::registry::{Registry, SharedRegistry};
use cleaning::detect::DetectorKind;
use cleaning::repair::{LabelRepair, MissingRepair, OutlierRepair};
use demodq::serving::ServingModel;
use fairness::{group_confusions, ConfusionMatrix, FairnessMetric, GroupConfusions};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use tabular::{DataFrame, DenseMatrix};

/// Shared application state: the hot-swappable registry, the metrics, the
/// drift windows, and the clock.
pub struct App {
    registry: Arc<SharedRegistry>,
    drift: DriftStore,
    metrics: Metrics,
    started: Instant,
}

/// Handler-internal error: already a rendered response.
type Handled = Result<Response, Response>;

/// A parsed, validated `/v1/predict` request waiting to be scored. The
/// event loop collects these across connections and scores them together
/// via [`App::predict_batch`].
pub struct PredictJob {
    dataset: String,
    model: String,
    rows: Vec<Value>,
    single: bool,
    started: Instant,
}

impl PredictJob {
    /// Rows this job contributes to a micro-batch.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// When the request was parsed (for latency accounting by the caller).
    pub fn started(&self) -> Instant {
        self.started
    }
}

/// What the event loop should do with a parsed request.
pub enum Routed {
    /// Handled synchronously; metrics already recorded.
    Immediate(Response),
    /// A predict job to coalesce into the current micro-batch. The caller
    /// records `/v1/predict` metrics when the batch resolves.
    Predict(Box<PredictJob>),
}

impl App {
    /// Wraps a trained registry with default drift telemetry.
    pub fn new(registry: Registry) -> App {
        App::with_drift(registry, DriftConfig::default())
    }

    /// Wraps a trained registry with explicit drift-telemetry knobs.
    pub fn with_drift(registry: Registry, drift: DriftConfig) -> App {
        App {
            registry: Arc::new(SharedRegistry::new(registry)),
            drift: DriftStore::new(drift),
            metrics: Metrics::new(),
            started: Instant::now(),
        }
    }

    /// The metrics registry (shared with the server loop).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The drift-telemetry store.
    pub fn drift(&self) -> &DriftStore {
        &self.drift
    }

    /// The hot-swappable registry handle (for `/v1/reload` driving and
    /// tests that swap generations directly).
    pub fn shared_registry(&self) -> &Arc<SharedRegistry> {
        &self.registry
    }

    /// A snapshot of the current registry generation.
    pub fn registry(&self) -> Arc<Registry> {
        self.registry.snapshot().0
    }

    /// Handles one parsed request: routes it, converts a handler panic
    /// into a 500, and records the outcome in [`App::metrics`]. Used by
    /// the threaded socket loop and callable directly for in-process
    /// serving.
    pub fn handle(&self, request: &Request) -> Response {
        let started = Instant::now();
        // A handler panic must cost one 500, not the calling thread.
        let response =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.route(request)))
                .unwrap_or_else(|_| Response::error(500, "internal error"));
        self.metrics.observe(&request.path, response.status, started.elapsed());
        response
    }

    /// Routes one request for the event loop: predict requests become
    /// deferred jobs (metrics recorded by the caller at batch
    /// resolution), everything else is answered inline via
    /// [`App::handle`].
    pub fn route_or_defer(&self, request: &Request) -> Routed {
        if request.method == "POST" && request.path == "/v1/predict" {
            let started = Instant::now();
            match self.parse_predict(request) {
                Ok(job) => Routed::Predict(Box::new(job)),
                Err(response) => {
                    self.metrics.observe("/v1/predict", response.status, started.elapsed());
                    Routed::Immediate(response)
                }
            }
        } else {
            Routed::Immediate(self.handle(request))
        }
    }

    /// Scores a micro-batch of predict jobs with one registry snapshot
    /// and one batched classifier call per (dataset, model) group.
    /// Returns exactly one response per job, in order; a panic anywhere
    /// in scoring costs the whole batch a 500 each, never the serving
    /// thread.
    pub fn predict_batch(&self, jobs: &[PredictJob]) -> Vec<Response> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.predict_batch_inner(jobs)))
            .unwrap_or_else(|_| {
                jobs.iter().map(|_| Response::error(500, "internal error")).collect()
            })
    }

    fn predict_batch_inner(&self, jobs: &[PredictJob]) -> Vec<Response> {
        // One snapshot per batch: every job in it sees one generation.
        let (registry, generation) = self.registry.snapshot();

        // Per-job preparation; failures are isolated to their own job.
        enum Prep<'a> {
            Ready { served: &'a ServingModel, frame: DataFrame, x: DenseMatrix, unseen: u64 },
            Failed(Response),
        }
        let mut preps: Vec<Prep> = Vec::with_capacity(jobs.len());
        for job in jobs {
            let prep = registry
                .get(&job.dataset, &job.model)
                .ok_or_else(|| {
                    Response::error(
                        404,
                        &format!(
                            "no model for dataset {:?} and model {:?}",
                            job.dataset, job.model
                        ),
                    )
                })
                .and_then(|served| {
                    let frame = frame_from_rows(served.train.schema(), &job.rows, false)
                        .map_err(|e| Response::error(400, &e))?;
                    let (x, report) = served
                        .encoder
                        .transform_with_report(&frame)
                        .map_err(|e| Response::error(400, &e.to_string()))?;
                    Ok(Prep::Ready { served, frame, x, unseen: report.unseen_category_rows })
                });
            preps.push(prep.unwrap_or_else(Prep::Failed));
        }

        // Group ready jobs by model identity and score each group with a
        // single batched call over the concatenated feature rows. Rows
        // are scored independently by every model family, so splitting
        // the concatenated result reproduces per-job scoring bit for bit.
        let mut groups: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, prep) in preps.iter().enumerate() {
            if let Prep::Ready { served, .. } = prep {
                groups.entry((served.dataset.name(), served.model.name())).or_default().push(i);
            }
        }
        let mut scored: Vec<Option<(Vec<u8>, Vec<f64>)>> = Vec::with_capacity(jobs.len());
        scored.resize_with(jobs.len(), || None);
        let mut scored_rows = 0u64;
        for indices in groups.values() {
            let mut n_cols = 0usize;
            let mut total_rows = 0usize;
            let mut data: Vec<f64> = Vec::new();
            let mut served_ref: Option<&ServingModel> = None;
            for &i in indices {
                if let Prep::Ready { served, x, .. } = &preps[i] {
                    n_cols = x.n_cols();
                    total_rows += x.n_rows();
                    data.extend_from_slice(x.as_slice());
                    served_ref = Some(served);
                }
            }
            let Some(served) = served_ref else { continue };
            let x_cat = DenseMatrix::from_vec(total_rows, n_cols, data);
            let (labels, probas) = served.classifier.predict_with_proba(&x_cat);
            scored_rows += total_rows as u64;
            let mut offset = 0usize;
            for &i in indices {
                if let Prep::Ready { x, .. } = &preps[i] {
                    let n = x.n_rows();
                    scored[i] = Some((
                        labels[offset..offset + n].to_vec(),
                        probas[offset..offset + n].to_vec(),
                    ));
                    offset += n;
                }
            }
        }
        self.metrics.observe_batch(jobs.len() as u64, scored_rows);

        // Per-job responses; labeled rows feed the drift windows.
        let mut responses = Vec::with_capacity(jobs.len());
        for (i, (prep, job)) in preps.iter().zip(jobs).enumerate() {
            let response = match prep {
                Prep::Failed(r) => {
                    Response { status: r.status, content_type: r.content_type, body: r.body.clone() }
                }
                Prep::Ready { served, frame, unseen, .. } => match scored[i].take() {
                    None => Response::error(500, "batch scoring skipped a job"),
                    Some((predictions, probabilities)) => {
                        self.metrics.observe_unseen_category_rows(*unseen);
                        if let Some(labels) = optional_labels(frame) {
                            self.drift.observe(served, frame, &labels, &predictions);
                        }
                        predict_reply(
                            served,
                            generation,
                            *unseen,
                            &predictions,
                            &probabilities,
                            job.single,
                        )
                    }
                },
            };
            responses.push(response);
        }
        responses
    }

    /// Routes one parsed request to its handler.
    fn route(&self, request: &Request) -> Response {
        let result = match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => Ok(self.healthz()),
            ("GET", "/metrics") => Ok(Response::text(200, self.render_metrics())),
            ("POST", "/v1/predict") => self.parse_predict(request).map(|job| {
                let mut responses = self.predict_batch(&[job]);
                responses.pop().unwrap_or_else(|| Response::error(500, "empty batch result"))
            }),
            ("POST", "/v1/clean") => self.json_body(request).and_then(|b| self.clean(&b)),
            ("POST", "/v1/audit") => self.json_body(request).and_then(|b| self.audit(&b)),
            ("POST", "/v1/reload") => self.json_body_or_empty(request).and_then(|b| self.reload(&b)),
            (_, "/healthz" | "/metrics" | "/v1/predict" | "/v1/clean" | "/v1/audit" | "/v1/reload") => {
                Err(Response::error(405, "method not allowed"))
            }
            _ => Err(Response::error(404, "no such endpoint")),
        };
        result.unwrap_or_else(|error| error)
    }

    /// The request-level metrics plus registry and drift gauges.
    fn render_metrics(&self) -> String {
        let (registry, generation) = self.registry.snapshot();
        let mut out = self.metrics.render();
        out.push_str("# HELP serve_registry_generation Current model registry generation (bumped by each hot swap).\n");
        out.push_str("# TYPE serve_registry_generation gauge\n");
        out.push_str(&format!("serve_registry_generation {generation}\n"));
        out.push_str("# HELP serve_registry_swaps_total Completed registry hot swaps.\n");
        out.push_str("# TYPE serve_registry_swaps_total counter\n");
        out.push_str(&format!("serve_registry_swaps_total {}\n", self.registry.swaps()));
        out.push_str("# HELP serve_registry_retrain_in_flight Whether a background retrain is running.\n");
        out.push_str("# TYPE serve_registry_retrain_in_flight gauge\n");
        out.push_str(&format!(
            "serve_registry_retrain_in_flight {}\n",
            u8::from(self.registry.retrain_in_flight())
        ));
        out.push_str("# HELP serve_startup_train_seconds Wall-clock seconds spent training each served model at startup.\n");
        out.push_str("# TYPE serve_startup_train_seconds gauge\n");
        for (dataset, model, seconds) in registry.startup_train_seconds() {
            out.push_str(&format!(
                "serve_startup_train_seconds{{dataset=\"{dataset}\",model=\"{model}\"}} {seconds:.6}\n"
            ));
        }
        let mut gap_lines = String::new();
        for served in registry.entries() {
            let Some(rect) = &served.rectification else { continue };
            for gap in &rect.gaps {
                for (phase, value) in [("pre", gap.pre), ("post", gap.post)] {
                    let Some(value) = value else { continue };
                    gap_lines.push_str(&format!(
                        "serve_rectification_gap{{dataset=\"{}\",model=\"{}\",group=\"{}\",phase=\"{phase}\"}} {value:.6}\n",
                        served.dataset.name(),
                        served.model.name(),
                        gap.group,
                    ));
                }
            }
        }
        if !gap_lines.is_empty() {
            out.push_str("# HELP serve_rectification_gap Absolute fairness disparity of served tree models on the held-out test split, before and after leaf rectification.\n");
            out.push_str("# TYPE serve_rectification_gap gauge\n");
            out.push_str(&gap_lines);
        }
        self.render_drift_metrics(&mut out);
        out
    }

    /// Sliding-window fairness gauges: windowed disparity, drift against
    /// the training-time baseline, and the alert bit, per (dataset,
    /// model, group). HELP/TYPE lines are emitted even before labeled
    /// traffic arrives so scrapers can discover the gauge family.
    fn render_drift_metrics(&self, out: &mut String) {
        out.push_str("# HELP serve_fairness_drift_alert_threshold Absolute drift beyond which a window alerts.\n");
        out.push_str("# TYPE serve_fairness_drift_alert_threshold gauge\n");
        out.push_str(&format!(
            "serve_fairness_drift_alert_threshold {:.6}\n",
            self.drift.alert_threshold()
        ));
        out.push_str("# HELP serve_fairness_window_disparity Sliding-window absolute fairness disparity over labeled serving traffic.\n");
        out.push_str("# TYPE serve_fairness_window_disparity gauge\n");
        out.push_str("# HELP serve_fairness_drift Windowed disparity minus the model's training-time test-split baseline.\n");
        out.push_str("# TYPE serve_fairness_drift gauge\n");
        out.push_str("# HELP serve_fairness_drift_alert 1 when any metric's |drift| exceeds the alert threshold.\n");
        out.push_str("# TYPE serve_fairness_drift_alert gauge\n");
        out.push_str("# HELP serve_fairness_window_size Observations currently inside each drift window.\n");
        out.push_str("# TYPE serve_fairness_window_size gauge\n");
        for e in self.drift.snapshot() {
            let labels =
                format!("dataset=\"{}\",model=\"{}\",group=\"{}\"", e.dataset, e.model, e.group);
            for (metric, window, drift) in [
                ("predictive_parity", e.predictive_parity, e.drift_predictive_parity),
                ("equal_opportunity", e.equal_opportunity, e.drift_equal_opportunity),
            ] {
                if let Some(w) = window {
                    out.push_str(&format!(
                        "serve_fairness_window_disparity{{{labels},metric=\"{metric}\"}} {w:.6}\n"
                    ));
                }
                if let Some(d) = drift {
                    out.push_str(&format!(
                        "serve_fairness_drift{{{labels},metric=\"{metric}\"}} {d:.6}\n"
                    ));
                }
            }
            out.push_str(&format!(
                "serve_fairness_drift_alert{{{labels}}} {}\n",
                u8::from(e.alert)
            ));
            out.push_str(&format!(
                "serve_fairness_window_size{{{labels}}} {}\n",
                e.window_len
            ));
        }
    }

    fn healthz(&self) -> Response {
        let (registry, generation) = self.registry.snapshot();
        let models: Vec<Value> = registry
            .entries()
            .map(|m| {
                json!({
                    "dataset": m.dataset.name(),
                    "model": m.model.name(),
                    "best_params": m.best_params,
                    "val_accuracy": m.val_accuracy,
                    "test_accuracy": m.test_accuracy,
                })
            })
            .collect();
        Response::json(
            200,
            &json!({
                "status": "ok",
                "scale": registry.scale_name(),
                "seed": registry.seed(),
                "generation": generation,
                "swaps": self.registry.swaps(),
                "retrain_in_flight": self.registry.retrain_in_flight(),
                "uptime_seconds": self.started.elapsed().as_secs(),
                "models": Value::Array(models),
            }),
        )
    }

    fn json_body(&self, request: &Request) -> Result<Value, Response> {
        serde_json::from_slice(&request.body)
            .map_err(|e| Response::error(400, &format!("invalid JSON body: {e}")))
    }

    /// Like [`App::json_body`], but an empty body reads as `{}` (for
    /// endpoints whose parameters are all optional).
    fn json_body_or_empty(&self, request: &Request) -> Result<Value, Response> {
        if request.body.is_empty() {
            return Ok(json!({}));
        }
        self.json_body(request)
    }

    fn parse_predict(&self, request: &Request) -> Result<PredictJob, Response> {
        let body = self.json_body(request)?;
        let dataset = require_str(&body, "dataset")?.to_string();
        let model = require_str(&body, "model")?.to_string();
        let (rows, single) = request_rows(&body)?;
        Ok(PredictJob { dataset, model, rows, single, started: Instant::now() })
    }

    /// `POST /v1/reload`: kick off a background retrain of the current
    /// roster and atomically swap it in when done. Body may carry
    /// `{"seed": N}`; the default is the current seed + 1. Answers 202
    /// immediately, or 409 while a retrain is already in flight.
    fn reload(&self, body: &Value) -> Handled {
        let (registry, generation) = self.registry.snapshot();
        let seed = match body.get("seed") {
            None | Some(Value::Null) => registry.seed().wrapping_add(1),
            Some(v) => v
                .as_u64()
                .ok_or_else(|| Response::error(400, "\"seed\" must be an unsigned integer"))?,
        };
        match self.registry.begin_retrain(seed) {
            Ok(()) => Ok(Response::json(
                202,
                &json!({
                    "status": "retraining",
                    "seed": seed,
                    "current_generation": generation,
                }),
            )),
            Err(message) => Err(Response::error(409, message)),
        }
    }

    fn clean(&self, body: &Value) -> Handled {
        let (registry, _) = self.registry.snapshot();
        let dataset = require_str(body, "dataset")?;
        let served = registry
            .any_for_dataset(dataset)
            .ok_or_else(|| Response::error(404, &format!("no models for dataset {dataset:?}")))?;
        let detector = parse_detector(require_str(body, "detector")?)?;
        let (rows, _) = request_rows(body)?;
        // Mislabel detection inspects the submitted labels; everything else
        // runs fully unlabeled.
        let needs_labels = matches!(detector, DetectorKind::Mislabels);
        let frame = frame_from_rows(served.train.schema(), &rows, needs_labels)
            .map_err(|e| Response::error(400, &e))?;
        // Fit on the training split ("fit on train, detect anywhere") so
        // thresholds reflect train-time statistics — except mislabels,
        // whose label model must see the submitted labels themselves.
        let fit_frame = if needs_labels { &frame } else { &served.train };
        let fitted = detector
            .fit(fit_frame, served.dataset as u64 ^ 0xC1EA)
            .map_err(|e| Response::error(400, &format!("detector fit failed: {e}")))?;
        let report =
            fitted.detect(&frame).map_err(|e| Response::error(400, &format!("detection failed: {e}")))?;

        let flagged_cells: Vec<Value> = report
            .cell_flags
            .iter()
            .flat_map(|(column, flags)| {
                flags
                    .iter()
                    .enumerate()
                    .filter(|(_, &flagged)| flagged)
                    .map(|(row, _)| json!({ "row": row, "column": column }))
                    .collect::<Vec<_>>()
            })
            .collect();

        let (repair_name, repaired) = self.apply_repair(body, served, detector, &frame, &report)?;
        let mut repairs = Vec::new();
        for field in frame.schema().fields() {
            for row in 0..frame.n_rows() {
                let original = cell_to_json(&frame, row, &field.name);
                let new = cell_to_json(&repaired, row, &field.name);
                if original != new {
                    repairs.push(json!({
                        "row": row,
                        "column": field.name,
                        "original": original,
                        "repaired": new,
                    }));
                }
            }
        }

        Ok(Response::json(
            200,
            &json!({
                "dataset": served.dataset.name(),
                "detector": report.detector,
                "repair": repair_name,
                "n_rows": frame.n_rows(),
                "flagged_rows": report.flagged_rows(),
                "flagged_cells": Value::Array(flagged_cells),
                "repairs": Value::Array(repairs),
            }),
        ))
    }

    /// Repairs `frame` with the requested (or detector-default) repair.
    fn apply_repair(
        &self,
        body: &Value,
        served: &ServingModel,
        detector: DetectorKind,
        frame: &tabular::DataFrame,
        report: &cleaning::DetectionReport,
    ) -> Result<(String, tabular::DataFrame), Response> {
        let requested = body.get("repair").and_then(Value::as_str);
        match detector {
            DetectorKind::MissingValues => {
                let repair = match requested {
                    None => MissingRepair::all()
                        .into_iter()
                        .find(|r| r.name() == "impute_mean_dummy")
                        .ok_or_else(|| {
                            Response::error(500, "default repair impute_mean_dummy unavailable")
                        })?,
                    Some(name) => MissingRepair::all()
                        .into_iter()
                        .find(|r| r.name() == name)
                        .ok_or_else(|| unknown_repair(name, MissingRepair::all().iter().map(|r| r.name())))?,
                };
                let fitted = repair
                    .fit(&served.train)
                    .map_err(|e| Response::error(400, &format!("repair fit failed: {e}")))?;
                let repaired = fitted
                    .apply(frame)
                    .map_err(|e| Response::error(400, &format!("repair failed: {e}")))?;
                Ok((repair.name(), repaired))
            }
            DetectorKind::Mislabels => {
                let repair = LabelRepair;
                if let Some(name) = requested {
                    if name != repair.name() {
                        return Err(unknown_repair(name, std::iter::once(repair.name().to_string())));
                    }
                }
                let repaired = repair
                    .apply(frame, report)
                    .map_err(|e| Response::error(400, &format!("repair failed: {e}")))?;
                Ok((repair.name().to_string(), repaired))
            }
            _ => {
                let repair = match requested {
                    None => OutlierRepair::all()[0],
                    Some(name) => OutlierRepair::all()
                        .iter()
                        .find(|r| r.name() == name)
                        .cloned()
                        .ok_or_else(|| unknown_repair(name, OutlierRepair::all().iter().map(|r| r.name())))?,
                };
                // The replacement statistics come from the *training*
                // split's unflagged values.
                let train_report = detector
                    .fit(&served.train, served.dataset as u64 ^ 0xC1EA)
                    .and_then(|d| d.detect(&served.train))
                    .map_err(|e| Response::error(400, &format!("train detection failed: {e}")))?;
                let fitted = repair
                    .fit(&served.train, &train_report)
                    .map_err(|e| Response::error(400, &format!("repair fit failed: {e}")))?;
                let repaired = fitted
                    .apply(frame, report)
                    .map_err(|e| Response::error(400, &format!("repair failed: {e}")))?;
                Ok((repair.name(), repaired))
            }
        }
    }

    fn audit(&self, body: &Value) -> Handled {
        let (registry, generation) = self.registry.snapshot();
        let served = lookup_model(&registry, body)?;
        let (rows, _) = request_rows(body)?;
        let frame = frame_from_rows(served.train.schema(), &rows, true)
            .map_err(|e| Response::error(400, &e))?;
        let y_true = frame.labels().map_err(|e| Response::error(400, &e.to_string()))?;
        let y_pred =
            served.predict_frame(&frame).map_err(|e| Response::error(400, &e.to_string()))?;
        let accuracy = mlcore::accuracy(&y_true, &y_pred);

        // Audited batches are labeled by construction, so they also feed
        // the sliding drift windows.
        let labels: Vec<Option<u8>> = y_true.iter().copied().map(Some).collect();
        self.drift.observe(served, &frame, &labels, &y_pred);

        let mut groups = Vec::with_capacity(served.groups.len());
        for spec in &served.groups {
            let masks = spec
                .evaluate(&frame)
                .map_err(|e| Response::error(400, &format!("group evaluation failed: {e}")))?;
            let confusions = group_confusions(&y_true, &y_pred, &masks);
            groups.push(json!({
                "group": spec.label(),
                "privileged": confusion_json(&confusions.privileged),
                "disadvantaged": confusion_json(&confusions.disadvantaged),
                "disparities": disparities_json(&confusions),
            }));
        }

        // Startup-time rectification summary: how the served classifier's
        // leaves were edited and what it did to the test-split gaps. Null
        // for model families without editable decision regions.
        let rectification = served.rectification.as_ref().map_or(Value::Null, |r| {
            let gaps: Vec<Value> = r
                .gaps
                .iter()
                .map(|g| {
                    json!({
                        "group": g.group,
                        "pre": option_json(g.pre),
                        "post": option_json(g.post),
                    })
                })
                .collect();
            json!({
                "metric": r.metric.name(),
                "epsilon": r.epsilon,
                "n_edits": r.n_edits,
                "constraint_met": r.constraint_met,
                "pre_test_accuracy": r.pre_test_accuracy,
                "gaps": Value::Array(gaps),
            })
        });

        // Live drift telemetry for this (dataset, model): windowed
        // disparities vs the training-time baseline, with alert bits.
        let windows: Vec<Value> = self
            .drift
            .snapshot()
            .iter()
            .filter(|e| e.dataset == served.dataset.name() && e.model == served.model.name())
            .map(drift_entry_json)
            .collect();

        Ok(Response::json(
            200,
            &json!({
                "dataset": served.dataset.name(),
                "model": served.model.name(),
                "generation": generation,
                "n_rows": y_true.len(),
                "accuracy": accuracy,
                "groups": Value::Array(groups),
                "rectification": rectification,
                "drift": {
                    "alert_threshold": self.drift.alert_threshold(),
                    "windows": Value::Array(windows),
                },
            }),
        ))
    }
}

fn lookup_model<'a>(registry: &'a Registry, body: &Value) -> Result<&'a ServingModel, Response> {
    let dataset = require_str(body, "dataset")?;
    let model = require_str(body, "model")?;
    registry.get(dataset, model).ok_or_else(|| {
        Response::error(
            404,
            &format!("no model for dataset {dataset:?} and model {model:?}"),
        )
    })
}

/// Builds the `/v1/predict` success payload by direct string assembly.
/// This is the hottest serialization in the server, so it skips the
/// intermediate `Value` tree; float formatting mirrors the JSON
/// encoder's (`Display`, with a trailing `.0` for integral values), so
/// the payload is identical to the tree-built equivalent.
fn predict_reply(
    served: &ServingModel,
    generation: u64,
    unseen: u64,
    predictions: &[u8],
    probabilities: &[f64],
    single: bool,
) -> Response {
    use std::fmt::Write as _;
    let mut body = String::with_capacity(160 + probabilities.len() * 22);
    let _ = write!(
        body,
        "{{\"dataset\":\"{}\",\"model\":\"{}\",\"generation\":{generation},\"n_rows\":{},\
         \"unseen_category_rows\":{unseen},\"predictions\":[",
        served.dataset.name(),
        served.model.name(),
        predictions.len(),
    );
    for (i, p) in predictions.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(body, "{p}");
    }
    body.push_str("],\"probabilities\":[");
    for (i, &q) in probabilities.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        push_json_f64(&mut body, q);
    }
    body.push(']');
    if single {
        if let (Some(&p0), Some(&q0)) = (predictions.first(), probabilities.first()) {
            let _ = write!(body, ",\"prediction\":{p0},\"probability\":");
            push_json_f64(&mut body, q0);
        }
    }
    body.push('}');
    Response { status: 200, content_type: "application/json", body: body.into_bytes() }
}

/// Appends `v` formatted exactly as the JSON encoder would (`null` for
/// non-finite, `Display` plus a `.0` suffix for integral values).
fn push_json_f64(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{v}");
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// Per-row 0/1 labels of `frame`'s label column, `None` where missing;
/// `None` overall when the frame has no usable (numeric) label column or
/// no row carries a label. Serving rows are unlabeled by default — only
/// clients that send ground truth feed the drift windows.
fn optional_labels(frame: &DataFrame) -> Option<Vec<Option<u8>>> {
    let field = frame.schema().label()?;
    let data = frame.numeric(&field.name).ok()?;
    let labels: Vec<Option<u8>> = data
        .iter()
        .map(|&x| {
            if x.is_nan() {
                None
            } else {
                // lint:allow(F001, labels are stored as exact 0.0/1.0; nonzero test is the contract)
                Some(u8::from(x != 0.0))
            }
        })
        .collect();
    labels.iter().any(Option::is_some).then_some(labels)
}

fn drift_entry_json(e: &DriftEntry) -> Value {
    json!({
        "group": e.group,
        "window_len": e.window_len,
        "observed": e.observed,
        "predictive_parity": {
            "window": option_json(e.predictive_parity),
            "baseline": option_json(e.baseline_predictive_parity),
            "drift": option_json(e.drift_predictive_parity),
        },
        "equal_opportunity": {
            "window": option_json(e.equal_opportunity),
            "baseline": option_json(e.baseline_equal_opportunity),
            "drift": option_json(e.drift_equal_opportunity),
        },
        "alert": e.alert,
    })
}

/// Extracts `rows` (array) or `row` (single object); the bool is true for
/// the single-row form.
fn request_rows(body: &Value) -> Result<(Vec<Value>, bool), Response> {
    if let Some(rows) = body.get("rows") {
        let rows = rows
            .as_array()
            .ok_or_else(|| Response::error(400, "\"rows\" must be an array of objects"))?;
        return Ok((rows.clone(), false));
    }
    if let Some(row) = body.get("row") {
        return Ok((vec![row.clone()], true));
    }
    Err(Response::error(400, "body must contain \"rows\" (array) or \"row\" (object)"))
}

fn require_str<'a>(body: &'a Value, key: &str) -> Result<&'a str, Response> {
    body.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| Response::error(400, &format!("missing required string field {key:?}")))
}

/// Parses a paper-style detector name with the paper's default parameters.
fn parse_detector(name: &str) -> Result<DetectorKind, Response> {
    DetectorKind::all()
        .into_iter()
        .find(|d| d.name() == name)
        .ok_or_else(|| {
            let known: Vec<&str> = DetectorKind::all().iter().map(|d| d.name()).collect();
            Response::error(
                400,
                &format!("unknown detector {name:?}; expected one of: {}", known.join(", ")),
            )
        })
}

fn unknown_repair(name: &str, known: impl Iterator<Item = String>) -> Response {
    Response::error(
        400,
        &format!(
            "unknown repair {name:?}; expected one of: {}",
            known.collect::<Vec<_>>().join(", ")
        ),
    )
}

fn confusion_json(cm: &ConfusionMatrix) -> Value {
    json!({
        "tp": cm.tp,
        "fp": cm.fp,
        "tn": cm.tn,
        "fn": cm.fn_,
        "n": cm.total(),
        "precision": option_json(cm.precision()),
        "recall": option_json(cm.recall()),
    })
}

fn disparities_json(gc: &GroupConfusions) -> Value {
    let mut out = serde_json::Map::new();
    for metric in [FairnessMetric::PredictiveParity, FairnessMetric::EqualOpportunity] {
        let key = match metric {
            FairnessMetric::PredictiveParity => "predictive_parity",
            _ => "equal_opportunity",
        };
        out.insert(
            key.to_string(),
            json!({
                "signed": option_json(metric.signed_disparity(gc)),
                "absolute": option_json(metric.absolute_disparity(gc)),
            }),
        );
    }
    Value::Object(out)
}

/// `None` (undefined metric, e.g. empty group) renders as JSON null.
fn option_json(x: Option<f64>) -> Value {
    x.map_or(Value::Null, |v| json!(v))
}
