//! Endpoint handlers: routing, JSON body handling, and the three model
//! endpoints (`/v1/predict`, `/v1/clean`, `/v1/audit`).

use crate::codec::{cell_to_json, frame_from_rows};
use crate::http::{Request, Response};
use crate::metrics::Metrics;
use crate::registry::Registry;
use cleaning::detect::DetectorKind;
use cleaning::repair::{LabelRepair, MissingRepair, OutlierRepair};
use demodq::serving::ServingModel;
use fairness::{group_confusions, ConfusionMatrix, FairnessMetric, GroupConfusions};
use serde_json::{json, Value};
use std::time::Instant;

/// Shared application state: the registry, the metrics, and the clock.
pub struct App {
    registry: Registry,
    metrics: Metrics,
    started: Instant,
}

/// Handler-internal error: already a rendered response.
type Handled = Result<Response, Response>;

impl App {
    /// Wraps a trained registry.
    pub fn new(registry: Registry) -> App {
        App { registry, metrics: Metrics::new(), started: Instant::now() }
    }

    /// The metrics registry (shared with the server loop).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The model registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Handles one parsed request: routes it, converts a handler panic
    /// into a 500, and records the outcome in [`App::metrics`]. Used by
    /// the socket loop and callable directly for in-process serving.
    pub fn handle(&self, request: &Request) -> Response {
        let started = Instant::now();
        // A handler panic must cost one 500, not the calling thread.
        let response =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.route(request)))
                .unwrap_or_else(|_| Response::error(500, "internal error"));
        self.metrics.observe(&request.path, response.status, started.elapsed());
        response
    }

    /// Routes one parsed request to its handler.
    fn route(&self, request: &Request) -> Response {
        let result = match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => Ok(self.healthz()),
            ("GET", "/metrics") => Ok(Response::text(200, self.render_metrics())),
            ("POST", "/v1/predict") => self.json_body(request).and_then(|b| self.predict(&b)),
            ("POST", "/v1/clean") => self.json_body(request).and_then(|b| self.clean(&b)),
            ("POST", "/v1/audit") => self.json_body(request).and_then(|b| self.audit(&b)),
            (_, "/healthz" | "/metrics" | "/v1/predict" | "/v1/clean" | "/v1/audit") => {
                Err(Response::error(405, "method not allowed"))
            }
            _ => Err(Response::error(404, "no such endpoint")),
        };
        result.unwrap_or_else(|error| error)
    }

    /// The request-level metrics plus the startup training-time gauge
    /// (fixed after construction, so rendered from the registry rather
    /// than tracked as a counter).
    fn render_metrics(&self) -> String {
        let mut out = self.metrics.render();
        out.push_str("# HELP serve_startup_train_seconds Wall-clock seconds spent training each served model at startup.\n");
        out.push_str("# TYPE serve_startup_train_seconds gauge\n");
        for (dataset, model, seconds) in self.registry.startup_train_seconds() {
            out.push_str(&format!(
                "serve_startup_train_seconds{{dataset=\"{dataset}\",model=\"{model}\"}} {seconds:.6}\n"
            ));
        }
        let mut gap_lines = String::new();
        for served in self.registry.entries() {
            let Some(rect) = &served.rectification else { continue };
            for gap in &rect.gaps {
                for (phase, value) in [("pre", gap.pre), ("post", gap.post)] {
                    let Some(value) = value else { continue };
                    gap_lines.push_str(&format!(
                        "serve_rectification_gap{{dataset=\"{}\",model=\"{}\",group=\"{}\",phase=\"{phase}\"}} {value:.6}\n",
                        served.dataset.name(),
                        served.model.name(),
                        gap.group,
                    ));
                }
            }
        }
        if !gap_lines.is_empty() {
            out.push_str("# HELP serve_rectification_gap Absolute fairness disparity of served tree models on the held-out test split, before and after leaf rectification.\n");
            out.push_str("# TYPE serve_rectification_gap gauge\n");
            out.push_str(&gap_lines);
        }
        out
    }

    fn healthz(&self) -> Response {
        let models: Vec<Value> = self
            .registry
            .entries()
            .map(|m| {
                json!({
                    "dataset": m.dataset.name(),
                    "model": m.model.name(),
                    "best_params": m.best_params,
                    "val_accuracy": m.val_accuracy,
                    "test_accuracy": m.test_accuracy,
                })
            })
            .collect();
        Response::json(
            200,
            &json!({
                "status": "ok",
                "scale": self.registry.scale_name(),
                "seed": self.registry.seed(),
                "uptime_seconds": self.started.elapsed().as_secs(),
                "models": Value::Array(models),
            }),
        )
    }

    fn json_body(&self, request: &Request) -> Result<Value, Response> {
        serde_json::from_slice(&request.body)
            .map_err(|e| Response::error(400, &format!("invalid JSON body: {e}")))
    }

    fn predict(&self, body: &Value) -> Handled {
        let served = self.lookup_model(body)?;
        let (rows, single) = request_rows(body)?;
        let frame = frame_from_rows(served.train.schema(), &rows, false)
            .map_err(|e| Response::error(400, &e))?;
        let (predictions, unseen) = served
            .predict_frame_with_report(&frame)
            .map_err(|e| Response::error(400, &e.to_string()))?;
        let probabilities = served
            .predict_proba_frame(&frame)
            .map_err(|e| Response::error(400, &e.to_string()))?;
        self.metrics.observe_unseen_category_rows(unseen.unseen_category_rows);
        let mut reply = json!({
            "dataset": served.dataset.name(),
            "model": served.model.name(),
            "n_rows": predictions.len(),
            "unseen_category_rows": unseen.unseen_category_rows,
            "predictions": Value::Array(predictions.iter().map(|&p| json!(p)).collect()),
            "probabilities": Value::Array(probabilities.iter().map(|&p| json!(p)).collect()),
        });
        if single {
            if let Some(map) = reply.as_object() {
                let mut map = map.clone();
                map.insert("prediction".to_string(), json!(predictions[0]));
                map.insert("probability".to_string(), json!(probabilities[0]));
                reply = Value::Object(map);
            }
        }
        Ok(Response::json(200, &reply))
    }

    fn clean(&self, body: &Value) -> Handled {
        let dataset = require_str(body, "dataset")?;
        let served = self
            .registry
            .any_for_dataset(dataset)
            .ok_or_else(|| Response::error(404, &format!("no models for dataset {dataset:?}")))?;
        let detector = parse_detector(require_str(body, "detector")?)?;
        let (rows, _) = request_rows(body)?;
        // Mislabel detection inspects the submitted labels; everything else
        // runs fully unlabeled.
        let needs_labels = matches!(detector, DetectorKind::Mislabels);
        let frame = frame_from_rows(served.train.schema(), &rows, needs_labels)
            .map_err(|e| Response::error(400, &e))?;
        // Fit on the training split ("fit on train, detect anywhere") so
        // thresholds reflect train-time statistics — except mislabels,
        // whose label model must see the submitted labels themselves.
        let fit_frame = if needs_labels { &frame } else { &served.train };
        let fitted = detector
            .fit(fit_frame, served.dataset as u64 ^ 0xC1EA)
            .map_err(|e| Response::error(400, &format!("detector fit failed: {e}")))?;
        let report =
            fitted.detect(&frame).map_err(|e| Response::error(400, &format!("detection failed: {e}")))?;

        let flagged_cells: Vec<Value> = report
            .cell_flags
            .iter()
            .flat_map(|(column, flags)| {
                flags
                    .iter()
                    .enumerate()
                    .filter(|(_, &flagged)| flagged)
                    .map(|(row, _)| json!({ "row": row, "column": column }))
                    .collect::<Vec<_>>()
            })
            .collect();

        let (repair_name, repaired) = self.apply_repair(body, served, detector, &frame, &report)?;
        let mut repairs = Vec::new();
        for field in frame.schema().fields() {
            for row in 0..frame.n_rows() {
                let original = cell_to_json(&frame, row, &field.name);
                let new = cell_to_json(&repaired, row, &field.name);
                if original != new {
                    repairs.push(json!({
                        "row": row,
                        "column": field.name,
                        "original": original,
                        "repaired": new,
                    }));
                }
            }
        }

        Ok(Response::json(
            200,
            &json!({
                "dataset": served.dataset.name(),
                "detector": report.detector,
                "repair": repair_name,
                "n_rows": frame.n_rows(),
                "flagged_rows": report.flagged_rows(),
                "flagged_cells": Value::Array(flagged_cells),
                "repairs": Value::Array(repairs),
            }),
        ))
    }

    /// Repairs `frame` with the requested (or detector-default) repair.
    fn apply_repair(
        &self,
        body: &Value,
        served: &ServingModel,
        detector: DetectorKind,
        frame: &tabular::DataFrame,
        report: &cleaning::DetectionReport,
    ) -> Result<(String, tabular::DataFrame), Response> {
        let requested = body.get("repair").and_then(Value::as_str);
        match detector {
            DetectorKind::MissingValues => {
                let repair = match requested {
                    None => MissingRepair::all()
                        .into_iter()
                        .find(|r| r.name() == "impute_mean_dummy")
                        .ok_or_else(|| {
                            Response::error(500, "default repair impute_mean_dummy unavailable")
                        })?,
                    Some(name) => MissingRepair::all()
                        .into_iter()
                        .find(|r| r.name() == name)
                        .ok_or_else(|| unknown_repair(name, MissingRepair::all().iter().map(|r| r.name())))?,
                };
                let fitted = repair
                    .fit(&served.train)
                    .map_err(|e| Response::error(400, &format!("repair fit failed: {e}")))?;
                let repaired = fitted
                    .apply(frame)
                    .map_err(|e| Response::error(400, &format!("repair failed: {e}")))?;
                Ok((repair.name(), repaired))
            }
            DetectorKind::Mislabels => {
                let repair = LabelRepair;
                if let Some(name) = requested {
                    if name != repair.name() {
                        return Err(unknown_repair(name, std::iter::once(repair.name().to_string())));
                    }
                }
                let repaired = repair
                    .apply(frame, report)
                    .map_err(|e| Response::error(400, &format!("repair failed: {e}")))?;
                Ok((repair.name().to_string(), repaired))
            }
            _ => {
                let repair = match requested {
                    None => OutlierRepair::all()[0],
                    Some(name) => OutlierRepair::all()
                        .iter()
                        .find(|r| r.name() == name)
                        .cloned()
                        .ok_or_else(|| unknown_repair(name, OutlierRepair::all().iter().map(|r| r.name())))?,
                };
                // The replacement statistics come from the *training*
                // split's unflagged values.
                let train_report = detector
                    .fit(&served.train, served.dataset as u64 ^ 0xC1EA)
                    .and_then(|d| d.detect(&served.train))
                    .map_err(|e| Response::error(400, &format!("train detection failed: {e}")))?;
                let fitted = repair
                    .fit(&served.train, &train_report)
                    .map_err(|e| Response::error(400, &format!("repair fit failed: {e}")))?;
                let repaired = fitted
                    .apply(frame, report)
                    .map_err(|e| Response::error(400, &format!("repair failed: {e}")))?;
                Ok((repair.name(), repaired))
            }
        }
    }

    fn audit(&self, body: &Value) -> Handled {
        let served = self.lookup_model(body)?;
        let (rows, _) = request_rows(body)?;
        let frame = frame_from_rows(served.train.schema(), &rows, true)
            .map_err(|e| Response::error(400, &e))?;
        let y_true = frame.labels().map_err(|e| Response::error(400, &e.to_string()))?;
        let y_pred =
            served.predict_frame(&frame).map_err(|e| Response::error(400, &e.to_string()))?;
        let accuracy = mlcore::accuracy(&y_true, &y_pred);

        let mut groups = Vec::with_capacity(served.groups.len());
        for spec in &served.groups {
            let masks = spec
                .evaluate(&frame)
                .map_err(|e| Response::error(400, &format!("group evaluation failed: {e}")))?;
            let confusions = group_confusions(&y_true, &y_pred, &masks);
            groups.push(json!({
                "group": spec.label(),
                "privileged": confusion_json(&confusions.privileged),
                "disadvantaged": confusion_json(&confusions.disadvantaged),
                "disparities": disparities_json(&confusions),
            }));
        }

        // Startup-time rectification summary: how the served classifier's
        // leaves were edited and what it did to the test-split gaps. Null
        // for model families without editable decision regions.
        let rectification = served.rectification.as_ref().map_or(Value::Null, |r| {
            let gaps: Vec<Value> = r
                .gaps
                .iter()
                .map(|g| {
                    json!({
                        "group": g.group,
                        "pre": option_json(g.pre),
                        "post": option_json(g.post),
                    })
                })
                .collect();
            json!({
                "metric": r.metric.name(),
                "epsilon": r.epsilon,
                "n_edits": r.n_edits,
                "constraint_met": r.constraint_met,
                "pre_test_accuracy": r.pre_test_accuracy,
                "gaps": Value::Array(gaps),
            })
        });

        Ok(Response::json(
            200,
            &json!({
                "dataset": served.dataset.name(),
                "model": served.model.name(),
                "n_rows": y_true.len(),
                "accuracy": accuracy,
                "groups": Value::Array(groups),
                "rectification": rectification,
            }),
        ))
    }

    fn lookup_model(&self, body: &Value) -> Result<&ServingModel, Response> {
        let dataset = require_str(body, "dataset")?;
        let model = require_str(body, "model")?;
        self.registry.get(dataset, model).ok_or_else(|| {
            Response::error(
                404,
                &format!("no model for dataset {dataset:?} and model {model:?}"),
            )
        })
    }
}

/// Extracts `rows` (array) or `row` (single object); the bool is true for
/// the single-row form.
fn request_rows(body: &Value) -> Result<(Vec<Value>, bool), Response> {
    if let Some(rows) = body.get("rows") {
        let rows = rows
            .as_array()
            .ok_or_else(|| Response::error(400, "\"rows\" must be an array of objects"))?;
        return Ok((rows.clone(), false));
    }
    if let Some(row) = body.get("row") {
        return Ok((vec![row.clone()], true));
    }
    Err(Response::error(400, "body must contain \"rows\" (array) or \"row\" (object)"))
}

fn require_str<'a>(body: &'a Value, key: &str) -> Result<&'a str, Response> {
    body.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| Response::error(400, &format!("missing required string field {key:?}")))
}

/// Parses a paper-style detector name with the paper's default parameters.
fn parse_detector(name: &str) -> Result<DetectorKind, Response> {
    DetectorKind::all()
        .into_iter()
        .find(|d| d.name() == name)
        .ok_or_else(|| {
            let known: Vec<&str> = DetectorKind::all().iter().map(|d| d.name()).collect();
            Response::error(
                400,
                &format!("unknown detector {name:?}; expected one of: {}", known.join(", ")),
            )
        })
}

fn unknown_repair(name: &str, known: impl Iterator<Item = String>) -> Response {
    Response::error(
        400,
        &format!(
            "unknown repair {name:?}; expected one of: {}",
            known.collect::<Vec<_>>().join(", ")
        ),
    )
}

fn confusion_json(cm: &ConfusionMatrix) -> Value {
    json!({
        "tp": cm.tp,
        "fp": cm.fp,
        "tn": cm.tn,
        "fn": cm.fn_,
        "n": cm.total(),
        "precision": option_json(cm.precision()),
        "recall": option_json(cm.recall()),
    })
}

fn disparities_json(gc: &GroupConfusions) -> Value {
    let mut out = serde_json::Map::new();
    for metric in [FairnessMetric::PredictiveParity, FairnessMetric::EqualOpportunity] {
        let key = match metric {
            FairnessMetric::PredictiveParity => "predictive_parity",
            _ => "equal_opportunity",
        };
        out.insert(
            key.to_string(),
            json!({
                "signed": option_json(metric.signed_disparity(gc)),
                "absolute": option_json(metric.absolute_disparity(gc)),
            }),
        );
    }
    Value::Object(out)
}

/// `None` (undefined metric, e.g. empty group) renders as JSON null.
fn option_json(x: Option<f64>) -> Value {
    x.map_or(Value::Null, |v| json!(v))
}
