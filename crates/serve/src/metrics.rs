//! Lock-free request metrics with Prometheus text rendering.
//!
//! One [`EndpointMetrics`] per route: request counter, 4xx/5xx error
//! counters, and a fixed-bucket latency histogram. Everything is atomics,
//! so the hot path never takes a lock and `/metrics` renders a consistent
//! enough snapshot for scraping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds in seconds (plus an implicit +Inf).
const BUCKET_BOUNDS: [f64; 12] =
    [0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5];

/// The routes tracked individually; anything else lands in `other`.
const ENDPOINTS: [&str; 6] =
    ["/healthz", "/metrics", "/v1/predict", "/v1/clean", "/v1/audit", "other"];

/// A fixed-bucket latency histogram.
#[derive(Default)]
struct Histogram {
    /// Cumulative-style counts are computed at render time; these are
    /// per-bucket counts, the last slot being +Inf.
    buckets: [AtomicU64; BUCKET_BOUNDS.len() + 1],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn observe(&self, latency: Duration) {
        let secs = latency.as_secs_f64();
        let slot = BUCKET_BOUNDS.iter().position(|&b| secs <= b).unwrap_or(BUCKET_BOUNDS.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(latency.as_micros() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// Counters for one endpoint.
#[derive(Default)]
struct EndpointMetrics {
    requests: AtomicU64,
    client_errors: AtomicU64,
    server_errors: AtomicU64,
    latency: Histogram,
}

/// Micro-batch size histogram bucket upper bounds (rows per flushed
/// batch), plus an implicit +Inf.
const BATCH_BUCKET_BOUNDS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// The service's metrics registry.
#[derive(Default)]
pub struct Metrics {
    endpoints: [EndpointMetrics; ENDPOINTS.len()],
    rejected_queue_full: AtomicU64,
    unseen_category_rows: AtomicU64,
    // Event-loop / micro-batching counters.
    batches_total: AtomicU64,
    batched_requests_total: AtomicU64,
    batched_rows_total: AtomicU64,
    batch_size_buckets: [AtomicU64; BATCH_BUCKET_BOUNDS.len() + 1],
    connections_total: AtomicU64,
    connections_active: AtomicU64,
    connections_idle_closed: AtomicU64,
    read_paused_total: AtomicU64,
}

impl Metrics {
    /// A fresh registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    fn slot(&self, path: &str) -> &EndpointMetrics {
        let i = ENDPOINTS.iter().position(|&e| e == path).unwrap_or(ENDPOINTS.len() - 1);
        &self.endpoints[i]
    }

    /// Records one finished request.
    pub fn observe(&self, path: &str, status: u16, latency: Duration) {
        let slot = self.slot(path);
        slot.requests.fetch_add(1, Ordering::Relaxed);
        match status {
            400..=499 => {
                slot.client_errors.fetch_add(1, Ordering::Relaxed);
            }
            500..=599 => {
                slot.server_errors.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        slot.latency.observe(latency);
    }

    /// Records a connection rejected because the worker queue was full.
    pub fn observe_queue_full(&self) {
        self.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
    }

    /// Records prediction rows that carried a category the model's
    /// encoder never saw at fit time (one-hot encoded as all zeros).
    pub fn observe_unseen_category_rows(&self, rows: u64) {
        self.unseen_category_rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// Total prediction rows with unseen categories so far.
    pub fn unseen_category_rows(&self) -> u64 {
        self.unseen_category_rows.load(Ordering::Relaxed)
    }

    /// Records one flushed prediction micro-batch: how many coalesced
    /// requests it carried and how many rows were scored together.
    pub fn observe_batch(&self, requests: u64, rows: u64) {
        self.batches_total.fetch_add(1, Ordering::Relaxed);
        self.batched_requests_total.fetch_add(requests, Ordering::Relaxed);
        self.batched_rows_total.fetch_add(rows, Ordering::Relaxed);
        let slot = BATCH_BUCKET_BOUNDS
            .iter()
            .position(|&b| rows <= b)
            .unwrap_or(BATCH_BUCKET_BOUNDS.len());
        self.batch_size_buckets[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Total flushed micro-batches.
    pub fn batches_total(&self) -> u64 {
        self.batches_total.load(Ordering::Relaxed)
    }

    /// Total requests that went through a micro-batch.
    pub fn batched_requests_total(&self) -> u64 {
        self.batched_requests_total.load(Ordering::Relaxed)
    }

    /// Records a newly accepted connection.
    pub fn observe_connection_opened(&self) {
        self.connections_total.fetch_add(1, Ordering::Relaxed);
        self.connections_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a closed connection.
    pub fn observe_connection_closed(&self) {
        // Saturating: a close without a matching open (can only be a
        // bookkeeping bug) must not wrap the gauge to u64::MAX.
        let _ = self.connections_active.fetch_update(
            Ordering::Relaxed,
            Ordering::Relaxed,
            |v| Some(v.saturating_sub(1)),
        );
    }

    /// Records a connection reaped by the idle/slow-loris sweep.
    pub fn observe_idle_closed(&self) {
        self.connections_idle_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a read-side backpressure pause (slow reader with a full
    /// write buffer).
    pub fn observe_read_paused(&self) {
        self.read_paused_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests across all endpoints.
    pub fn total_requests(&self) -> u64 {
        self.endpoints.iter().map(|e| e.requests.load(Ordering::Relaxed)).sum()
    }

    /// Renders the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("# HELP demodq_requests_total Requests handled per endpoint.\n");
        out.push_str("# TYPE demodq_requests_total counter\n");
        for (name, e) in ENDPOINTS.iter().zip(&self.endpoints) {
            out.push_str(&format!(
                "demodq_requests_total{{endpoint=\"{name}\"}} {}\n",
                e.requests.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# HELP demodq_errors_total Error responses per endpoint and class.\n");
        out.push_str("# TYPE demodq_errors_total counter\n");
        for (name, e) in ENDPOINTS.iter().zip(&self.endpoints) {
            out.push_str(&format!(
                "demodq_errors_total{{endpoint=\"{name}\",class=\"4xx\"}} {}\n",
                e.client_errors.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "demodq_errors_total{{endpoint=\"{name}\",class=\"5xx\"}} {}\n",
                e.server_errors.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# HELP demodq_rejected_total Connections refused with 503 (queue full).\n");
        out.push_str("# TYPE demodq_rejected_total counter\n");
        out.push_str(&format!(
            "demodq_rejected_total {}\n",
            self.rejected_queue_full.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP demodq_unseen_category_rows_total Prediction rows with categories unseen at fit time.\n",
        );
        out.push_str("# TYPE demodq_unseen_category_rows_total counter\n");
        out.push_str(&format!(
            "demodq_unseen_category_rows_total {}\n",
            self.unseen_category_rows.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP demodq_batches_total Prediction micro-batches flushed by the event loop.\n");
        out.push_str("# TYPE demodq_batches_total counter\n");
        out.push_str(&format!("demodq_batches_total {}\n", self.batches_total.load(Ordering::Relaxed)));
        out.push_str("# HELP demodq_batched_requests_total Requests scored inside a micro-batch.\n");
        out.push_str("# TYPE demodq_batched_requests_total counter\n");
        out.push_str(&format!(
            "demodq_batched_requests_total {}\n",
            self.batched_requests_total.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP demodq_batched_rows_total Prediction rows scored inside a micro-batch.\n");
        out.push_str("# TYPE demodq_batched_rows_total counter\n");
        out.push_str(&format!(
            "demodq_batched_rows_total {}\n",
            self.batched_rows_total.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP demodq_batch_rows Rows per flushed micro-batch.\n");
        out.push_str("# TYPE demodq_batch_rows histogram\n");
        let mut cumulative = 0u64;
        for (bound, bucket) in BATCH_BUCKET_BOUNDS.iter().zip(&self.batch_size_buckets) {
            cumulative += bucket.load(Ordering::Relaxed);
            out.push_str(&format!("demodq_batch_rows_bucket{{le=\"{bound}\"}} {cumulative}\n"));
        }
        cumulative += self.batch_size_buckets[BATCH_BUCKET_BOUNDS.len()].load(Ordering::Relaxed);
        out.push_str(&format!("demodq_batch_rows_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!(
            "demodq_batch_rows_sum {}\n",
            self.batched_rows_total.load(Ordering::Relaxed)
        ));
        out.push_str(&format!("demodq_batch_rows_count {}\n", self.batches_total.load(Ordering::Relaxed)));
        out.push_str("# HELP demodq_connections_total Connections accepted since startup.\n");
        out.push_str("# TYPE demodq_connections_total counter\n");
        out.push_str(&format!(
            "demodq_connections_total {}\n",
            self.connections_total.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP demodq_connections_active Currently open connections.\n");
        out.push_str("# TYPE demodq_connections_active gauge\n");
        out.push_str(&format!(
            "demodq_connections_active {}\n",
            self.connections_active.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP demodq_connections_idle_closed_total Connections reaped by the idle/slow-loris sweep.\n");
        out.push_str("# TYPE demodq_connections_idle_closed_total counter\n");
        out.push_str(&format!(
            "demodq_connections_idle_closed_total {}\n",
            self.connections_idle_closed.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP demodq_read_paused_total Read-side backpressure pauses (slow readers).\n");
        out.push_str("# TYPE demodq_read_paused_total counter\n");
        out.push_str(&format!(
            "demodq_read_paused_total {}\n",
            self.read_paused_total.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP demodq_request_seconds Request latency per endpoint.\n");
        out.push_str("# TYPE demodq_request_seconds histogram\n");
        for (name, e) in ENDPOINTS.iter().zip(&self.endpoints) {
            let mut cumulative = 0u64;
            for (bound, bucket) in BUCKET_BOUNDS.iter().zip(&e.latency.buckets) {
                cumulative += bucket.load(Ordering::Relaxed);
                out.push_str(&format!(
                    "demodq_request_seconds_bucket{{endpoint=\"{name}\",le=\"{bound}\"}} {cumulative}\n"
                ));
            }
            cumulative += e.latency.buckets[BUCKET_BOUNDS.len()].load(Ordering::Relaxed);
            out.push_str(&format!(
                "demodq_request_seconds_bucket{{endpoint=\"{name}\",le=\"+Inf\"}} {cumulative}\n"
            ));
            out.push_str(&format!(
                "demodq_request_seconds_sum{{endpoint=\"{name}\"}} {}\n",
                e.latency.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
            ));
            out.push_str(&format!(
                "demodq_request_seconds_count{{endpoint=\"{name}\"}} {}\n",
                e.latency.count.load(Ordering::Relaxed)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_counters() {
        let m = Metrics::new();
        m.observe("/v1/predict", 200, Duration::from_micros(800));
        m.observe("/v1/predict", 400, Duration::from_micros(100));
        m.observe("/v1/predict", 500, Duration::from_millis(40));
        m.observe("/nope", 404, Duration::from_micros(10));
        m.observe_queue_full();
        assert_eq!(m.total_requests(), 4);

        let text = m.render();
        assert!(text.contains("demodq_requests_total{endpoint=\"/v1/predict\"} 3"));
        assert!(text.contains("demodq_errors_total{endpoint=\"/v1/predict\",class=\"4xx\"} 1"));
        assert!(text.contains("demodq_errors_total{endpoint=\"/v1/predict\",class=\"5xx\"} 1"));
        // The unknown path is rolled into `other`.
        assert!(text.contains("demodq_requests_total{endpoint=\"other\"} 1"));
        assert!(text.contains("demodq_rejected_total 1"));

        m.observe_unseen_category_rows(3);
        m.observe_unseen_category_rows(2);
        assert_eq!(m.unseen_category_rows(), 5);
        assert!(m.render().contains("demodq_unseen_category_rows_total 5"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let m = Metrics::new();
        // 800µs lands in le=0.001; 40ms lands in le=0.05; 10s lands in +Inf.
        m.observe("/v1/audit", 200, Duration::from_micros(800));
        m.observe("/v1/audit", 200, Duration::from_millis(40));
        m.observe("/v1/audit", 200, Duration::from_secs(10));
        let text = m.render();
        assert!(text.contains("demodq_request_seconds_bucket{endpoint=\"/v1/audit\",le=\"0.001\"} 1"));
        assert!(text.contains("demodq_request_seconds_bucket{endpoint=\"/v1/audit\",le=\"0.05\"} 2"));
        assert!(text.contains("demodq_request_seconds_bucket{endpoint=\"/v1/audit\",le=\"+Inf\"} 3"));
        assert!(text.contains("demodq_request_seconds_count{endpoint=\"/v1/audit\"} 3"));
        // Sum is ~10.0408s.
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("demodq_request_seconds_sum{endpoint=\"/v1/audit\"}"))
            .unwrap();
        let sum: f64 = sum_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!((sum - 10.0408).abs() < 1e-3, "sum = {sum}");
    }
}
