//! The event-driven server loop (Linux): one thread, epoll readiness,
//! per-connection state machines, and cross-connection micro-batching.
//!
//! Every connection owns a read buffer parsed incrementally with
//! [`crate::http::try_parse`] (keep-alive pipelining falls out of the
//! parse loop) and an ordered response queue, so responses always leave
//! in request order even when predict jobs resolve asynchronously.
//! Predict requests from *all* connections coalesce into one micro-batch
//! scored by [`App::predict_batch`]; the batch flushes adaptively — as
//! soon as no more requests are ready to join (greedy drain), or when it
//! reaches `batch_max_rows`, or when the oldest job has waited
//! `batch_wait`. Slow readers get write backpressure (reads pause while
//! the write buffer is saturated); slow senders (slow-loris partial
//! heads, half-written bodies) are reaped by an idle sweep on the
//! `read_timeout` budget.
#![cfg(target_os = "linux")]

use crate::http::{try_parse, ParseOutcome, Response};
use crate::nb::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::routes::{App, PredictJob, Routed};
use crate::server::{log_line, ServerConfig};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Token identifying the listener in epoll events.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Ready-event buffer size per `epoll_wait`.
const MAX_EVENTS: usize = 256;
/// Socket read chunk.
const READ_CHUNK: usize = 16 * 1024;
/// Outstanding write bytes beyond which a connection's reads pause.
const WRITE_PAUSE_BYTES: usize = 256 * 1024;
/// Outstanding write bytes below which paused reads resume.
const WRITE_RESUME_BYTES: usize = WRITE_PAUSE_BYTES / 2;
/// How often the idle sweep runs.
const SWEEP_EVERY: Duration = Duration::from_millis(250);

/// One entry in a connection's ordered response queue.
enum Slot {
    /// Serialized response bytes; `true` closes the connection after the
    /// bytes flush.
    Ready(Vec<u8>, bool),
    /// A predict job in the current micro-batch, identified by job id.
    Pending(u64),
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    peer: String,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Responses in request order; the head drains into `write_buf`.
    slots: VecDeque<Slot>,
    last_activity: Instant,
    /// Events currently armed in epoll.
    interest: u32,
    /// Reads stopped for good (peer half-closed, protocol error, or a
    /// `Connection: close` request); pending responses still flush.
    no_more_reads: bool,
    /// Reads paused by write backpressure; resumes when the buffer drains.
    paused: bool,
    /// Close once every queued response has flushed.
    close_after_flush: bool,
}

impl Conn {
    fn outstanding_write(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }
}

/// A predict job waiting in the micro-batch, with enough metadata to
/// route its response back.
struct BatchEntry {
    fd: RawFd,
    job_id: u64,
    keep_alive: bool,
    job: PredictJob,
}

struct Loop {
    epoll: Epoll,
    listener: TcpListener,
    app: Arc<App>,
    config: ServerConfig,
    conns: Vec<Option<Conn>>,
    active: usize,
    pending: Vec<BatchEntry>,
    pending_rows: usize,
    batch_started: Option<Instant>,
    next_job_id: u64,
    shutdown: Arc<AtomicBool>,
}

/// Runs the event loop until the shutdown flag flips. Falls back to the
/// threaded loop if epoll setup fails (containers with exotic seccomp
/// filters).
pub fn run(listener: TcpListener, app: Arc<App>, config: ServerConfig, shutdown: Arc<AtomicBool>) {
    let epoll = match Epoll::new() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("serve: epoll unavailable ({e}); using the threaded loop");
            return crate::server::accept_loop(listener, app, config, shutdown);
        }
    };
    if let Err(e) = epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN) {
        eprintln!("serve: cannot register the listener ({e}); using the threaded loop");
        return crate::server::accept_loop(listener, app, config, shutdown);
    }
    let mut state = Loop {
        epoll,
        listener,
        app,
        config,
        conns: Vec::new(),
        active: 0,
        pending: Vec::new(),
        pending_rows: 0,
        batch_started: None,
        next_job_id: 0,
        shutdown,
    };
    state.run();
}

impl Loop {
    fn run(&mut self) {
        let mut events = [EpollEvent::zeroed(); MAX_EVENTS];
        let mut last_sweep = Instant::now();
        while !self.shutdown.load(Ordering::SeqCst) {
            // With a batch open, poll (timeout 0): the batch flushes the
            // moment no further requests are ready to join it. Otherwise
            // sleep until traffic or the next sweep tick.
            let timeout_ms = if self.pending.is_empty() { 100 } else { 0 };
            let n = match self.epoll.wait(&mut events, timeout_ms) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("serve: epoll_wait failed: {e}");
                    break;
                }
            };
            for event in events.iter().take(n) {
                let (token, mask) = (event.data, event.events);
                if token == LISTENER_TOKEN {
                    self.accept_ready();
                } else {
                    self.conn_event(token as RawFd, mask);
                }
            }
            if !self.pending.is_empty() {
                let deadline_hit = self
                    .batch_started
                    .is_some_and(|t| t.elapsed() >= self.config.batch_wait);
                if n == 0 || deadline_hit || self.pending_rows >= self.config.batch_max_rows {
                    self.flush_batch();
                }
            }
            if last_sweep.elapsed() >= SWEEP_EVERY {
                self.sweep_idle();
                last_sweep = Instant::now();
            }
        }
        self.drain_and_close();
    }

    /// Accepts until the listener would block.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, addr)) => {
                    if self.active >= self.config.max_connections {
                        // Shed at the door: a bounded, explicit 503
                        // instead of unbounded connection state.
                        self.app.metrics().observe_queue_full();
                        let mut stream = stream;
                        let mut buf = Vec::new();
                        let _ = Response::error(503, "server is at capacity")
                            .write_to(&mut buf, false);
                        // lint:allow(E001, one-shot ~100-byte shed response to a freshly accepted socket; fits the send buffer and the stream is dropped immediately)
                        let _ = stream.write_all(&buf);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let interest = EPOLLIN | EPOLLRDHUP;
                    if self.epoll.add(fd, interest, fd as u64).is_err() {
                        continue;
                    }
                    let index = fd as usize;
                    if index >= self.conns.len() {
                        self.conns.resize_with(index + 1, || None);
                    }
                    self.conns[index] = Some(Conn {
                        stream,
                        peer: if self.config.log_requests {
                            addr.to_string()
                        } else {
                            String::new()
                        },
                        read_buf: Vec::new(),
                        write_buf: Vec::new(),
                        write_pos: 0,
                        slots: VecDeque::new(),
                        last_activity: Instant::now(),
                        interest,
                        no_more_reads: false,
                        paused: false,
                        close_after_flush: false,
                    });
                    self.active += 1;
                    self.app.metrics().observe_connection_opened();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn conn_event(&mut self, fd: RawFd, mask: u32) {
        let index = fd as usize;
        match self.conns.get(index) {
            Some(Some(_)) => {}
            _ => return, // stale event for an already closed fd
        }
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(fd);
            return;
        }
        if mask & EPOLLOUT != 0 {
            self.writable(fd);
            if !matches!(self.conns.get(index), Some(Some(_))) {
                return;
            }
        }
        if mask & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.readable(fd, mask & EPOLLRDHUP != 0);
        }
    }

    /// Reads until the socket would block, then parses every complete
    /// request in the buffer (pipelining).
    fn readable(&mut self, fd: RawFd, peer_half_closed: bool) {
        let index = fd as usize;
        let mut eof = peer_half_closed;
        let mut fatal = false;
        {
            let Some(Some(conn)) = self.conns.get_mut(index) else { return };
            if !conn.paused && !conn.no_more_reads {
                let mut chunk = [0u8; READ_CHUNK];
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            eof = true;
                            break;
                        }
                        Ok(n) => {
                            conn.read_buf.extend_from_slice(&chunk[..n]);
                            conn.last_activity = Instant::now();
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            fatal = true;
                            break;
                        }
                    }
                }
            }
        }
        if fatal {
            self.close_conn(fd);
            return;
        }
        self.parse_available(fd);
        if eof {
            let mut close_now = false;
            if let Some(Some(conn)) = self.conns.get_mut(index) {
                conn.no_more_reads = true;
                if conn.slots.is_empty() && conn.outstanding_write() == 0 {
                    close_now = true;
                } else {
                    conn.close_after_flush = true;
                }
            }
            if close_now {
                self.close_conn(fd);
                return;
            }
        }
        self.drain_and_write(fd);
    }

    /// Parses every complete request currently buffered on `fd`.
    fn parse_available(&mut self, fd: RawFd) {
        let index = fd as usize;
        let mut consumed_total = 0usize;
        loop {
            let Some(Some(conn)) = self.conns.get_mut(index) else { return };
            if conn.no_more_reads {
                break;
            }
            match try_parse(&conn.read_buf[consumed_total..]) {
                ParseOutcome::NeedMore => break,
                ParseOutcome::Complete(request, used) => {
                    consumed_total += used;
                    let keep_alive =
                        request.keep_alive() && !self.shutdown.load(Ordering::SeqCst);
                    let started = Instant::now();
                    match self.app.route_or_defer(&request) {
                        Routed::Immediate(response) => {
                            if self.config.log_requests {
                                log_line(
                                    &conn.peer,
                                    &request.method,
                                    &request.path,
                                    response.status,
                                    started.elapsed(),
                                    request.body.len(),
                                );
                            }
                            push_response(conn, &response, keep_alive);
                        }
                        Routed::Predict(job) => {
                            let job_id = self.next_job_id;
                            self.next_job_id += 1;
                            conn.slots.push_back(Slot::Pending(job_id));
                            self.pending_rows += job.n_rows();
                            if self.batch_started.is_none() {
                                self.batch_started = Some(Instant::now());
                            }
                            self.pending.push(BatchEntry { fd, job_id, keep_alive, job: *job });
                        }
                    }
                    if !keep_alive {
                        if let Some(Some(conn)) = self.conns.get_mut(index) {
                            conn.no_more_reads = true;
                        }
                        break;
                    }
                }
                ParseOutcome::Invalid(error) => {
                    let response = Response::error(error.status(), &error.message());
                    self.app.metrics().observe("other", response.status, Duration::ZERO);
                    if self.config.log_requests {
                        log_line(&conn.peer, "-", "-", response.status, Duration::ZERO, 0);
                    }
                    push_response(conn, &response, false);
                    conn.no_more_reads = true;
                    break;
                }
            }
        }
        if let Some(Some(conn)) = self.conns.get_mut(index) {
            if consumed_total > 0 {
                conn.read_buf.drain(..consumed_total);
            }
        }
    }

    /// Scores the open micro-batch and routes responses back to their
    /// connections, preserving per-connection request order.
    fn flush_batch(&mut self) {
        let entries = std::mem::take(&mut self.pending);
        self.pending_rows = 0;
        self.batch_started = None;
        if entries.is_empty() {
            return;
        }
        let mut metas = Vec::with_capacity(entries.len());
        let mut jobs = Vec::with_capacity(entries.len());
        for entry in entries {
            metas.push((entry.fd, entry.job_id, entry.keep_alive, entry.job.started()));
            jobs.push(entry.job);
        }
        let responses = self.app.predict_batch(&jobs);
        let mut touched: Vec<RawFd> = Vec::with_capacity(metas.len());
        for ((fd, job_id, keep_alive, started), response) in metas.into_iter().zip(&responses) {
            self.app.metrics().observe("/v1/predict", response.status, started.elapsed());
            let keep_alive = keep_alive && !self.shutdown.load(Ordering::SeqCst);
            let index = fd as usize;
            let Some(Some(conn)) = self.conns.get_mut(index) else { continue };
            if self.config.log_requests {
                log_line(&conn.peer, "POST", "/v1/predict", response.status, started.elapsed(), 0);
            }
            let mut bytes = Vec::with_capacity(response.body.len() + 128);
            let _ = response.write_to(&mut bytes, keep_alive);
            if let Some(slot) = conn
                .slots
                .iter_mut()
                .find(|s| matches!(s, Slot::Pending(id) if *id == job_id))
            {
                *slot = Slot::Ready(bytes, !keep_alive);
            }
            if !touched.contains(&fd) {
                touched.push(fd);
            }
        }
        for fd in touched {
            self.drain_and_write(fd);
        }
    }

    /// Moves leading `Ready` slots into the write buffer, then pushes
    /// bytes to the socket.
    fn drain_and_write(&mut self, fd: RawFd) {
        let index = fd as usize;
        {
            let Some(Some(conn)) = self.conns.get_mut(index) else { return };
            while matches!(conn.slots.front(), Some(Slot::Ready(_, _))) {
                let Some(Slot::Ready(bytes, close_after)) = conn.slots.pop_front() else {
                    break;
                };
                conn.write_buf.extend_from_slice(&bytes);
                if close_after {
                    // Responses after a `Connection: close` are moot.
                    conn.close_after_flush = true;
                    conn.no_more_reads = true;
                    conn.slots.clear();
                    break;
                }
            }
        }
        self.writable(fd);
    }

    /// Writes as much buffered output as the socket accepts; arms or
    /// disarms `EPOLLOUT` and applies read backpressure.
    fn writable(&mut self, fd: RawFd) {
        let index = fd as usize;
        let mut close = false;
        {
            let Some(Some(conn)) = self.conns.get_mut(index) else { return };
            while conn.write_pos < conn.write_buf.len() {
                let pos = conn.write_pos;
                match conn.stream.write(&conn.write_buf[pos..]) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => {
                        conn.write_pos += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
            if !close {
                if conn.write_pos == conn.write_buf.len() {
                    conn.write_buf.clear();
                    conn.write_pos = 0;
                    if conn.close_after_flush && conn.slots.is_empty() {
                        close = true;
                    }
                }
                if !close {
                    // Backpressure: pause reads while the peer reads
                    // slowly; resume below the low-water mark.
                    let outstanding = conn.outstanding_write();
                    if !conn.paused && outstanding > WRITE_PAUSE_BYTES {
                        conn.paused = true;
                        self.app.metrics().observe_read_paused();
                    } else if conn.paused && outstanding < WRITE_RESUME_BYTES {
                        conn.paused = false;
                    }
                }
            }
        }
        if close {
            self.close_conn(fd);
            return;
        }
        self.update_interest(fd);
    }

    /// Reconciles the epoll interest set with the connection's state.
    fn update_interest(&mut self, fd: RawFd) {
        let index = fd as usize;
        let Some(Some(conn)) = self.conns.get_mut(index) else { return };
        let mut desired = 0u32;
        if !conn.paused && !conn.no_more_reads {
            desired |= EPOLLIN | EPOLLRDHUP;
        }
        if conn.outstanding_write() > 0 {
            desired |= EPOLLOUT;
        }
        if desired != conn.interest && self.epoll.modify(fd, desired, fd as u64).is_ok() {
            conn.interest = desired;
        }
    }

    /// Reaps connections idle past the read timeout — slow-loris senders,
    /// abandoned keep-alives, and peers that never drain their responses.
    fn sweep_idle(&mut self) {
        let now = Instant::now();
        let timeout = self.config.read_timeout;
        let stale: Vec<RawFd> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(fd, conn)| {
                conn.as_ref().and_then(|c| {
                    (now.duration_since(c.last_activity) > timeout).then_some(fd as RawFd)
                })
            })
            .collect();
        for fd in stale {
            self.app.metrics().observe_idle_closed();
            self.close_conn(fd);
        }
    }

    fn close_conn(&mut self, fd: RawFd) {
        let index = fd as usize;
        if let Some(slot) = self.conns.get_mut(index) {
            if slot.take().is_some() {
                let _ = self.epoll.delete(fd);
                self.active = self.active.saturating_sub(1);
                self.app.metrics().observe_connection_closed();
            }
        }
    }

    /// Graceful shutdown: answer the batch already accepted, flush what
    /// can be flushed within the write timeout, close everything.
    fn drain_and_close(&mut self) {
        self.flush_batch();
        let write_timeout = self.config.write_timeout;
        for index in 0..self.conns.len() {
            if let Some(Some(conn)) = self.conns.get_mut(index) {
                while matches!(conn.slots.front(), Some(Slot::Ready(_, _))) {
                    let Some(Slot::Ready(bytes, _)) = conn.slots.pop_front() else { break };
                    conn.write_buf.extend_from_slice(&bytes);
                }
                if conn.outstanding_write() > 0 {
                    let _ = conn.stream.set_nonblocking(false);
                    let _ = conn.stream.set_write_timeout(Some(write_timeout));
                    let pos = conn.write_pos;
                    // lint:allow(E001, shutdown drain: deliberately blocking with an explicit write timeout after the loop has stopped serving)
                    let _ = conn.stream.write_all(&conn.write_buf[pos..]);
                }
            }
            self.close_conn(index as RawFd);
        }
    }
}

/// Serializes `response` into a ready slot on `conn` (order preserved).
fn push_response(conn: &mut Conn, response: &Response, keep_alive: bool) {
    let mut bytes = Vec::with_capacity(response.body.len() + 128);
    let _ = response.write_to(&mut bytes, keep_alive);
    conn.slots.push_back(Slot::Ready(bytes, !keep_alive));
}
