//! JSON rows ⇄ [`DataFrame`] conversion against a reference schema.
//!
//! Incoming rows are JSON objects keyed by column name. The reference
//! schema (the serving model's training frame) decides each column's kind
//! and role, so a submitted batch becomes a frame the training-time
//! encoder, detectors, and group specs can all consume directly.

use serde_json::Value;
use tabular::{Cell, ColumnKind, ColumnRole, DataFrame, Schema};

/// A client-input problem that should surface as a 400, not a panic.
pub type CodecError = String;

/// Builds a frame from JSON `rows` following `reference`.
///
/// Rules:
/// * every row must be a JSON object; unknown keys are rejected (typos
///   would otherwise silently read as missing values);
/// * numeric columns accept numbers and booleans; categorical columns
///   accept strings; `null` or an absent key means missing;
/// * when `require_label` is set, the label column must be present and
///   non-null in every row (the audit endpoint needs ground truth).
pub fn frame_from_rows(
    reference: &Schema,
    rows: &[Value],
    require_label: bool,
) -> Result<DataFrame, CodecError> {
    if rows.is_empty() {
        return Err("rows must be a non-empty array".to_string());
    }
    for (i, row) in rows.iter().enumerate() {
        let object = row
            .as_object()
            .ok_or_else(|| format!("row {i} is not a JSON object"))?;
        if let Some(unknown) =
            object.keys().find(|k| reference.index_of(k).is_err())
        {
            return Err(format!(
                "row {i} has unknown column {unknown:?}; expected columns: {}",
                reference
                    .fields()
                    .iter()
                    .map(|f| f.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }

    let mut builder = DataFrame::builder();
    for field in reference.fields() {
        let is_label = field.role == ColumnRole::Label;
        match field.kind {
            ColumnKind::Numeric => {
                let mut data = Vec::with_capacity(rows.len());
                for (i, row) in rows.iter().enumerate() {
                    let value = row.get(&field.name).unwrap_or(&Value::Null);
                    let parsed = match value {
                        Value::Null => f64::NAN,
                        Value::Number(_) => value.as_f64().unwrap_or(f64::NAN),
                        Value::Bool(b) => f64::from(u8::from(*b)),
                        _ => {
                            return Err(format!(
                                "row {i} column {:?} expects a number, got {value}",
                                field.name
                            ))
                        }
                    };
                    if is_label && require_label && parsed.is_nan() {
                        return Err(format!(
                            "row {i} is missing the required label column {:?}",
                            field.name
                        ));
                    }
                    data.push(parsed);
                }
                builder = builder.numeric(field.name.clone(), field.role, data);
            }
            ColumnKind::Categorical => {
                let mut labels: Vec<Option<String>> = Vec::with_capacity(rows.len());
                for (i, row) in rows.iter().enumerate() {
                    let value = row.get(&field.name).unwrap_or(&Value::Null);
                    let parsed = match value {
                        Value::Null => None,
                        Value::String(s) => Some(s.clone()),
                        _ => {
                            return Err(format!(
                                "row {i} column {:?} expects a string, got {value}",
                                field.name
                            ))
                        }
                    };
                    if is_label && require_label && parsed.is_none() {
                        return Err(format!(
                            "row {i} is missing the required label column {:?}",
                            field.name
                        ));
                    }
                    labels.push(parsed);
                }
                builder = builder.categorical(field.name.clone(), field.role, &labels);
            }
        }
    }
    builder.build().map_err(|e| format!("could not assemble frame: {e}"))
}

/// One cell as a JSON value (`null` = missing).
pub fn cell_to_json(frame: &DataFrame, row: usize, column: &str) -> Value {
    match frame.cell(row, column) {
        Ok(Cell::Num(x)) => serde_json::json!(x),
        Ok(Cell::Str(s)) => serde_json::json!(s),
        _ => Value::Null,
    }
}

/// Renders the frame's rows as JSON objects (used by the load generator
/// and the quickstart example to build request bodies).
pub fn rows_from_frame(frame: &DataFrame) -> Vec<Value> {
    let names: Vec<&str> =
        frame.schema().fields().iter().map(|f| f.name.as_str()).collect();
    (0..frame.n_rows())
        .map(|i| {
            let mut object = serde_json::Map::new();
            for name in &names {
                object.insert((*name).to_string(), cell_to_json(frame, i, name));
            }
            Value::Object(object)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn reference() -> DataFrame {
        DataFrame::builder()
            .numeric("age", ColumnRole::Feature, vec![30.0, 40.0])
            .categorical("job", ColumnRole::Feature, &[Some("a"), Some("b")])
            .categorical("sex", ColumnRole::Sensitive, &[Some("male"), Some("female")])
            .numeric("credit", ColumnRole::Label, vec![1.0, 0.0])
            .build()
            .unwrap()
    }

    #[test]
    fn round_trips_rows_through_a_frame() {
        let reference = reference();
        let rows = rows_from_frame(&reference);
        assert_eq!(rows.len(), 2);
        let rebuilt = frame_from_rows(reference.schema(), &rows, true).unwrap();
        assert_eq!(rebuilt.n_rows(), 2);
        assert_eq!(rebuilt.labels().unwrap(), vec![1, 0]);
        assert_eq!(rebuilt.numeric("age").unwrap(), &[30.0, 40.0]);
    }

    #[test]
    fn absent_and_null_values_become_missing() {
        let reference = reference();
        let rows = vec![json!({"job": null, "sex": "male"})];
        let frame = frame_from_rows(reference.schema(), &rows, false).unwrap();
        assert!(frame.numeric("age").unwrap()[0].is_nan());
        assert!(frame.categorical("job").unwrap().label(0).is_none());
    }

    #[test]
    fn unknown_column_is_rejected() {
        let reference = reference();
        let rows = vec![json!({"aeg": 30.0})];
        let err = frame_from_rows(reference.schema(), &rows, false).unwrap_err();
        assert!(err.contains("unknown column \"aeg\""), "{err}");
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let reference = reference();
        let err = frame_from_rows(reference.schema(), &[json!({"age": "old"})], false)
            .unwrap_err();
        assert!(err.contains("expects a number"), "{err}");
        let err = frame_from_rows(reference.schema(), &[json!({"job": 3})], false)
            .unwrap_err();
        assert!(err.contains("expects a string"), "{err}");
    }

    #[test]
    fn audit_requires_labels() {
        let reference = reference();
        let rows = vec![json!({"age": 30.0})];
        let err = frame_from_rows(reference.schema(), &rows, true).unwrap_err();
        assert!(err.contains("missing the required label"), "{err}");
        assert!(frame_from_rows(reference.schema(), &rows, false).is_ok());
    }

    #[test]
    fn non_object_rows_and_empty_batches_are_rejected() {
        let reference = reference();
        assert!(frame_from_rows(reference.schema(), &[], false)
            .unwrap_err()
            .contains("non-empty"));
        assert!(frame_from_rows(reference.schema(), &[json!([1, 2])], false)
            .unwrap_err()
            .contains("not a JSON object"));
    }
}
