//! Minimal HTTP/1.1 request parsing and response writing over `std::io`.
//!
//! Only what the service needs: request line + headers + `Content-Length`
//! bodies, keep-alive, and hard limits that map to 400/413 instead of
//! unbounded buffering. No chunked transfer encoding — requests using it
//! are rejected with 411 (length required).

use std::io::{BufRead, Write};

/// Upper bound on the request line + headers block.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Upper bound on the number of header lines.
pub const MAX_HEADERS: usize = 64;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parse failure, tagged with the HTTP status it maps to.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line / headers / body framing (400).
    BadRequest(String),
    /// Headers or body exceeded a hard limit (413).
    PayloadTooLarge(String),
    /// Body sent without `Content-Length` (411).
    LengthRequired,
    /// Socket error or timeout; the connection is dropped.
    Io(std::io::Error),
}

impl HttpError {
    /// The response status for this error (io errors get no response).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::PayloadTooLarge(_) => 413,
            HttpError::LengthRequired => 411,
            HttpError::Io(_) => 500,
        }
    }

    /// Human-readable reason for the error payload.
    pub fn message(&self) -> String {
        match self {
            HttpError::BadRequest(m) => format!("bad request: {m}"),
            HttpError::PayloadTooLarge(m) => format!("payload too large: {m}"),
            HttpError::LengthRequired => "content-length required".to_string(),
            HttpError::Io(e) => format!("io error: {e}"),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Lower-cased header names with trimmed values.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) => !v.eq_ignore_ascii_case("close"),
            None => true, // HTTP/1.1 default
        }
    }
}

/// Reads one request from the stream.
///
/// `Ok(None)` means the peer closed the connection cleanly between
/// requests.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, HttpError> {
    let mut line = Vec::new();
    let mut header_bytes = 0usize;

    // Request line; EOF here is a clean close.
    if read_line_limited(reader, &mut line, &mut header_bytes)? == 0 {
        return Ok(None);
    }
    let request_line = String::from_utf8(line.clone())
        .map_err(|_| HttpError::BadRequest("request line is not UTF-8".to_string()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".to_string()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".to_string()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing HTTP version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("unsupported version {version}")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    // Headers.
    let mut headers = Vec::new();
    loop {
        let n = read_line_limited(reader, &mut line, &mut header_bytes)?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-headers".to_string()));
        }
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::PayloadTooLarge(format!("more than {MAX_HEADERS} headers")));
        }
        let text = String::from_utf8(line.clone())
            .map_err(|_| HttpError::BadRequest("header is not UTF-8".to_string()))?;
        let (name, value) = text
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header line {text:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request { method, path, headers, body: Vec::new() };

    // Body framing.
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::LengthRequired);
    }
    // Reject duplicate Content-Length headers outright (even when equal) —
    // mismatched framing between intermediaries is the classic
    // request-smuggling shape — and accept only pure digit strings:
    // `parse::<usize>` would otherwise admit forms like "+5" that other
    // parsers in the chain may read differently.
    let lengths: Vec<&str> = request
        .headers
        .iter()
        .filter(|(name, _)| name == "content-length")
        .map(|(_, value)| value.as_str())
        .collect();
    let content_length = match lengths.as_slice() {
        [] => 0,
        [v] => {
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpError::BadRequest(format!("bad content-length {v:?}")));
            }
            v.parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length {v:?}")))?
        }
        _ => {
            return Err(HttpError::BadRequest(format!(
                "{} content-length headers in one request",
                lengths.len()
            )))
        }
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::PayloadTooLarge(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        std::io::Read::read_exact(reader, &mut body)?;
    }
    Ok(Some(Request { body, ..request }))
}

/// Outcome of a non-blocking parse attempt over a connection's buffered
/// bytes (see [`try_parse`]).
#[derive(Debug)]
pub enum ParseOutcome {
    /// A complete request, plus the number of buffer bytes it consumed
    /// (pipelined requests may follow at that offset).
    Complete(Request, usize),
    /// The buffer holds only a prefix of a request; read more bytes.
    NeedMore,
    /// The buffered bytes can never become a valid request; answer with
    /// the error's status and close.
    Invalid(HttpError),
}

/// Attempts to parse one request from a partially filled buffer without
/// blocking, for the event-driven server. Shares every framing rule and
/// hardening check with [`read_request`]: the only extra logic is
/// distinguishing "not yet complete" from "malformed", which the blocking
/// reader never needs (it waits on the socket instead).
pub fn try_parse(buf: &[u8]) -> ParseOutcome {
    if buf.is_empty() {
        return ParseOutcome::NeedMore;
    }
    // Only judge the head once it is fully buffered: a partial header
    // line would otherwise be mistaken for a malformed one.
    if find_head_end(buf).is_none() {
        if buf.len() > MAX_HEADER_BYTES {
            return ParseOutcome::Invalid(HttpError::PayloadTooLarge(format!(
                "headers exceed the {MAX_HEADER_BYTES}-byte limit"
            )));
        }
        return ParseOutcome::NeedMore;
    }
    let mut slice = buf;
    match read_request(&mut slice) {
        Ok(Some(request)) => ParseOutcome::Complete(request, buf.len() - slice.len()),
        Ok(None) => ParseOutcome::NeedMore,
        // The head was complete, so an EOF can only mean the body is
        // still in flight (oversized bodies were already rejected as 413
        // from the Content-Length header alone).
        Err(HttpError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            ParseOutcome::NeedMore
        }
        Err(e) => ParseOutcome::Invalid(e),
    }
}

/// Index just past the blank line ending the request head, if fully
/// buffered. Accepts CRLF and bare-LF line endings, mixed.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0usize;
    while let Some(rel) = buf[i..].iter().position(|&b| b == b'\n') {
        let at = i + rel;
        match buf.get(at + 1) {
            Some(b'\n') => return Some(at + 2),
            Some(b'\r') if buf.get(at + 2) == Some(&b'\n') => return Some(at + 3),
            _ => i = at + 1,
        }
        if i >= buf.len() {
            break;
        }
    }
    None
}

/// Reads one CRLF- (or LF-) terminated line into `line` (terminator
/// stripped), charging its length against the shared header budget.
/// Returns the number of raw bytes consumed (0 at EOF).
fn read_line_limited<R: BufRead>(
    reader: &mut R,
    line: &mut Vec<u8>,
    header_bytes: &mut usize,
) -> Result<usize, HttpError> {
    line.clear();
    let mut consumed = 0usize;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(consumed);
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        *header_bytes += take;
        if *header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::PayloadTooLarge(format!(
                "headers exceed the {MAX_HEADER_BYTES}-byte limit"
            )));
        }
        line.extend_from_slice(&available[..newline.map_or(take, |i| i)]);
        reader.consume(take);
        consumed += take;
        if newline.is_some() {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(consumed);
        }
    }
}

/// An outgoing response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &serde_json::Value) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: serde_json::to_vec(value).unwrap_or_default(),
        }
    }

    /// A JSON error payload `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, &serde_json::json!({ "error": message }))
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response { status, content_type: "text/plain; charset=utf-8", body: body.into() }
    }

    /// Serialises the response to the wire.
    pub fn write_to<W: Write>(&self, writer: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let reason = reason_phrase(self.status);
        let connection = if keep_alive { "keep-alive" } else { "close" };
        write!(
            writer,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
            connection,
        )?;
        // lint:allow(E001, generic W is an in-memory Vec<u8> on every event-loop path; only the threaded fallback passes a socket, off-loop)
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// Standard reason phrase for the statuses the service emits.
fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        409 => "Conflict",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_get_with_headers_and_query() {
        let req = parse(b"GET /healthz?verbose=1 HTTP/1.1\r\nHost: x\r\nX-Trace: 7\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("x-trace"), Some("7"));
        assert!(req.keep_alive());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let req = parse(b"POST /v1/predict HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn duplicate_equal_content_lengths_rejected() {
        let err = parse(b"POST /v1/predict HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .unwrap_err();
        assert!(matches!(err, HttpError::BadRequest(_)), "{err:?}");
    }

    #[test]
    fn duplicate_conflicting_content_lengths_rejected() {
        let err = parse(b"POST /v1/predict HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 11\r\n\r\n{\"a\"1234567")
            .unwrap_err();
        assert!(matches!(err, HttpError::BadRequest(_)), "{err:?}");
    }

    #[test]
    fn signed_content_length_rejected() {
        // `parse::<usize>` accepts a leading '+'; the framing layer must not.
        let err = parse(b"POST /v1/predict HTTP/1.1\r\nContent-Length: +5\r\n\r\nhello").unwrap_err();
        assert!(matches!(err, HttpError::BadRequest(_)), "{err:?}");
        let err = parse(b"POST /v1/predict HTTP/1.1\r\nContent-Length:\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::BadRequest(_)), "{err:?}");
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let req =
            parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn garbage_request_line_is_bad_request() {
        let err = parse(b"NONSENSE\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn http2_preface_is_rejected() {
        let err = parse(b"PRI * HTTP/2.0\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn oversized_headers_are_413() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("X-Big: {}\r\n\r\n", "a".repeat(MAX_HEADER_BYTES)).as_bytes());
        let err = parse(&raw).unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn too_many_headers_are_413() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS + 1) {
            raw.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let err = parse(&raw).unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn oversized_body_is_413_before_reading_it() {
        let raw =
            format!("POST /v1/predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let err = parse(raw.as_bytes()).unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn chunked_encoding_is_411() {
        let err = parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 411);
    }

    #[test]
    fn truncated_headers_are_400() {
        let err = parse(b"GET / HTTP/1.1\r\nHost: x\r\n").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn response_serialisation_includes_framing() {
        let mut out = Vec::new();
        Response::error(404, "not found").write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("content-type: application/json"));
        assert!(text.contains("connection: keep-alive"));
        assert!(text.ends_with("{\"error\":\"not found\"}"));
    }

    #[test]
    fn lf_only_line_endings_are_accepted() {
        let req = parse(b"GET /metrics HTTP/1.1\nHost: x\n\n").unwrap().unwrap();
        assert_eq!(req.path, "/metrics");
    }

    // --- incremental (non-blocking) parsing ---

    #[test]
    fn try_parse_needs_more_on_every_prefix_then_completes() {
        let raw = b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        for cut in 0..raw.len() {
            assert!(
                matches!(try_parse(&raw[..cut]), ParseOutcome::NeedMore),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        match try_parse(raw) {
            ParseOutcome::Complete(req, consumed) => {
                assert_eq!(req.path, "/v1/predict");
                assert_eq!(req.body, b"hello");
                assert_eq!(consumed, raw.len());
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn try_parse_reports_pipelined_request_boundaries() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let ParseOutcome::Complete(first, consumed) = try_parse(raw) else {
            panic!("first request must parse");
        };
        assert_eq!(first.path, "/healthz");
        let ParseOutcome::Complete(second, rest) = try_parse(&raw[consumed..]) else {
            panic!("second request must parse");
        };
        assert_eq!(second.path, "/metrics");
        assert_eq!(consumed + rest, raw.len());
    }

    #[test]
    fn try_parse_rejects_malformed_heads_only_once_complete() {
        // A garbage head is NeedMore until terminated, then Invalid.
        assert!(matches!(try_parse(b"NONSENSE"), ParseOutcome::NeedMore));
        match try_parse(b"NONSENSE\r\n\r\n") {
            ParseOutcome::Invalid(e) => assert_eq!(e.status(), 400),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn try_parse_applies_the_header_and_body_limits() {
        // Unterminated heads blow the header budget.
        let big = vec![b'a'; MAX_HEADER_BYTES + 1];
        match try_parse(&big) {
            ParseOutcome::Invalid(e) => assert_eq!(e.status(), 413),
            other => panic!("expected Invalid, got {other:?}"),
        }
        // A declared oversized body is rejected before it arrives.
        let raw =
            format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        match try_parse(raw.as_bytes()) {
            ParseOutcome::Invalid(e) => assert_eq!(e.status(), 413),
            other => panic!("expected Invalid, got {other:?}"),
        }
        // Request smuggling hardening applies unchanged.
        match try_parse(b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 9\r\n\r\nbody") {
            ParseOutcome::Invalid(e) => assert_eq!(e.status(), 400),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn try_parse_handles_lf_only_terminators() {
        let raw = b"GET /healthz HTTP/1.1\nHost: x\n\n";
        match try_parse(raw) {
            ParseOutcome::Complete(req, consumed) => {
                assert_eq!(req.path, "/healthz");
                assert_eq!(consumed, raw.len());
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }
}
