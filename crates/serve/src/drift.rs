//! Live fairness-drift telemetry: per-(dataset, model, group) sliding
//! windows over labeled serving traffic, compared against each model's
//! training-time test-split baseline
//! ([`demodq::serving::BaselineDisparity`]).
//!
//! Labeled rows reaching `/v1/predict` or `/v1/audit` are pushed through
//! [`DriftStore::observe`]; `/metrics` and `/v1/audit` read
//! [`DriftStore::snapshot`]. Windows are count-based and stamped with a
//! logical tick (a monotonic counter, not a wall clock), so the whole
//! drift pipeline replays deterministically in tests. Windows survive a
//! registry hot swap — the traffic is the same traffic — but the baseline
//! is re-read from the serving model on every observation, so a swap
//! immediately re-anchors the drift.

use demodq::serving::ServingModel;
use fairness::{disparity_drift, FairnessMetric, SlidingGroupWindow};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use tabular::DataFrame;

/// Tuning knobs for the drift store.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Observations each (dataset, model, group) window retains.
    pub window: usize,
    /// Absolute drift (|window − baseline|) beyond which a gauge alerts.
    pub alert_threshold: f64,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig { window: 512, alert_threshold: 0.15 }
    }
}

/// One window plus the baseline it was last compared against.
struct GroupState {
    window: SlidingGroupWindow,
    baseline_predictive_parity: Option<f64>,
    baseline_equal_opportunity: Option<f64>,
}

/// A point-in-time reading of one (dataset, model, group) window, as
/// exported by `/metrics` and `/v1/audit`.
#[derive(Debug, Clone)]
pub struct DriftEntry {
    /// Dataset name (paper naming).
    pub dataset: &'static str,
    /// Model-kind name.
    pub model: &'static str,
    /// Group spec label, e.g. `sex` or `sex*age`.
    pub group: String,
    /// Observations currently inside the window.
    pub window_len: usize,
    /// Total observations ever pushed through the window.
    pub observed: u64,
    /// Windowed absolute predictive-parity disparity.
    pub predictive_parity: Option<f64>,
    /// Windowed absolute equal-opportunity disparity.
    pub equal_opportunity: Option<f64>,
    /// Training-time baseline for predictive parity.
    pub baseline_predictive_parity: Option<f64>,
    /// Training-time baseline for equal opportunity.
    pub baseline_equal_opportunity: Option<f64>,
    /// `window − baseline` for predictive parity.
    pub drift_predictive_parity: Option<f64>,
    /// `window − baseline` for equal opportunity.
    pub drift_equal_opportunity: Option<f64>,
    /// True when either |drift| exceeds the configured threshold.
    pub alert: bool,
}

/// The serving tier's drift accounting: one [`SlidingGroupWindow`] per
/// (dataset, model, group-spec) triple, created lazily as labeled traffic
/// arrives.
pub struct DriftStore {
    states: Mutex<BTreeMap<(&'static str, &'static str, String), GroupState>>,
    /// Logical clock: one tick per observed batch.
    tick: AtomicU64,
    config: DriftConfig,
}

impl DriftStore {
    /// An empty store with the given knobs.
    pub fn new(config: DriftConfig) -> DriftStore {
        DriftStore { states: Mutex::new(BTreeMap::new()), tick: AtomicU64::new(0), config }
    }

    /// The configured alert threshold.
    pub fn alert_threshold(&self) -> f64 {
        self.config.alert_threshold
    }

    /// The configured window capacity.
    pub fn window_capacity(&self) -> usize {
        self.config.window
    }

    /// Feeds one labeled, scored batch into the windows of every group
    /// spec of `served`. `labels[i]` is `None` for rows whose label was
    /// absent or unparseable — those rows are skipped; rows outside both
    /// groups of a spec (intersectional exclusion) are skipped for that
    /// spec only. Returns the number of (row, group) observations pushed.
    pub fn observe(
        &self,
        served: &ServingModel,
        frame: &DataFrame,
        labels: &[Option<u8>],
        y_pred: &[u8],
    ) -> usize {
        let n = labels.len().min(y_pred.len()).min(frame.n_rows());
        if n == 0 {
            return 0;
        }
        let tick = self.tick.fetch_add(1, Ordering::SeqCst);
        let dataset = served.dataset.name();
        let model = served.model.name();
        let mut pushed = 0usize;
        let mut states = self.states.lock().unwrap_or_else(PoisonError::into_inner);
        for spec in &served.groups {
            // A spec whose sensitive column is absent from the submitted
            // rows simply contributes no observations.
            let Ok(masks) = spec.evaluate(frame) else { continue };
            let label = spec.label();
            let baseline = served.baseline_disparities.iter().find(|b| b.group == label);
            let state = states.entry((dataset, model, label)).or_insert_with(|| GroupState {
                window: SlidingGroupWindow::new(self.config.window),
                baseline_predictive_parity: None,
                baseline_equal_opportunity: None,
            });
            // Re-anchor the baseline on every batch so a hot-swapped
            // registry's fresh test-split disparities take effect at once.
            if let Some(b) = baseline {
                state.baseline_predictive_parity = b.predictive_parity;
                state.baseline_equal_opportunity = b.equal_opportunity;
            }
            for i in 0..n {
                let Some(y_true) = labels[i] else { continue };
                let privileged = if masks.privileged[i] {
                    true
                } else if masks.disadvantaged[i] {
                    false
                } else {
                    continue;
                };
                state.window.push(tick, privileged, y_true, y_pred[i]);
                pushed += 1;
            }
        }
        pushed
    }

    /// A deterministic-order reading of every window the store has seen
    /// traffic for.
    pub fn snapshot(&self) -> Vec<DriftEntry> {
        let states = self.states.lock().unwrap_or_else(PoisonError::into_inner);
        states
            .iter()
            .map(|(&(dataset, model, ref group), state)| {
                let pp = state.window.absolute_disparity(FairnessMetric::PredictiveParity);
                let eo = state.window.absolute_disparity(FairnessMetric::EqualOpportunity);
                let drift_pp = disparity_drift(pp, state.baseline_predictive_parity);
                let drift_eo = disparity_drift(eo, state.baseline_equal_opportunity);
                let alert = [drift_pp, drift_eo]
                    .into_iter()
                    .flatten()
                    .any(|d| d.abs() > self.config.alert_threshold);
                DriftEntry {
                    dataset,
                    model,
                    group: group.clone(),
                    window_len: state.window.len(),
                    observed: state.window.observed(),
                    predictive_parity: pp,
                    equal_opportunity: eo,
                    baseline_predictive_parity: state.baseline_predictive_parity,
                    baseline_equal_opportunity: state.baseline_equal_opportunity,
                    drift_predictive_parity: drift_pp,
                    drift_equal_opportunity: drift_eo,
                    alert,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demodq::serving::train_serving_model;
    use demodq::StudyScale;
    use datasets::DatasetId;
    use mlcore::ModelKind;

    #[test]
    fn windows_fill_from_labeled_batches_and_alert_on_drift() {
        let served =
            train_serving_model(DatasetId::German, ModelKind::LogReg, &StudyScale::smoke(), 7)
                .unwrap();
        let store = DriftStore::new(DriftConfig { window: 64, alert_threshold: 0.0 });
        assert!(store.snapshot().is_empty());
        assert!((store.alert_threshold()).abs() < 1e-12);
        assert_eq!(store.window_capacity(), 64);

        let batch = DatasetId::German.generate(40, 99).unwrap();
        let y_pred = served.predict_frame(&batch).unwrap();
        let labels: Vec<Option<u8>> =
            batch.labels().unwrap().into_iter().map(Some).collect();
        let pushed = store.observe(&served, &batch, &labels, &y_pred);
        assert!(pushed > 0, "german single-attribute specs partition the data");

        let snap = store.snapshot();
        assert_eq!(snap.len(), served.groups.len());
        for entry in &snap {
            assert_eq!(entry.dataset, "german");
            assert_eq!(entry.model, "log-reg");
            assert!(entry.window_len > 0 && entry.window_len <= 64);
            assert_eq!(entry.observed, entry.window_len as u64);
            // Baselines were re-anchored from the serving model.
            let baseline = served
                .baseline_disparities
                .iter()
                .find(|b| b.group == entry.group)
                .unwrap();
            assert_eq!(entry.baseline_predictive_parity, baseline.predictive_parity);
            assert_eq!(entry.baseline_equal_opportunity, baseline.equal_opportunity);
            // With a zero threshold, any defined nonzero drift alerts.
            if let Some(d) = entry.drift_predictive_parity {
                assert_eq!(entry.alert, d.abs() > 0.0 || entry
                    .drift_equal_opportunity
                    .map(|e| e.abs() > 0.0)
                    .unwrap_or(false));
            }
        }

        // Rows with missing labels are skipped, not mis-tallied.
        let none_labels: Vec<Option<u8>> = vec![None; batch.n_rows()];
        assert_eq!(store.observe(&served, &batch, &none_labels, &y_pred), 0);
        let snap2 = store.snapshot();
        for (a, b) in snap.iter().zip(&snap2) {
            assert_eq!(a.window_len, b.window_len);
        }
    }

    #[test]
    fn deterministic_replay_produces_identical_snapshots() {
        let served =
            train_serving_model(DatasetId::German, ModelKind::LogReg, &StudyScale::smoke(), 7)
                .unwrap();
        let batch = DatasetId::German.generate(30, 5).unwrap();
        let y_pred = served.predict_frame(&batch).unwrap();
        let labels: Vec<Option<u8>> =
            batch.labels().unwrap().into_iter().map(Some).collect();
        let run = || {
            let store = DriftStore::new(DriftConfig::default());
            store.observe(&served, &batch, &labels, &y_pred);
            store.observe(&served, &batch, &labels, &y_pred);
            store.snapshot()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.group, y.group);
            assert_eq!(x.window_len, y.window_len);
            assert_eq!(x.predictive_parity, y.predictive_parity);
            assert_eq!(x.drift_equal_opportunity, y.drift_equal_opportunity);
        }
    }
}
