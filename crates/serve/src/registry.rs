//! The read-only model registry: one [`ServingModel`] per requested
//! (dataset, model-kind) pair, trained at startup and shared behind `Arc`
//! by every worker thread.

use demodq::serving::{train_serving_model, ServingModel};
use demodq::StudyScale;
use datasets::DatasetId;
use mlcore::ModelKind;
use std::collections::BTreeMap;

/// The registry. Immutable after construction, so workers need no locks.
pub struct Registry {
    models: BTreeMap<(&'static str, &'static str), ServingModel>,
    /// Wall-clock training seconds per (dataset, model), measured at
    /// startup and exported by `/metrics` as
    /// `serve_startup_train_seconds`.
    train_seconds: BTreeMap<(&'static str, &'static str), f64>,
    scale_name: String,
    seed: u64,
}

impl Registry {
    /// Trains one model per (dataset, model) pair, in parallel across std
    /// threads (each training job is independent).
    pub fn train(
        datasets: &[DatasetId],
        models: &[ModelKind],
        scale: &StudyScale,
        scale_name: &str,
        seed: u64,
    ) -> tabular::Result<Registry> {
        let pairs: Vec<(DatasetId, ModelKind)> = datasets
            .iter()
            .flat_map(|&d| models.iter().map(move |&m| (d, m)))
            .collect();
        let mut trained = Vec::with_capacity(pairs.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .iter()
                .map(|&(dataset, model)| {
                    scope.spawn(move || {
                        let start = std::time::Instant::now();
                        let result = train_serving_model(dataset, model, scale, seed);
                        (result, start.elapsed().as_secs_f64())
                    })
                })
                .collect();
            for handle in handles {
                trained.push(handle.join().unwrap_or_else(|_| {
                    (Err(tabular::TabularError::InvalidArgument(
                        "training thread panicked".to_string(),
                    )), 0.0)
                }));
            }
        });
        let mut registry = BTreeMap::new();
        let mut train_seconds = BTreeMap::new();
        for (result, seconds) in trained {
            let served = result?;
            let key = (served.dataset.name(), served.model.name());
            train_seconds.insert(key, seconds);
            registry.insert(key, served);
        }
        Ok(Registry { models: registry, train_seconds, scale_name: scale_name.to_string(), seed })
    }

    /// Startup training wall seconds per (dataset, model), in
    /// deterministic key order.
    pub fn startup_train_seconds(&self) -> impl Iterator<Item = (&'static str, &'static str, f64)> + '_ {
        self.train_seconds.iter().map(|(&(d, m), &secs)| (d, m, secs))
    }

    /// Looks up a model by dataset and model names (paper naming).
    pub fn get(&self, dataset: &str, model: &str) -> Option<&ServingModel> {
        self.models.get(&(
            DatasetId::parse(dataset)?.name(),
            ModelKind::parse(model)?.name(),
        ))
    }

    /// Any model of the dataset (for endpoints that only need the
    /// training frame, like `/v1/clean`).
    pub fn any_for_dataset(&self, dataset: &str) -> Option<&ServingModel> {
        let name = DatasetId::parse(dataset)?.name();
        self.models
            .iter()
            .find(|((d, _), _)| *d == name)
            .map(|(_, served)| served)
    }

    /// All (dataset, model) entries in deterministic order.
    pub fn entries(&self) -> impl Iterator<Item = &ServingModel> {
        self.models.values()
    }

    /// Number of trained models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no models are registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The scale preset the registry was trained at.
    pub fn scale_name(&self) -> &str {
        &self.scale_name
    }

    /// The training seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_and_resolves_aliases() {
        let registry = Registry::train(
            &[DatasetId::German],
            &[ModelKind::LogReg],
            &StudyScale::smoke(),
            "smoke",
            11,
        )
        .unwrap();
        assert_eq!(registry.len(), 1);
        assert!(!registry.is_empty());
        // Model aliases resolve through ModelKind::parse.
        assert!(registry.get("german", "log-reg").is_some());
        assert!(registry.get("german", "logreg").is_some());
        assert!(registry.get("german", "knn").is_none());
        assert!(registry.get("nope", "log-reg").is_none());
        assert!(registry.any_for_dataset("german").is_some());
        assert_eq!(registry.scale_name(), "smoke");
        assert_eq!(registry.seed(), 11);
        let timings: Vec<_> = registry.startup_train_seconds().collect();
        assert_eq!(timings.len(), 1);
        let (dataset, model, seconds) = timings[0];
        assert_eq!((dataset, model), ("german", "log-reg"));
        assert!(seconds > 0.0);
    }
}
