//! The model registry: one [`ServingModel`] per requested (dataset,
//! model-kind) pair, trained at startup — plus [`SharedRegistry`], the
//! hot-swappable, generation-tagged handle the server actually reads
//! from. A background retrain builds a whole new [`Registry`] off to the
//! side and swaps it in atomically; readers always see exactly one
//! complete generation, never a half-trained mix.

use demodq::serving::{train_serving_model, ServingModel};
use demodq::StudyScale;
use datasets::DatasetId;
use mlcore::ModelKind;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One immutable registry generation. Workers never mutate it, so it
/// needs no locks once built.
pub struct Registry {
    models: BTreeMap<(&'static str, &'static str), ServingModel>,
    /// Wall-clock training seconds per (dataset, model), measured at
    /// startup and exported by `/metrics` as
    /// `serve_startup_train_seconds`.
    train_seconds: BTreeMap<(&'static str, &'static str), f64>,
    scale_name: String,
    scale: StudyScale,
    datasets: Vec<DatasetId>,
    model_kinds: Vec<ModelKind>,
    seed: u64,
}

impl Registry {
    /// Trains one model per (dataset, model) pair, in parallel across std
    /// threads (each training job is independent).
    pub fn train(
        datasets: &[DatasetId],
        models: &[ModelKind],
        scale: &StudyScale,
        scale_name: &str,
        seed: u64,
    ) -> tabular::Result<Registry> {
        let pairs: Vec<(DatasetId, ModelKind)> = datasets
            .iter()
            .flat_map(|&d| models.iter().map(move |&m| (d, m)))
            .collect();
        let mut trained = Vec::with_capacity(pairs.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .iter()
                .map(|&(dataset, model)| {
                    scope.spawn(move || {
                        let start = std::time::Instant::now();
                        let result = train_serving_model(dataset, model, scale, seed);
                        (result, start.elapsed().as_secs_f64())
                    })
                })
                .collect();
            for handle in handles {
                trained.push(handle.join().unwrap_or_else(|_| {
                    (Err(tabular::TabularError::InvalidArgument(
                        "training thread panicked".to_string(),
                    )), 0.0)
                }));
            }
        });
        let mut registry = BTreeMap::new();
        let mut train_seconds = BTreeMap::new();
        for (result, seconds) in trained {
            let served = result?;
            let key = (served.dataset.name(), served.model.name());
            train_seconds.insert(key, seconds);
            registry.insert(key, served);
        }
        Ok(Registry {
            models: registry,
            train_seconds,
            scale_name: scale_name.to_string(),
            scale: *scale,
            datasets: datasets.to_vec(),
            model_kinds: models.to_vec(),
            seed,
        })
    }

    /// Retrains the same roster (datasets × model kinds, same scale) at a
    /// different seed — the background half of a hot swap.
    pub fn retrain(&self, seed: u64) -> tabular::Result<Registry> {
        Registry::train(&self.datasets, &self.model_kinds, &self.scale, &self.scale_name, seed)
    }

    /// Startup training wall seconds per (dataset, model), in
    /// deterministic key order.
    pub fn startup_train_seconds(&self) -> impl Iterator<Item = (&'static str, &'static str, f64)> + '_ {
        self.train_seconds.iter().map(|(&(d, m), &secs)| (d, m, secs))
    }

    /// Looks up a model by dataset and model names (paper naming).
    pub fn get(&self, dataset: &str, model: &str) -> Option<&ServingModel> {
        self.models.get(&(
            DatasetId::parse(dataset)?.name(),
            ModelKind::parse(model)?.name(),
        ))
    }

    /// Any model of the dataset (for endpoints that only need the
    /// training frame, like `/v1/clean`).
    pub fn any_for_dataset(&self, dataset: &str) -> Option<&ServingModel> {
        let name = DatasetId::parse(dataset)?.name();
        self.models
            .iter()
            .find(|((d, _), _)| *d == name)
            .map(|(_, served)| served)
    }

    /// All (dataset, model) entries in deterministic order.
    pub fn entries(&self) -> impl Iterator<Item = &ServingModel> {
        self.models.values()
    }

    /// Number of trained models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no models are registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The scale preset the registry was trained at.
    pub fn scale_name(&self) -> &str {
        &self.scale_name
    }

    /// The training seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// The hot-swappable registry handle.
///
/// Readers take a [`SharedRegistry::snapshot`] — an `Arc` clone of the
/// current generation paired with its generation number, captured under
/// one brief mutex so the pair can never tear. The server snapshots once
/// per micro-batch, so every response in a batch reflects exactly one
/// generation; swaps replace the `Arc` and bump the generation
/// monotonically.
pub struct SharedRegistry {
    current: Mutex<(Arc<Registry>, u64)>,
    swaps: AtomicU64,
    retrain_inflight: AtomicBool,
}

impl SharedRegistry {
    /// Wraps the startup registry as generation 1.
    pub fn new(registry: Registry) -> SharedRegistry {
        SharedRegistry {
            current: Mutex::new((Arc::new(registry), 1)),
            swaps: AtomicU64::new(0),
            retrain_inflight: AtomicBool::new(false),
        }
    }

    /// The current generation and its registry, captured atomically.
    pub fn snapshot(&self) -> (Arc<Registry>, u64) {
        // A poisoned lock only means a panic elsewhere while holding it;
        // the (Arc, u64) pair itself is always internally consistent.
        let guard = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        (Arc::clone(&guard.0), guard.1)
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.current.lock().unwrap_or_else(PoisonError::into_inner).1
    }

    /// Completed swaps so far (generation = swaps + 1).
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::SeqCst)
    }

    /// Atomically installs `next` as the new current generation and
    /// returns its generation number. In-flight readers keep scoring
    /// against the snapshot they already hold.
    pub fn swap(&self, next: Arc<Registry>) -> u64 {
        let mut guard = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        guard.0 = next;
        guard.1 += 1;
        self.swaps.fetch_add(1, Ordering::SeqCst);
        guard.1
    }

    /// Whether a background retrain is currently running.
    pub fn retrain_in_flight(&self) -> bool {
        self.retrain_inflight.load(Ordering::SeqCst)
    }

    /// Kicks off a background retrain of the current roster at `seed`;
    /// the new registry is swapped in when training finishes. Only one
    /// retrain may be in flight at a time — a second request is refused
    /// (the caller maps that to 409).
    pub fn begin_retrain(self: &Arc<Self>, seed: u64) -> Result<(), &'static str> {
        if self
            .retrain_inflight
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Err("a retrain is already in flight");
        }
        let shared = Arc::clone(self);
        let spawned = std::thread::Builder::new()
            .name("demodq-retrain".to_string())
            .spawn(move || {
                let (base, _) = shared.snapshot();
                match base.retrain(seed) {
                    Ok(next) => {
                        let generation = shared.swap(Arc::new(next));
                        eprintln!("serve: hot-swapped registry generation {generation} (seed {seed})");
                    }
                    Err(e) => eprintln!("serve: background retrain failed: {e}"),
                }
                shared.retrain_inflight.store(false, Ordering::SeqCst);
            });
        if spawned.is_err() {
            self.retrain_inflight.store(false, Ordering::SeqCst);
            return Err("could not spawn the retrain thread");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_and_resolves_aliases() {
        let registry = Registry::train(
            &[DatasetId::German],
            &[ModelKind::LogReg],
            &StudyScale::smoke(),
            "smoke",
            11,
        )
        .unwrap();
        assert_eq!(registry.len(), 1);
        assert!(!registry.is_empty());
        // Model aliases resolve through ModelKind::parse.
        assert!(registry.get("german", "log-reg").is_some());
        assert!(registry.get("german", "logreg").is_some());
        assert!(registry.get("german", "knn").is_none());
        assert!(registry.get("nope", "log-reg").is_none());
        assert!(registry.any_for_dataset("german").is_some());
        assert_eq!(registry.scale_name(), "smoke");
        assert_eq!(registry.seed(), 11);
        let timings: Vec<_> = registry.startup_train_seconds().collect();
        assert_eq!(timings.len(), 1);
        let (dataset, model, seconds) = timings[0];
        assert_eq!((dataset, model), ("german", "log-reg"));
        assert!(seconds > 0.0);
    }

    #[test]
    fn shared_registry_swaps_atomically_and_monotonically() {
        let a = Registry::train(
            &[DatasetId::German],
            &[ModelKind::LogReg],
            &StudyScale::smoke(),
            "smoke",
            11,
        )
        .unwrap();
        let b = Arc::new(a.retrain(12).unwrap());
        assert_eq!(b.seed(), 12);
        assert_eq!(b.len(), 1, "retrain reuses the roster");

        let shared = Arc::new(SharedRegistry::new(a));
        let (snap, generation) = shared.snapshot();
        assert_eq!(generation, 1);
        assert_eq!(snap.seed(), 11);
        assert_eq!(shared.swaps(), 0);

        assert_eq!(shared.swap(Arc::clone(&b)), 2);
        // The old snapshot keeps working after the swap (no torn reads).
        assert_eq!(snap.seed(), 11);
        let (snap2, generation2) = shared.snapshot();
        assert_eq!((snap2.seed(), generation2), (12, 2));
        assert_eq!(shared.swaps(), 1);
        assert_eq!(shared.generation(), 2);
        assert!(!shared.retrain_in_flight());
    }
}
