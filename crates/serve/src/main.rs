//! The `demodq-serve` binary: train the registry, serve until SIGTERM or
//! ctrl-c, then drain gracefully.

use demodq::StudyScale;
use demodq_serve::{App, DriftConfig, Registry, Server, ServerConfig};
use datasets::DatasetId;
use mlcore::ModelKind;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: flip the flag, let main drain.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    // SIG_ERR would leave the default handler in place; the server still
    // works, it just dies non-gracefully, so ignore the return value.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `on_signal` is async-signal-safe (a single atomic store)
    // and the handler address stays valid for the process lifetime, so
    // installing it via libc `signal` cannot invoke UB later.
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

struct Args {
    addr: String,
    scale_name: String,
    seed: u64,
    workers: Option<usize>,
    datasets: Vec<DatasetId>,
    models: Vec<ModelKind>,
    quiet: bool,
    threaded: bool,
    batch_wait_us: Option<u64>,
    batch_max_rows: Option<usize>,
    max_connections: Option<usize>,
    drift_threshold: Option<f64>,
    drift_window: Option<usize>,
    addr_file: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: demodq-serve [--addr HOST:PORT] [--scale smoke|default|full] \
         [--seed N] [--workers N] [--datasets a,b] [--models a,b] [--quiet] \
         [--threaded] [--batch-wait-us N] [--batch-max-rows N] \
         [--max-connections N] [--drift-threshold X] [--drift-window N] \
         [--addr-file PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:8080".to_string(),
        scale_name: "smoke".to_string(),
        seed: 7,
        workers: None,
        datasets: DatasetId::all().to_vec(),
        models: ModelKind::all().to_vec(),
        quiet: false,
        threaded: false,
        batch_wait_us: None,
        batch_max_rows: None,
        max_connections: None,
        drift_threshold: None,
        drift_window: None,
        addr_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--scale" => args.scale_name = value("--scale"),
            "--seed" => {
                args.seed = value("--seed").parse().unwrap_or_else(|_| usage());
            }
            "--workers" => {
                args.workers = Some(value("--workers").parse().unwrap_or_else(|_| usage()));
            }
            "--datasets" => {
                args.datasets = value("--datasets")
                    .split(',')
                    .map(|name| {
                        DatasetId::parse(name.trim()).unwrap_or_else(|| {
                            eprintln!("unknown dataset {name:?}");
                            usage()
                        })
                    })
                    .collect();
            }
            "--models" => {
                args.models = value("--models")
                    .split(',')
                    .map(|name| {
                        ModelKind::parse(name.trim()).unwrap_or_else(|| {
                            eprintln!("unknown model {name:?}");
                            usage()
                        })
                    })
                    .collect();
            }
            "--quiet" => args.quiet = true,
            "--threaded" => args.threaded = true,
            "--batch-wait-us" => {
                args.batch_wait_us =
                    Some(value("--batch-wait-us").parse().unwrap_or_else(|_| usage()));
            }
            "--batch-max-rows" => {
                args.batch_max_rows =
                    Some(value("--batch-max-rows").parse().unwrap_or_else(|_| usage()));
            }
            "--max-connections" => {
                args.max_connections =
                    Some(value("--max-connections").parse().unwrap_or_else(|_| usage()));
            }
            "--drift-threshold" => {
                args.drift_threshold =
                    Some(value("--drift-threshold").parse().unwrap_or_else(|_| usage()));
            }
            "--drift-window" => {
                args.drift_window =
                    Some(value("--drift-window").parse().unwrap_or_else(|_| usage()));
            }
            "--addr-file" => args.addr_file = Some(value("--addr-file")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let scale = StudyScale::parse(&args.scale_name).unwrap_or_else(|| {
        eprintln!("unknown scale {:?} (smoke|default|full)", args.scale_name);
        usage()
    });
    install_signal_handlers();

    eprintln!(
        "training {} models ({} datasets x {} model kinds) at scale {:?}...",
        args.datasets.len() * args.models.len(),
        args.datasets.len(),
        args.models.len(),
        args.scale_name,
    );
    let started = std::time::Instant::now();
    let registry =
        Registry::train(&args.datasets, &args.models, &scale, &args.scale_name, args.seed)
            .unwrap_or_else(|e| {
                eprintln!("training failed: {e}");
                std::process::exit(1);
            });
    for model in registry.entries() {
        eprintln!(
            "  {}/{}: val {:.3}, test {:.3} ({})",
            model.dataset.name(),
            model.model.name(),
            model.val_accuracy,
            model.test_accuracy,
            model.best_params,
        );
    }
    eprintln!("registry ready in {:.1}s", started.elapsed().as_secs_f64());

    let mut config =
        ServerConfig { addr: args.addr, log_requests: !args.quiet, ..Default::default() };
    if let Some(workers) = args.workers {
        config.workers = workers;
        config.queue_capacity = workers;
    }
    if args.threaded {
        config.event_driven = false;
    }
    if let Some(us) = args.batch_wait_us {
        config.batch_wait = Duration::from_micros(us);
    }
    if let Some(rows) = args.batch_max_rows {
        config.batch_max_rows = rows.max(1);
    }
    if let Some(conns) = args.max_connections {
        config.max_connections = conns.max(1);
    }
    let mut drift = DriftConfig::default();
    if let Some(threshold) = args.drift_threshold {
        drift.alert_threshold = threshold;
    }
    if let Some(window) = args.drift_window {
        drift.window = window.max(1);
    }
    let app = Arc::new(App::with_drift(registry, drift));
    let server = Server::spawn(Arc::clone(&app), config).unwrap_or_else(|e| {
        eprintln!("bind failed: {e}");
        std::process::exit(1);
    });
    eprintln!("listening on http://{}", server.local_addr());
    if let Some(path) = &args.addr_file {
        // Scripts (ci.sh, loadgen drivers) poll this file to learn the
        // bound ephemeral port.
        if let Err(e) = std::fs::write(path, server.local_addr().to_string()) {
            eprintln!("cannot write --addr-file {path}: {e}");
        }
    }

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!(
        "shutdown signal received; draining ({} requests served)",
        app.metrics().total_requests()
    );
    server.shutdown();
    eprintln!("bye");
}
