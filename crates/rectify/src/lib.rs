//! # demodq-rectify — fairness-guided post-training model rectification
//!
//! The study's repair families so far all operate on the **data** side:
//! clean the training frame, refit, measure the fairness consequence.
//! This crate adds the **model**-side counterpart — take a trained
//! tree-structured classifier and repair the model itself, leaving the
//! training data untouched — so the two repair philosophies can be
//! compared head-to-head inside one study grid (`repair_side ∈
//! {data, model, both}`).
//!
//! ## Mechanism
//!
//! A tree-structured classifier partitions a validation split into
//! *cells* — one per reachable leaf of the (first) tree. Forcing a
//! cell's prediction to 0 or 1 moves every validation row of that cell
//! in one closed-form way, so the exact fairness and accuracy
//! consequence of any *set* of leaf edits follows from per-leaf group
//! confusion counts ([`fairness::LeafAccounting`]) with no model
//! re-evaluation inside the search. The rectifier runs a deterministic
//! best-first branch-and-bound over per-cell actions
//! {keep, force 0, force 1} with an admissible bound (cheapest
//! completion ignoring the fairness constraint), returning the
//! **minimum-error** flip set whose validation disparity gap is `<= ε`
//! — exact at study scale, no SMT solver required. SAT/SMT-based leaf
//! repair exists in the literature; at the cell counts produced by the
//! paper's sample sizes, plain branch-and-bound with this bound proves
//! optimality in well under the default node budget.
//!
//! To keep edits fairness-targeted (and the search space small), only
//! the `max_cells` leaves carrying the most privileged/disadvantaged
//! validation rows are editable; the rest are frozen at *keep*. The
//! search is exact over that editable set, and the returned
//! [`BoundProof`] records the evidence: nodes expanded, nodes pruned,
//! and the minimum bound among pruned nodes (never below the
//! incumbent's cost when `optimal` is true).
//!
//! ## Model families
//!
//! * **Decision tree** — a cell is a leaf; forcing sets the leaf
//!   probability to 0.0 or 1.0.
//! * **Random forest** — cells are the leaves of tree 0; forcing
//!   adjusts tree 0's leaf probability past the worst-row ensemble
//!   margin so the *mean* vote crosses 0.5 for every validation row of
//!   the cell.
//! * **GBDT** — cells are the leaves of the first boosting round;
//!   forcing shifts that leaf's value past the worst-row margin of
//!   `base_score + lr·Σ trees`, flipping the sign of the decision
//!   function for the whole cell.
//!
//! Post-edit metrics are recomputed from the **mutated model's actual
//! predictions**, never from the search's algebra, so the report's
//! `constraint_met` is an honest end-to-end check that the score
//! margins did what the accounting predicted.

mod search;

use fairness::{
    group_confusions, per_leaf_accounting, FairnessMetric, GroupConfusions, Groups,
    LeafAccounting,
};
use mlcore::{Classifier, DecisionTreeClassifier, GbdtClassifier, RandomForestClassifier};
use std::cmp::Reverse;
use tabular::DenseMatrix;

/// Margin added past the worst-row decision boundary when forcing a
/// forest or GBDT cell, absorbing float rounding in the margin algebra.
const FORCE_MARGIN: f64 = 1e-6;

/// Knobs of one rectification run.
#[derive(Debug, Clone, Copy)]
pub struct RectifyOptions {
    /// The fairness constraint to restore (absolute disparity gap).
    pub metric: FairnessMetric,
    /// Maximum tolerated validation gap.
    pub epsilon: f64,
    /// Branch-and-bound node budget; exhaustion degrades to the best
    /// complete assignment seen and marks the proof non-optimal.
    pub max_nodes: usize,
    /// Editable-cell cap: only the leaves carrying the most grouped
    /// validation rows enter the search.
    pub max_cells: usize,
}

impl Default for RectifyOptions {
    fn default() -> Self {
        RectifyOptions {
            metric: FairnessMetric::EqualOpportunity,
            epsilon: 0.05,
            max_nodes: 20_000,
            max_cells: 12,
        }
    }
}

/// One applied leaf edit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafEdit {
    /// Index of the edited tree within the model (always 0 for the
    /// current single-tree cell scheme).
    pub tree: usize,
    /// Arena index of the edited leaf.
    pub leaf: usize,
    /// The label the cell's validation rows are forced to.
    pub to_label: u8,
    /// The leaf's score before the edit (probability for classification
    /// trees, additive value for GBDT regression trees).
    pub old_score: f64,
    /// The leaf's score after the edit.
    pub new_score: f64,
}

/// Evidence of the branch-and-bound run backing a report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundProof {
    /// Search nodes popped and branched.
    pub nodes_expanded: usize,
    /// Nodes generated but never expanded; each carried an admissible
    /// lower bound.
    pub nodes_pruned: usize,
    /// Smallest bound among the pruned nodes — when `optimal` is true
    /// this is `>= incumbent_errors`, which is the optimality
    /// certificate.
    pub min_pruned_bound: Option<u64>,
    /// Validation errors of the returned assignment.
    pub incumbent_errors: u64,
    /// True when the search terminated by proof rather than budget.
    pub optimal: bool,
}

/// Everything a study (or a serving endpoint) needs to know about one
/// rectification: what was edited, what it cost, and the proof.
#[derive(Debug, Clone)]
pub struct RectificationReport {
    /// Model family name (paper short name).
    pub model: &'static str,
    /// The constrained metric.
    pub metric: FairnessMetric,
    /// The gap tolerance.
    pub epsilon: f64,
    /// Editable cells the search ran over.
    pub n_cells: usize,
    /// Applied leaf edits, ascending by (tree, leaf).
    pub edits: Vec<LeafEdit>,
    /// Validation group confusions before editing.
    pub pre: GroupConfusions,
    /// Validation group confusions after editing, recomputed from the
    /// mutated model's predictions.
    pub post: GroupConfusions,
    /// Validation gap before editing (`None` when undefined).
    pub pre_gap: Option<f64>,
    /// Validation gap after editing.
    pub post_gap: Option<f64>,
    /// Validation accuracy before editing.
    pub pre_accuracy: f64,
    /// Validation accuracy after editing.
    pub post_accuracy: f64,
    /// Whether the post-edit validation gap satisfies `epsilon`
    /// (an undefined gap cannot violate the constraint).
    pub constraint_met: bool,
    /// The search evidence.
    pub bound: BoundProof,
}

/// An undefined disparity cannot violate a gap constraint (matching the
/// study's NaN semantics for undefined metrics).
fn gap_ok(gap: Option<f64>, epsilon: f64) -> bool {
    gap.is_none_or(|g| g <= epsilon + 1e-12)
}

fn accuracy_of(y_true: &[u8], y_pred: &[u8]) -> f64 {
    if y_true.is_empty() {
        return 1.0;
    }
    let hits = y_true.iter().zip(y_pred).filter(|(t, p)| t == p).count();
    hits as f64 / y_true.len() as f64
}

/// Dense-cell view of a validation split: which leaf each row routes to.
struct CellModel {
    /// Leaf arena id per dense cell, ascending.
    leaves: Vec<usize>,
    /// Validation row indices per dense cell.
    rows: Vec<Vec<usize>>,
    /// Dense cell index per validation row.
    assignment: Vec<usize>,
}

fn build_cells(leaf_per_row: &[usize]) -> CellModel {
    let mut leaves = leaf_per_row.to_vec();
    leaves.sort_unstable();
    leaves.dedup();
    let index: std::collections::BTreeMap<usize, usize> =
        leaves.iter().enumerate().map(|(i, &l)| (l, i)).collect();
    let assignment: Vec<usize> = leaf_per_row.iter().map(|l| index[l]).collect();
    let mut rows = vec![Vec::new(); leaves.len()];
    for (r, &c) in assignment.iter().enumerate() {
        rows[c].push(r);
    }
    CellModel { leaves, rows, assignment }
}

/// The per-cell decisions of one search run, translated back to dense
/// cell ids.
struct Decision {
    /// `(dense cell, forced label)`, ascending by cell.
    flips: Vec<(usize, u8)>,
    bound: BoundProof,
    n_cells: usize,
}

/// Selects the editable cells, runs the search, and maps the chosen
/// actions back onto dense cell ids.
fn decide(accountings: &[LeafAccounting], opts: &RectifyOptions) -> Decision {
    // Editable = the cells with the most grouped validation rows (only
    // those can move the gap); deterministic leverage order with cell id
    // as the tie-break. The rest are frozen at keep.
    let mut candidates: Vec<usize> = (0..accountings.len())
        .filter(|&c| {
            accountings[c].privileged.total() + accountings[c].disadvantaged.total() > 0
        })
        .collect();
    candidates.sort_by_key(|&c| {
        let a = &accountings[c];
        (Reverse(a.privileged.total() + a.disadvantaged.total()), c)
    });
    candidates.truncate(opts.max_cells);

    let mut base = LeafAccounting::default();
    for (c, acc) in accountings.iter().enumerate() {
        if !candidates.contains(&c) {
            base.merge(acc);
        }
    }
    let editable: Vec<LeafAccounting> = candidates.iter().map(|&c| accountings[c]).collect();
    let outcome = search::search(&base, &editable, opts.metric, opts.epsilon, opts.max_nodes);

    let mut flips: Vec<(usize, u8)> = candidates
        .iter()
        .zip(&outcome.actions)
        .filter(|(_, &a)| a != search::KEEP)
        .map(|(&c, &a)| (c, a))
        .collect();
    flips.sort_unstable();
    Decision {
        flips,
        bound: BoundProof {
            nodes_expanded: outcome.nodes_expanded,
            nodes_pruned: outcome.nodes_pruned,
            min_pruned_bound: outcome.min_pruned_bound,
            incumbent_errors: outcome.errors,
            optimal: outcome.optimal,
        },
        n_cells: editable.len(),
    }
}

/// Pre-edit state shared by every model family.
struct PreState {
    pre: GroupConfusions,
    pre_gap: Option<f64>,
    pre_accuracy: f64,
}

fn pre_state(y_true: &[u8], y_pred: &[u8], groups: &Groups, metric: FairnessMetric) -> PreState {
    let pre = group_confusions(y_true, y_pred, groups);
    PreState {
        pre,
        pre_gap: metric.absolute_disparity(&pre),
        pre_accuracy: accuracy_of(y_true, y_pred),
    }
}

/// A report for the no-edit case (constraint already met, empty split,
/// or a model with no editable structure).
fn untouched_report(
    model: &'static str,
    opts: &RectifyOptions,
    state: &PreState,
) -> RectificationReport {
    RectificationReport {
        model,
        metric: opts.metric,
        epsilon: opts.epsilon,
        n_cells: 0,
        edits: Vec::new(),
        pre: state.pre,
        post: state.pre,
        pre_gap: state.pre_gap,
        post_gap: state.pre_gap,
        pre_accuracy: state.pre_accuracy,
        post_accuracy: state.pre_accuracy,
        constraint_met: gap_ok(state.pre_gap, opts.epsilon),
        bound: BoundProof { optimal: true, ..BoundProof::default() },
    }
}

/// Assembles the final report from the mutated model's actual
/// predictions — the honesty check on the search algebra.
#[allow(clippy::too_many_arguments)]
fn finish_report(
    model: &'static str,
    opts: &RectifyOptions,
    state: PreState,
    decision: Decision,
    edits: Vec<LeafEdit>,
    y_true: &[u8],
    post_pred: &[u8],
    groups: &Groups,
) -> RectificationReport {
    let post = group_confusions(y_true, post_pred, groups);
    let post_gap = opts.metric.absolute_disparity(&post);
    RectificationReport {
        model,
        metric: opts.metric,
        epsilon: opts.epsilon,
        n_cells: decision.n_cells,
        edits,
        pre: state.pre,
        post,
        pre_gap: state.pre_gap,
        post_gap,
        pre_accuracy: state.pre_accuracy,
        post_accuracy: accuracy_of(y_true, post_pred),
        constraint_met: gap_ok(post_gap, opts.epsilon),
        bound: decision.bound,
    }
}

/// Rectifies a decision tree in place against the validation split.
pub fn rectify_tree(
    model: &mut DecisionTreeClassifier,
    x_val: &DenseMatrix,
    y_val: &[u8],
    groups: &Groups,
    opts: &RectifyOptions,
) -> RectificationReport {
    let pre_pred = model.predict(x_val);
    let state = pre_state(y_val, &pre_pred, groups, opts.metric);
    if y_val.is_empty() || gap_ok(state.pre_gap, opts.epsilon) {
        return untouched_report("decision-tree", opts, &state);
    }
    let leaf_per_row: Vec<usize> =
        (0..x_val.n_rows()).map(|i| model.leaf_for_row(x_val.row(i))).collect();
    let cells = build_cells(&leaf_per_row);
    let accountings =
        per_leaf_accounting(&cells.assignment, cells.leaves.len(), y_val, &pre_pred, groups);
    let decision = decide(&accountings, opts);
    let mut edits = Vec::with_capacity(decision.flips.len());
    for &(cell, label) in &decision.flips {
        let leaf = cells.leaves[cell];
        let old = model.leaf_probability(leaf).unwrap_or(0.5);
        let new = f64::from(label);
        if model.set_leaf_probability(leaf, new) {
            edits.push(LeafEdit { tree: 0, leaf, to_label: label, old_score: old, new_score: new });
        }
    }
    let post_pred = model.predict(x_val);
    finish_report("decision-tree", opts, state, decision, edits, y_val, &post_pred, groups)
}

/// Rectifies a random forest in place. Cells are the leaves of tree 0;
/// forcing moves tree 0's leaf probability past the worst-row margin of
/// the ensemble mean, so the whole cell's majority vote flips.
pub fn rectify_forest(
    model: &mut RandomForestClassifier,
    x_val: &DenseMatrix,
    y_val: &[u8],
    groups: &Groups,
    opts: &RectifyOptions,
) -> RectificationReport {
    let pre_pred = model.predict(x_val);
    let state = pre_state(y_val, &pre_pred, groups, opts.metric);
    if y_val.is_empty() || gap_ok(state.pre_gap, opts.epsilon) {
        return untouched_report("random-forest", opts, &state);
    }
    if model.trees().is_empty() {
        return untouched_report("random-forest", opts, &state);
    }
    let n_trees = model.trees().len() as f64;
    let leaf_per_row: Vec<usize> =
        (0..x_val.n_rows()).map(|i| model.trees()[0].leaf_for_row(x_val.row(i))).collect();
    let cells = build_cells(&leaf_per_row);
    let accountings =
        per_leaf_accounting(&cells.assignment, cells.leaves.len(), y_val, &pre_pred, groups);
    let decision = decide(&accountings, opts);
    // Per-row vote mass of trees 1.. — what tree 0's new leaf score has
    // to overcome so the mean crosses 0.5 for every row of the cell.
    let mean = model.predict_proba(x_val);
    let others: Vec<f64> = (0..x_val.n_rows())
        .map(|i| mean[i] * n_trees - model.trees()[0].predict_row(x_val.row(i)))
        .collect();
    let mut edits = Vec::with_capacity(decision.flips.len());
    for &(cell, label) in &decision.flips {
        let leaf = cells.leaves[cell];
        let thresholds = cells.rows[cell].iter().map(|&r| 0.5 * n_trees - others[r]);
        let new = if label == 1 {
            thresholds.fold(f64::NEG_INFINITY, f64::max) + FORCE_MARGIN
        } else {
            thresholds.fold(f64::INFINITY, f64::min) - FORCE_MARGIN
        };
        let old = model.trees()[0].leaf_probability(leaf).unwrap_or(0.5);
        if model.trees_mut()[0].set_leaf_probability(leaf, new) {
            edits.push(LeafEdit { tree: 0, leaf, to_label: label, old_score: old, new_score: new });
        }
    }
    let post_pred = model.predict(x_val);
    finish_report("random-forest", opts, state, decision, edits, y_val, &post_pred, groups)
}

/// Rectifies a GBDT in place. Cells are the leaves of the first boosting
/// round; forcing shifts that leaf's additive value past the worst-row
/// margin of the decision function `base_score + lr·Σ trees`.
pub fn rectify_gbdt(
    model: &mut GbdtClassifier,
    x_val: &DenseMatrix,
    y_val: &[u8],
    groups: &Groups,
    opts: &RectifyOptions,
) -> RectificationReport {
    let pre_pred = model.predict(x_val);
    let state = pre_state(y_val, &pre_pred, groups, opts.metric);
    if y_val.is_empty() || gap_ok(state.pre_gap, opts.epsilon) {
        return untouched_report("xgboost", opts, &state);
    }
    let lr = model.learning_rate();
    if model.trees().is_empty() || lr <= 0.0 {
        // Degenerate boost (no rounds survived, or no shrinkage): there
        // is no leaf whose value moves the decision function.
        return untouched_report("xgboost", opts, &state);
    }
    let base = model.base_score();
    let leaf_per_row: Vec<usize> =
        (0..x_val.n_rows()).map(|i| model.trees()[0].leaf_for_row(x_val.row(i))).collect();
    let cells = build_cells(&leaf_per_row);
    let accountings =
        per_leaf_accounting(&cells.assignment, cells.leaves.len(), y_val, &pre_pred, groups);
    let decision = decide(&accountings, opts);
    // Per-row additive mass of rounds 1.. — the first round's new leaf
    // value must push `base + lr·(v0 + rest)` across 0 for every row.
    let rest: Vec<f64> = (0..x_val.n_rows())
        .map(|i| {
            let row = x_val.row(i);
            (model.decision(row) - base) / lr - model.trees()[0].predict_row(row)
        })
        .collect();
    let mut edits = Vec::with_capacity(decision.flips.len());
    for &(cell, label) in &decision.flips {
        let leaf = cells.leaves[cell];
        let thresholds = cells.rows[cell].iter().map(|&r| -base / lr - rest[r]);
        let new = if label == 1 {
            thresholds.fold(f64::NEG_INFINITY, f64::max) + FORCE_MARGIN
        } else {
            thresholds.fold(f64::INFINITY, f64::min) - FORCE_MARGIN
        };
        let old = model.trees()[0].leaf_value(leaf).unwrap_or(0.0);
        if model.trees_mut()[0].set_leaf_value(leaf, new) {
            edits.push(LeafEdit { tree: 0, leaf, to_label: label, old_score: old, new_score: new });
        }
    }
    let post_pred = model.predict(x_val);
    finish_report("xgboost", opts, state, decision, edits, y_val, &post_pred, groups)
}

/// Rectifies any classifier that exposes editable tree structure.
/// Returns `None` for families without one (log-reg, kNN) — the study
/// treats those as pass-through on the model side.
pub fn rectify_classifier(
    model: &mut dyn Classifier,
    x_val: &DenseMatrix,
    y_val: &[u8],
    groups: &Groups,
    opts: &RectifyOptions,
) -> Option<RectificationReport> {
    let any = model.as_any_mut()?;
    if let Some(m) = any.downcast_mut::<DecisionTreeClassifier>() {
        return Some(rectify_tree(m, x_val, y_val, groups, opts));
    }
    if let Some(m) = any.downcast_mut::<RandomForestClassifier>() {
        return Some(rectify_forest(m, x_val, y_val, groups, opts));
    }
    if let Some(m) = any.downcast_mut::<GbdtClassifier>() {
        return Some(rectify_gbdt(m, x_val, y_val, groups, opts));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcore::dtree::DTreeParams;

    /// A synthetic split where the model learns to under-select the
    /// disadvantaged group: feature 0 is the group attribute, feature 1
    /// is signal. Labels depend only on the signal, but the training
    /// labels for the disadvantaged group are flipped toward 0 so every
    /// tree family picks up the bias.
    fn biased_data(n: usize) -> (DenseMatrix, Vec<u8>, DenseMatrix, Vec<u8>, Groups) {
        let gen_row = |i: usize| -> (f64, f64) {
            let group = f64::from(i.is_multiple_of(2)); // 1.0 = privileged
            let signal = ((i * 37 + 11) % 100) as f64 / 100.0;
            (group, signal)
        };
        let label = |group: f64, signal: f64, train: bool| -> u8 {
            let base = u8::from(signal >= 0.5);
            // Training bias: disadvantaged positives are often erased.
            if train && group < 0.5 && base == 1 && signal < 0.8 {
                0
            } else {
                base
            }
        };
        let mut xt = Vec::new();
        let mut yt = Vec::new();
        for i in 0..n {
            let (g, s) = gen_row(i);
            xt.extend_from_slice(&[g, s]);
            yt.push(label(g, s, true));
        }
        let mut xv = Vec::new();
        let mut yv = Vec::new();
        let mut privileged = Vec::new();
        let mut disadvantaged = Vec::new();
        for i in 0..n {
            let (g, s) = gen_row(i * 3 + 1);
            xv.extend_from_slice(&[g, s]);
            yv.push(label(g, s, false));
            privileged.push(g >= 0.5);
            disadvantaged.push(g < 0.5);
        }
        (
            DenseMatrix::from_vec(n, 2, xt),
            yt,
            DenseMatrix::from_vec(n, 2, xv),
            yv,
            Groups { privileged, disadvantaged },
        )
    }

    fn opts(epsilon: f64) -> RectifyOptions {
        RectifyOptions { epsilon, ..RectifyOptions::default() }
    }

    fn assert_constraint(report: &RectificationReport, x: &DenseMatrix) {
        assert!(
            report.constraint_met,
            "{}: post gap {:?} must satisfy eps {} (pre {:?})",
            report.model, report.post_gap, report.epsilon, report.pre_gap
        );
        assert!(x.n_rows() > 0);
    }

    #[test]
    fn tree_rectification_meets_epsilon_on_validation() {
        let (xt, yt, xv, yv, groups) = biased_data(160);
        let mut model = DecisionTreeClassifier::fit(&xt, &yt, DTreeParams::default(), 7);
        let o = opts(0.05);
        let report = rectify_tree(&mut model, &xv, &yv, &groups, &o);
        assert_constraint(&report, &xv);
        // The post confusions must match the mutated model's actual
        // predictions (the report is computed from them).
        let gap = o.metric.absolute_disparity(&group_confusions(
            &yv,
            &model.predict(&xv),
            &groups,
        ));
        assert_eq!(report.post_gap, gap);
        assert!(
            report.pre_gap.is_some_and(|g| g > 0.05),
            "scenario must start unfair (pre gap {:?})",
            report.pre_gap
        );
        assert!(!report.edits.is_empty(), "a violating model needs edits");
    }

    #[test]
    fn forest_rectification_meets_epsilon_on_validation() {
        let (xt, yt, xv, yv, groups) = biased_data(160);
        let mut model = RandomForestClassifier::fit(&xt, &yt, 7, 4, 7);
        let report = rectify_forest(&mut model, &xv, &yv, &groups, &opts(0.05));
        assert_constraint(&report, &xv);
        let post = group_confusions(&yv, &model.predict(&xv), &groups);
        assert_eq!(report.post, post, "report must reflect the mutated ensemble");
    }

    #[test]
    fn gbdt_rectification_meets_epsilon_on_validation() {
        let (xt, yt, xv, yv, groups) = biased_data(160);
        let mut model = GbdtClassifier::fit(&xt, &yt, 3, 20, 0.3, 1.0, 7);
        let report = rectify_gbdt(&mut model, &xv, &yv, &groups, &opts(0.05));
        assert_constraint(&report, &xv);
        let post = group_confusions(&yv, &model.predict(&xv), &groups);
        assert_eq!(report.post, post, "report must reflect the mutated booster");
    }

    #[test]
    fn bound_proof_is_admissible() {
        let (xt, yt, xv, yv, groups) = biased_data(160);
        let mut model = DecisionTreeClassifier::fit(&xt, &yt, DTreeParams::default(), 7);
        let report = rectify_tree(&mut model, &xv, &yv, &groups, &opts(0.0));
        if report.bound.optimal {
            if let Some(b) = report.bound.min_pruned_bound {
                assert!(
                    b >= report.bound.incumbent_errors,
                    "pruned bound {b} beats incumbent {}",
                    report.bound.incumbent_errors
                );
            }
        }
    }

    #[test]
    fn already_fair_model_is_untouched() {
        let (xt, yt, xv, yv, groups) = biased_data(120);
        let mut model = DecisionTreeClassifier::fit(&xt, &yt, DTreeParams::default(), 7);
        // Epsilon 1.0 is always satisfied: no edits, identical pre/post.
        let report = rectify_tree(&mut model, &xv, &yv, &groups, &opts(1.0));
        assert!(report.edits.is_empty());
        assert_eq!(report.pre, report.post);
        assert!(report.constraint_met);
        assert_eq!(report.bound.nodes_expanded, 0);
    }

    #[test]
    fn rectify_classifier_dispatches_and_skips_non_trees() {
        let (xt, yt, xv, yv, groups) = biased_data(160);
        let o = opts(0.05);
        let mut tree: Box<dyn Classifier> =
            Box::new(DecisionTreeClassifier::fit(&xt, &yt, DTreeParams::default(), 7));
        let report = rectify_classifier(tree.as_mut(), &xv, &yv, &groups, &o);
        assert_eq!(report.map(|r| r.model), Some("decision-tree"));
        let mut logreg: Box<dyn Classifier> =
            Box::new(mlcore::LogRegClassifier::fit(&xt, &yt, 1.0, 200));
        assert!(rectify_classifier(logreg.as_mut(), &xv, &yv, &groups, &o).is_none());
    }

    #[test]
    fn rectification_is_deterministic() {
        let run = || {
            let (xt, yt, xv, yv, groups) = biased_data(160);
            let mut model = GbdtClassifier::fit(&xt, &yt, 3, 20, 0.3, 1.0, 7);
            let report = rectify_gbdt(&mut model, &xv, &yv, &groups, &opts(0.05));
            (report.edits, report.post_accuracy.to_bits(), report.bound.nodes_expanded)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_validation_split_is_a_noop() {
        let (xt, yt, _, _, _) = biased_data(60);
        let mut model = DecisionTreeClassifier::fit(&xt, &yt, DTreeParams::default(), 7);
        let empty = DenseMatrix::from_vec(0, 2, Vec::new());
        let groups = Groups { privileged: Vec::new(), disadvantaged: Vec::new() };
        let report = rectify_tree(&mut model, &empty, &[], &groups, &opts(0.0));
        assert!(report.edits.is_empty());
        assert!(report.constraint_met, "empty split has nothing to violate");
    }
}
