//! Deterministic best-first branch-and-bound over per-cell actions.
//!
//! Each editable cell has up to three actions: **keep** its current
//! predictions, **force 0** or **force 1** (forcing to the label every
//! row already predicts is identical to keeping and is deduplicated).
//! A search node fixes the actions of a prefix of the cells; its
//! priority is
//!
//! ```text
//! bound(node) = errors(decided prefix) + Σ min-action errors(undecided suffix)
//! ```
//!
//! The suffix term ignores the fairness constraint entirely, so it never
//! exceeds the true cost of any completion — the bound is **admissible**
//! — and best-first expansion in bound order makes the first *feasible
//! complete* node popped an exact optimum: every node still enqueued at
//! that moment carries a bound no smaller than the incumbent's cost.
//! Those never-expanded nodes are the pruned set the
//! [`SearchOutcome`] reports; the admissibility tests check
//! `min_pruned_bound >= errors` against exhaustive enumeration.
//!
//! Ties in the bound break on a monotone insertion counter, so the pop
//! order — and therefore every reported flip set — is identical across
//! runs, platforms and thread counts.

use fairness::{FairnessMetric, LeafAccounting};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Action code: force the cell's predictions to 0.
pub(crate) const FORCE_ZERO: u8 = 0;
/// Action code: force the cell's predictions to 1.
pub(crate) const FORCE_ONE: u8 = 1;
/// Action code: keep the cell's current predictions.
pub(crate) const KEEP: u8 = 2;

/// Result of one branch-and-bound run.
#[derive(Debug, Clone)]
pub(crate) struct SearchOutcome {
    /// Chosen action per editable cell (`KEEP` / `FORCE_ZERO` /
    /// `FORCE_ONE`).
    pub actions: Vec<u8>,
    /// Total misclassified validation rows under the chosen actions
    /// (including the frozen base cells).
    pub errors: u64,
    /// Absolute disparity of the chosen assignment (`None` when the
    /// metric is undefined on the resulting counts). The library
    /// recomputes the gap from the mutated model's actual predictions;
    /// this field exists for the search-level tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub gap: Option<f64>,
    /// True when `gap` satisfies the epsilon constraint.
    #[cfg_attr(not(test), allow(dead_code))]
    pub constraint_met: bool,
    /// Nodes popped and branched.
    pub nodes_expanded: usize,
    /// Nodes generated but never expanded — each carries an admissible
    /// lower bound at least as large as the incumbent's cost.
    pub nodes_pruned: usize,
    /// Smallest bound among the pruned nodes (`None` when the queue
    /// drained completely).
    pub min_pruned_bound: Option<u64>,
    /// True when the search terminated by proof (feasible optimum found,
    /// or the space was exhausted) rather than by the node budget.
    pub optimal: bool,
}

/// One enumerated action of a cell: the code, the cell's accounting
/// after the action, and the errors that accounting carries.
type Action = (u8, LeafAccounting, u64);

fn cell_actions(cell: &LeafAccounting) -> Vec<Action> {
    let mut options: Vec<Action> = vec![(KEEP, *cell, cell.errors())];
    for label in [FORCE_ZERO, FORCE_ONE] {
        let forced = cell.forced(label);
        if forced != *cell {
            options.push((label, forced, forced.errors()));
        }
    }
    options
}

fn gap_of(metric: FairnessMetric, acc: &LeafAccounting) -> Option<f64> {
    metric.absolute_disparity(&acc.group_confusions())
}

/// An undefined disparity cannot violate a gap constraint (matching the
/// study's NaN semantics for undefined metrics).
fn meets(gap: Option<f64>, epsilon: f64) -> bool {
    gap.is_none_or(|g| g <= epsilon + 1e-12)
}

/// A prefix-decided search node.
struct Node {
    /// Number of decided cells (== `actions.len()`).
    depth: usize,
    /// Actions of the decided prefix.
    actions: Vec<u8>,
    /// Summed post-action accounting of the decided prefix plus the
    /// frozen base.
    acc: LeafAccounting,
    /// Errors of the decided prefix plus the base.
    errors: u64,
}

/// Runs the search. `base` is the merged accounting of every frozen
/// (non-editable) cell — it participates in the constraint and the error
/// count but offers no actions. `cells` are the editable cells.
pub(crate) fn search(
    base: &LeafAccounting,
    cells: &[LeafAccounting],
    metric: FairnessMetric,
    epsilon: f64,
    max_nodes: usize,
) -> SearchOutcome {
    let n = cells.len();
    let actions: Vec<Vec<Action>> = cells.iter().map(cell_actions).collect();

    // Admissible suffix bound: the cheapest completion of cells i.. when
    // the fairness constraint is ignored.
    let mut suffix_min = vec![0u64; n + 1];
    for i in (0..n).rev() {
        let cheapest = actions[i].iter().map(|a| a.2).min().unwrap_or(0);
        suffix_min[i] = suffix_min[i + 1] + cheapest;
    }

    // Shortcut: the unconstrained minimum-error assignment costs exactly
    // the global lower bound, so if it happens to satisfy the constraint
    // it is optimal with no search at all. It also serves as the
    // guaranteed-complete fallback when the node budget trips.
    let mut greedy_actions = Vec::with_capacity(n);
    let mut greedy_acc = *base;
    let mut greedy_errors = base.errors();
    for opts in &actions {
        let best = opts
            .iter()
            .min_by_key(|a| a.2)
            .copied()
            .unwrap_or((KEEP, LeafAccounting::default(), 0));
        greedy_actions.push(best.0);
        greedy_acc.merge(&best.1);
        greedy_errors += best.2;
    }
    let greedy_gap = gap_of(metric, &greedy_acc);
    if meets(greedy_gap, epsilon) {
        return SearchOutcome {
            actions: greedy_actions,
            errors: greedy_errors,
            gap: greedy_gap,
            constraint_met: true,
            nodes_expanded: 0,
            nodes_pruned: 0,
            min_pruned_bound: None,
            optimal: true,
        };
    }

    // Best complete assignment seen so far, for the infeasible and
    // budget-exhausted exits: least gap first, then fewest errors.
    let mut fallback = (greedy_gap.unwrap_or(f64::INFINITY), greedy_errors, greedy_actions);

    let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut nodes: Vec<Node> = Vec::new();
    let root = Node { depth: 0, actions: Vec::new(), acc: *base, errors: base.errors() };
    heap.push(Reverse((root.errors + suffix_min[0], 0)));
    nodes.push(root);

    let mut expanded = 0usize;
    let mut budget_hit = false;
    while let Some(Reverse((bound, id))) = heap.pop() {
        let node = std::mem::replace(
            &mut nodes[id as usize],
            Node { depth: 0, actions: Vec::new(), acc: LeafAccounting::default(), errors: 0 },
        );
        if node.depth == n {
            let gap = gap_of(metric, &node.acc);
            if meets(gap, epsilon) {
                // First feasible complete node in bound order: optimal.
                let min_pruned = heap.iter().map(|Reverse((b, _))| *b).min();
                return SearchOutcome {
                    actions: node.actions,
                    errors: node.errors,
                    gap,
                    constraint_met: true,
                    nodes_expanded: expanded,
                    nodes_pruned: heap.len(),
                    min_pruned_bound: min_pruned,
                    optimal: true,
                };
            }
            let key = (gap.unwrap_or(f64::INFINITY), node.errors);
            if key < (fallback.0, fallback.1) {
                fallback = (key.0, key.1, node.actions);
            }
            continue;
        }
        expanded += 1;
        if expanded > max_nodes {
            budget_hit = true;
            break;
        }
        let _ = bound;
        for (code, acc, errs) in &actions[node.depth] {
            let mut child_actions = node.actions.clone();
            child_actions.push(*code);
            let mut child_acc = node.acc;
            child_acc.merge(acc);
            let child = Node {
                depth: node.depth + 1,
                actions: child_actions,
                acc: child_acc,
                errors: node.errors + errs,
            };
            let child_bound = child.errors + suffix_min[child.depth];
            heap.push(Reverse((child_bound, nodes.len() as u64)));
            nodes.push(child);
        }
    }

    // No feasible assignment exists (queue drained), or the budget
    // tripped: return the least-gap complete assignment seen.
    let min_pruned = heap.iter().map(|Reverse((b, _))| *b).min();
    let (gap, errors, chosen) = fallback;
    SearchOutcome {
        actions: chosen,
        errors,
        gap: gap.is_finite().then_some(gap),
        constraint_met: false,
        nodes_expanded: expanded,
        nodes_pruned: heap.len(),
        min_pruned_bound: min_pruned,
        optimal: !budget_hit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairness::ConfusionMatrix;

    /// A cell with the given privileged / disadvantaged counts.
    fn cell(p: ConfusionMatrix, d: ConfusionMatrix) -> LeafAccounting {
        LeafAccounting { privileged: p, disadvantaged: d, excluded: ConfusionMatrix::default() }
    }

    fn cm(tn: u64, fp: u64, fn_: u64, tp: u64) -> ConfusionMatrix {
        ConfusionMatrix { tn, fp, fn_, tp }
    }

    /// Brute-force reference: enumerate every action assignment.
    fn exhaustive_best(
        base: &LeafAccounting,
        cells: &[LeafAccounting],
        metric: FairnessMetric,
        epsilon: f64,
    ) -> Option<u64> {
        let actions: Vec<Vec<Action>> = cells.iter().map(cell_actions).collect();
        let mut best: Option<u64> = None;
        let mut stack = vec![(0usize, *base, base.errors())];
        while let Some((depth, acc, errors)) = stack.pop() {
            if depth == cells.len() {
                if meets(gap_of(metric, &acc), epsilon) {
                    best = Some(best.map_or(errors, |b: u64| b.min(errors)));
                }
                continue;
            }
            for (_, a, e) in &actions[depth] {
                let mut next = acc;
                next.merge(a);
                stack.push((depth + 1, next, errors + e));
            }
        }
        best
    }

    /// Cells engineered so the privileged group has recall 1.0 and the
    /// disadvantaged group recall 0.0: equal opportunity gap 1.0.
    fn biased_cells() -> (LeafAccounting, Vec<LeafAccounting>) {
        let base = cell(cm(5, 0, 0, 5), cm(5, 0, 0, 0));
        let cells = vec![
            cell(cm(0, 0, 0, 4), cm(1, 0, 3, 0)), // dis positives predicted 0
            cell(cm(3, 0, 0, 0), cm(0, 0, 2, 0)),
            cell(cm(0, 1, 0, 2), cm(2, 0, 1, 0)),
        ];
        (base, cells)
    }

    #[test]
    fn finds_feasible_optimum_matching_exhaustive() {
        let (base, cells) = biased_cells();
        let metric = FairnessMetric::EqualOpportunity;
        let out = search(&base, &cells, metric, 0.2, 100_000);
        assert!(out.constraint_met, "gap {:?}", out.gap);
        assert!(out.optimal);
        assert!(out.gap.is_some_and(|g| g <= 0.2 + 1e-12));
        let best = exhaustive_best(&base, &cells, metric, 0.2).expect("feasible");
        assert_eq!(out.errors, best, "search must match exhaustive optimum");
    }

    #[test]
    fn pruned_bounds_never_beat_the_incumbent() {
        let (base, cells) = biased_cells();
        let out = search(&base, &cells, FairnessMetric::EqualOpportunity, 0.2, 100_000);
        assert!(out.constraint_met);
        if let Some(min_bound) = out.min_pruned_bound {
            assert!(
                min_bound >= out.errors,
                "a pruned node (bound {min_bound}) could beat the incumbent ({})",
                out.errors
            );
        }
    }

    #[test]
    fn unconstrained_optimum_short_circuits() {
        // A single cell whose keep action is already fair.
        let base = cell(cm(2, 0, 0, 2), cm(2, 0, 0, 2));
        let cells = vec![cell(cm(1, 1, 0, 0), cm(1, 1, 0, 0))];
        let out = search(&base, &cells, FairnessMetric::EqualOpportunity, 0.1, 100);
        assert!(out.constraint_met);
        assert_eq!(out.nodes_expanded, 0, "no search needed");
        assert!(out.optimal);
    }

    #[test]
    fn infeasible_space_reports_least_gap() {
        // Only privileged positives exist; EO gap is undefined for the
        // disadvantaged side only when it has no positives — build a case
        // where every assignment keeps a large defined gap.
        let base = cell(cm(0, 0, 0, 10), cm(0, 0, 10, 0));
        let out = search(&base, &[], FairnessMetric::EqualOpportunity, 0.05, 100);
        assert!(!out.constraint_met);
        assert!(out.optimal, "space exhausted, not budget-limited");
        assert!(out.gap.is_some_and(|g| g > 0.9));
    }

    #[test]
    fn budget_exhaustion_degrades_gracefully() {
        let (base, cells) = biased_cells();
        let out = search(&base, &cells, FairnessMetric::EqualOpportunity, 0.0, 1);
        assert!(!out.optimal, "one expansion cannot prove optimality here");
        assert_eq!(out.actions.len(), cells.len(), "fallback is complete");
    }

    #[test]
    fn deterministic_across_runs() {
        let (base, cells) = biased_cells();
        let a = search(&base, &cells, FairnessMetric::EqualOpportunity, 0.2, 100_000);
        let b = search(&base, &cells, FairnessMetric::EqualOpportunity, 0.2, 100_000);
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.errors, b.errors);
        assert_eq!(a.nodes_expanded, b.nodes_expanded);
    }
}
