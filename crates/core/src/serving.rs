//! Serving-time model training.
//!
//! The study pipeline ([`crate::pipeline`]) trains thousands of throwaway
//! models to score cleaning configurations; a *serving* model is the
//! opposite: one tuned classifier per (dataset, model kind), trained once
//! and then applied to unlabeled rows arriving after training. The
//! training-time [`FeatureEncoder`] travels with the classifier so
//! serving-time rows are standardised and one-hot encoded exactly like the
//! training data — never re-fit on incoming data.

use crate::config::{RectifySpec, StudyScale};
use crate::pipeline::sample_split;
use datasets::{DatasetId, DatasetSpec};
use demodq_rectify::{rectify_classifier, RectifyOptions};
use fairness::{group_confusions, FairnessMetric, GroupSpec};
use mlcore::{accuracy, tune_and_fit, Classifier, ModelKind};
use tabular::{DataFrame, FeatureEncoder, Result};

/// Pre/post-rectification fairness gap of one group spec, measured on the
/// held-out test split. `None` means the metric was undefined for that
/// group on this split (e.g. no positives in one group).
#[derive(Debug, Clone, PartialEq)]
pub struct RectificationGap {
    /// Group spec label, e.g. `sex` or `sex*age`.
    pub group: String,
    /// Absolute disparity before any leaf was edited.
    pub pre: Option<f64>,
    /// Absolute disparity of the served (rectified) classifier.
    pub post: Option<f64>,
}

/// Summary of the post-training rectification applied to a served tree
/// classifier. Absent for model families without editable decision
/// regions (log-reg, kNN).
#[derive(Debug, Clone, PartialEq)]
pub struct ServingRectification {
    /// The fairness metric the rectifier constrained.
    pub metric: FairnessMetric,
    /// The constraint threshold.
    pub epsilon: f64,
    /// Number of leaf edits applied.
    pub n_edits: usize,
    /// Whether the constraint held on the rectifier's own validation data
    /// (the training split) after editing.
    pub constraint_met: bool,
    /// Test accuracy of the classifier before rectification; compare with
    /// [`ServingModel::test_accuracy`], which describes the served
    /// (rectified) classifier.
    pub pre_test_accuracy: f64,
    /// Pre/post gaps on the held-out test split, one entry per group spec.
    pub gaps: Vec<RectificationGap>,
}

/// Training-time fairness reference point for one group spec: the served
/// classifier's disparities on the held-out test split. The serving
/// tier's sliding-window drift telemetry compares live-traffic windows
/// against these values.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineDisparity {
    /// Group spec label, e.g. `sex` or `sex*age`.
    pub group: String,
    /// Absolute predictive-parity disparity; `None` when undefined on the
    /// test split.
    pub predictive_parity: Option<f64>,
    /// Absolute equal-opportunity disparity; `None` when undefined.
    pub equal_opportunity: Option<f64>,
}

/// A tuned classifier packaged with everything needed to serve it: the
/// fitted feature encoder, the training frame (for fitting detectors with
/// train-time statistics), and the dataset's fairness group specs.
pub struct ServingModel {
    /// The dataset the model was trained on.
    pub dataset: DatasetId,
    /// The model family.
    pub model: ModelKind,
    /// Feature encoder fitted on the training split (with missing
    /// indicators, so serving rows may have missing values).
    pub encoder: FeatureEncoder,
    /// The tuned, refit classifier.
    pub classifier: Box<dyn Classifier>,
    /// Winning hyperparameters (CleanML `best_params` formatting).
    pub best_params: String,
    /// Mean validation accuracy of the winning hyperparameters.
    pub val_accuracy: f64,
    /// Accuracy on the held-out test split.
    pub test_accuracy: f64,
    /// The training split; detectors for incoming batches are fitted on
    /// this so detection thresholds reflect train-time statistics.
    pub train: DataFrame,
    /// Single-attribute (and, where defined, intersectional) fairness
    /// group specs of the dataset.
    pub groups: Vec<GroupSpec>,
    /// Post-training rectification summary; `Some` exactly when the
    /// classifier is a tree family and its leaves were searched.
    pub rectification: Option<ServingRectification>,
    /// Test-split disparities of the classifier actually served (post
    /// rectification where applicable), one entry per group spec — the
    /// baseline the live drift telemetry measures against.
    pub baseline_disparities: Vec<BaselineDisparity>,
}

impl ServingModel {
    /// The dataset's declarative spec.
    pub fn spec(&self) -> DatasetSpec {
        self.dataset.spec()
    }

    /// Predicts 0/1 labels for the rows of `frame`.
    ///
    /// The frame needs only the encoder's feature columns — no label, no
    /// sensitive attributes; missing values are allowed.
    pub fn predict_frame(&self, frame: &DataFrame) -> Result<Vec<u8>> {
        Ok(self.classifier.predict(&self.encoder.transform(frame)?))
    }

    /// Predicts 0/1 labels and reports how many rows carried a category
    /// the encoder never saw at fit time (those cells one-hot to all
    /// zeros, silently shifting the feature distribution — callers should
    /// surface the count instead of swallowing it).
    pub fn predict_frame_with_report(
        &self,
        frame: &DataFrame,
    ) -> Result<(Vec<u8>, tabular::encode::TransformReport)> {
        let (x, report) = self.encoder.transform_with_report(frame)?;
        Ok((self.classifier.predict(&x), report))
    }

    /// Predicts positive-class probabilities for the rows of `frame`.
    pub fn predict_proba_frame(&self, frame: &DataFrame) -> Result<Vec<f64>> {
        Ok(self.classifier.predict_proba(&self.encoder.transform(frame)?))
    }
}

/// Trains one serving model: generate the dataset pool, take one
/// train/test split at `scale`, tune hyperparameters by cross-validation
/// on the training split, refit, and score on the held-out test split.
///
/// Tree-family classifiers are additionally **rectified** before serving:
/// their leaves are searched (branch-and-bound, see [`demodq_rectify`])
/// for the minimum-error set of label flips that brings the default
/// [`RectifySpec`] constraint within epsilon on the training split, using
/// the dataset's first group spec. Pre/post fairness gaps for *every*
/// group spec are then measured on the held-out test split and reported in
/// [`ServingModel::rectification`]; `test_accuracy` always describes the
/// classifier actually served.
pub fn train_serving_model(
    dataset: DatasetId,
    model: ModelKind,
    scale: &StudyScale,
    seed: u64,
) -> Result<ServingModel> {
    let pool = dataset.generate_store(scale.pool_size, seed)?;
    let (train, test) = sample_split(&pool, scale, seed ^ 0x5EED_CAFE)?;
    let encoder = FeatureEncoder::fit(&train, true)?;
    let x_train = encoder.transform(&train)?;
    let y_train = train.labels()?;
    let tuned = tune_and_fit(model, &x_train, &y_train, scale.cv_folds, seed);
    let spec = dataset.spec();
    let mut groups = spec.single_attribute_specs();
    if let Some(inter) = spec.intersectional_spec() {
        groups.push(inter);
    }

    let x_test = encoder.transform(&test)?;
    let y_test = test.labels()?;
    let mut classifier = tuned.model;
    let pre_preds = classifier.predict(&x_test);
    let rect_spec = RectifySpec::default();
    let opts = RectifyOptions {
        metric: rect_spec.metric,
        epsilon: rect_spec.epsilon,
        max_nodes: rect_spec.max_nodes,
        ..RectifyOptions::default()
    };
    let report = match groups.first() {
        Some(gs) => {
            let membership = gs.evaluate(&train)?;
            rectify_classifier(classifier.as_mut(), &x_train, &y_train, &membership, &opts)
        }
        None => None,
    };
    let rectification = match report {
        Some(report) => {
            let post_preds = classifier.predict(&x_test);
            let mut gaps = Vec::with_capacity(groups.len());
            for gs in &groups {
                let membership = gs.evaluate(&test)?;
                gaps.push(RectificationGap {
                    group: gs.label(),
                    pre: opts
                        .metric
                        .absolute_disparity(&group_confusions(&y_test, &pre_preds, &membership)),
                    post: opts
                        .metric
                        .absolute_disparity(&group_confusions(&y_test, &post_preds, &membership)),
                });
            }
            Some(ServingRectification {
                metric: opts.metric,
                epsilon: opts.epsilon,
                n_edits: report.edits.len(),
                constraint_met: report.constraint_met,
                pre_test_accuracy: accuracy(&y_test, &pre_preds),
                gaps,
            })
        }
        None => None,
    };
    let served_preds = classifier.predict(&x_test);
    let test_accuracy = accuracy(&y_test, &served_preds);
    let mut baseline_disparities = Vec::with_capacity(groups.len());
    for gs in &groups {
        let membership = gs.evaluate(&test)?;
        let gc = group_confusions(&y_test, &served_preds, &membership);
        baseline_disparities.push(BaselineDisparity {
            group: gs.label(),
            predictive_parity: FairnessMetric::PredictiveParity.absolute_disparity(&gc),
            equal_opportunity: FairnessMetric::EqualOpportunity.absolute_disparity(&gc),
        });
    }
    Ok(ServingModel {
        dataset,
        model,
        encoder,
        classifier,
        best_params: tuned.best_spec.params_string(),
        val_accuracy: tuned.val_accuracy,
        test_accuracy,
        train,
        groups,
        rectification,
        baseline_disparities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_and_predicts_unlabeled_rows() {
        let scale = StudyScale::smoke();
        let served =
            train_serving_model(DatasetId::German, ModelKind::LogReg, &scale, 7).unwrap();
        assert_eq!(served.dataset, DatasetId::German);
        assert!(served.test_accuracy > 0.5, "accuracy {}", served.test_accuracy);
        assert!(!served.best_params.is_empty());
        assert!(!served.groups.is_empty());

        // Serve rows that carry only the feature columns.
        let batch = DatasetId::German.generate(40, 99).unwrap();
        let preds = served.predict_frame(&batch).unwrap();
        assert_eq!(preds.len(), 40);
        assert!(preds.iter().all(|&p| p <= 1));
        let probas = served.predict_proba_frame(&batch).unwrap();
        assert!(probas.iter().all(|p| (0.0..=1.0).contains(p)));
        // Linear models have no editable decision regions.
        assert!(served.rectification.is_none());
        // Every group spec carries a drift baseline from the test split.
        assert_eq!(served.baseline_disparities.len(), served.groups.len());
        for (b, gs) in served.baseline_disparities.iter().zip(&served.groups) {
            assert_eq!(b.group, gs.label());
            for v in [b.predictive_parity, b.equal_opportunity].into_iter().flatten() {
                assert!((0.0..=1.0).contains(&v), "baseline {v} out of range");
            }
        }
    }

    #[test]
    fn tree_serving_models_are_rectified_with_test_split_gaps() {
        let scale = StudyScale::smoke();
        let served =
            train_serving_model(DatasetId::German, ModelKind::DecisionTree, &scale, 7).unwrap();
        let rect = served.rectification.as_ref().expect("trees are rectified before serving");
        assert_eq!(rect.gaps.len(), served.groups.len());
        for (gap, gs) in rect.gaps.iter().zip(&served.groups) {
            assert_eq!(gap.group, gs.label());
            for g in [gap.pre, gap.post].into_iter().flatten() {
                assert!((0.0..=1.0).contains(&g), "gap {g} out of range for {}", gap.group);
            }
        }
        assert!((0.0..=1.0).contains(&rect.pre_test_accuracy));
        // The served classifier reflects the edits: predictions still work.
        let batch = DatasetId::German.generate(25, 99).unwrap();
        assert_eq!(served.predict_frame(&batch).unwrap().len(), 25);
    }
}
