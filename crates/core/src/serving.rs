//! Serving-time model training.
//!
//! The study pipeline ([`crate::pipeline`]) trains thousands of throwaway
//! models to score cleaning configurations; a *serving* model is the
//! opposite: one tuned classifier per (dataset, model kind), trained once
//! and then applied to unlabeled rows arriving after training. The
//! training-time [`FeatureEncoder`] travels with the classifier so
//! serving-time rows are standardised and one-hot encoded exactly like the
//! training data — never re-fit on incoming data.

use crate::config::StudyScale;
use crate::pipeline::sample_split;
use datasets::{DatasetId, DatasetSpec};
use fairness::GroupSpec;
use mlcore::{accuracy, tune_and_fit, Classifier, ModelKind};
use tabular::{DataFrame, FeatureEncoder, Result};

/// A tuned classifier packaged with everything needed to serve it: the
/// fitted feature encoder, the training frame (for fitting detectors with
/// train-time statistics), and the dataset's fairness group specs.
pub struct ServingModel {
    /// The dataset the model was trained on.
    pub dataset: DatasetId,
    /// The model family.
    pub model: ModelKind,
    /// Feature encoder fitted on the training split (with missing
    /// indicators, so serving rows may have missing values).
    pub encoder: FeatureEncoder,
    /// The tuned, refit classifier.
    pub classifier: Box<dyn Classifier>,
    /// Winning hyperparameters (CleanML `best_params` formatting).
    pub best_params: String,
    /// Mean validation accuracy of the winning hyperparameters.
    pub val_accuracy: f64,
    /// Accuracy on the held-out test split.
    pub test_accuracy: f64,
    /// The training split; detectors for incoming batches are fitted on
    /// this so detection thresholds reflect train-time statistics.
    pub train: DataFrame,
    /// Single-attribute (and, where defined, intersectional) fairness
    /// group specs of the dataset.
    pub groups: Vec<GroupSpec>,
}

impl ServingModel {
    /// The dataset's declarative spec.
    pub fn spec(&self) -> DatasetSpec {
        self.dataset.spec()
    }

    /// Predicts 0/1 labels for the rows of `frame`.
    ///
    /// The frame needs only the encoder's feature columns — no label, no
    /// sensitive attributes; missing values are allowed.
    pub fn predict_frame(&self, frame: &DataFrame) -> Result<Vec<u8>> {
        Ok(self.classifier.predict(&self.encoder.transform(frame)?))
    }

    /// Predicts positive-class probabilities for the rows of `frame`.
    pub fn predict_proba_frame(&self, frame: &DataFrame) -> Result<Vec<f64>> {
        Ok(self.classifier.predict_proba(&self.encoder.transform(frame)?))
    }
}

/// Trains one serving model: generate the dataset pool, take one
/// train/test split at `scale`, tune hyperparameters by cross-validation
/// on the training split, refit, and score on the held-out test split.
pub fn train_serving_model(
    dataset: DatasetId,
    model: ModelKind,
    scale: &StudyScale,
    seed: u64,
) -> Result<ServingModel> {
    let pool = dataset.generate(scale.pool_size, seed)?;
    let (train, test) = sample_split(&pool, scale, seed ^ 0x5EED_CAFE)?;
    let encoder = FeatureEncoder::fit(&train, true)?;
    let x_train = encoder.transform(&train)?;
    let y_train = train.labels()?;
    let tuned = tune_and_fit(model, &x_train, &y_train, scale.cv_folds, seed);
    let preds = tuned.model.predict(&encoder.transform(&test)?);
    let test_accuracy = accuracy(&test.labels()?, &preds);
    let spec = dataset.spec();
    let mut groups = spec.single_attribute_specs();
    if let Some(inter) = spec.intersectional_spec() {
        groups.push(inter);
    }
    Ok(ServingModel {
        dataset,
        model,
        encoder,
        classifier: tuned.model,
        best_params: tuned.best_spec.params_string(),
        val_accuracy: tuned.val_accuracy,
        test_accuracy,
        train,
        groups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_and_predicts_unlabeled_rows() {
        let scale = StudyScale::smoke();
        let served =
            train_serving_model(DatasetId::German, ModelKind::LogReg, &scale, 7).unwrap();
        assert_eq!(served.dataset, DatasetId::German);
        assert!(served.test_accuracy > 0.5, "accuracy {}", served.test_accuracy);
        assert!(!served.best_params.is_empty());
        assert!(!served.groups.is_empty());

        // Serve rows that carry only the feature columns.
        let batch = DatasetId::German.generate(40, 99).unwrap();
        let preds = served.predict_frame(&batch).unwrap();
        assert_eq!(preds.len(), 40);
        assert!(preds.iter().all(|&p| p <= 1));
        let probas = served.predict_proba_frame(&batch).unwrap();
        assert!(probas.iter().all(|p| (0.0..=1.0).contains(p)));
    }
}
