//! The Figure 3 evaluation pipeline.
//!
//! For one experimental configuration and one `(split seed, model seed)`
//! pair:
//!
//! 1. sample records from the dataset pool and split into train/test;
//! 2. keep the raw data as the **dirty** version and apply the repair to
//!    obtain the **repaired** version (with the paper's per-error-type
//!    dirty semantics — see below);
//! 3. train a tuned classifier on each version's training set;
//! 4. predict on the matching test set;
//! 5. score both models on accuracy and group-wise confusion matrices.
//!
//! Dirty-baseline semantics (paper Section V):
//! * **missing values** — classifiers cannot ingest NaN, so the dirty
//!   version *drops* incomplete training rows and imputes the test set
//!   with mean/dummy (one cannot drop records at prediction time);
//! * **outliers / mislabels** — the dirty version keeps the data as-is;
//!   missing values are removed beforehand for both arms;
//! * test labels are **never** flipped.

use crate::config::{RectifySpec, RepairSpec, StudyScale};
use cleaning::detect::DetectorKind;
use cleaning::repair::{CatImpute, LabelRepair, MissingRepair, NumImpute};
use demodq_rectify::{rectify_classifier, RectificationReport, RectifyOptions};
use fairness::{group_confusions, FairnessMetric, GroupConfusions, GroupSpec, Groups};
use mlcore::{f1_score, tune_and_fit, Classifier, ModelKind, TunedModel};
use tabular::{
    split::train_test_split, BlockStore, DataFrame, DenseMatrix, FeatureEncoder, Result, Rng64,
    TabularError,
};

/// Salt folded into the model seed to derive the rectification
/// validation carve-out, keeping it decoupled from every other stream.
const VALIDATION_SALT: u64 = 0x7EC7_1F1E;

/// Scores of one trained model on its test set.
#[derive(Debug, Clone)]
pub struct ArmEvaluation {
    /// Test-set accuracy.
    pub test_accuracy: f64,
    /// Test-set F1.
    pub test_f1: f64,
    /// Mean validation accuracy of the winning hyperparameters.
    pub val_accuracy: f64,
    /// Training accuracy of the refit model.
    pub train_accuracy: f64,
    /// Winning hyperparameters (CleanML's `best_params`).
    pub best_params: String,
    /// Group-wise confusion matrices per group spec, keyed by the spec's
    /// label (e.g. `sex`, `sex*age`).
    pub group_confusions: Vec<(String, GroupConfusions)>,
}

impl ArmEvaluation {
    /// The confusion pair for a group label, if evaluated.
    pub fn confusions_for(&self, group_label: &str) -> Option<&GroupConfusions> {
        self.group_confusions
            .iter()
            .find(|(label, _)| label == group_label)
            .map(|(_, gc)| gc)
    }
}

/// The paired dirty/repaired evaluations of one run.
#[derive(Debug, Clone)]
pub struct RunPair {
    /// Scores of the model trained/evaluated on dirty data.
    pub dirty: ArmEvaluation,
    /// Scores of the model trained/evaluated on repaired data.
    pub repaired: ArmEvaluation,
}

/// One prepared (train, test) arm, encoded once and reusable across every
/// model kind and model seed evaluated on it.
///
/// Encoding (standardise + one-hot + missing indicators) and group-mask
/// evaluation are pure functions of the frames, so hoisting them out of
/// the per-(model, seed) loop changes no scores — it only removes
/// redundant work.
#[derive(Debug, Clone)]
pub struct EncodedArm {
    /// Encoded training features.
    pub x_train: DenseMatrix,
    /// Training labels.
    pub y_train: Vec<u8>,
    /// Encoded test features (same encoder as `x_train`).
    pub x_test: DenseMatrix,
    /// Test labels.
    pub y_test: Vec<u8>,
    /// Per-group-spec membership masks over the test rows, keyed by the
    /// spec's label (e.g. `sex`, `sex*age`).
    pub groups: Vec<(String, Groups)>,
    /// The same group specs evaluated over the **training** rows — the
    /// substrate of the rectification validation carve-out (model-side
    /// repair must never look at the test split).
    pub train_groups: Vec<(String, Groups)>,
}

/// Encodes one prepared (train, test) pair: fits the feature encoder on
/// `train`, transforms both frames, and evaluates every group spec on the
/// test frame.
pub fn encode_arm(train: &DataFrame, test: &DataFrame, groups: &[GroupSpec]) -> Result<EncodedArm> {
    let y_train = train.labels()?;
    let y_test = test.labels()?;
    let encoder = FeatureEncoder::fit(train, true)?;
    let x_train = encoder.transform(train)?;
    let x_test = encoder.transform(test)?;
    let mut masks = Vec::with_capacity(groups.len());
    let mut train_masks = Vec::with_capacity(groups.len());
    for spec in groups {
        masks.push((spec.label(), spec.evaluate(test)?));
        train_masks.push((spec.label(), spec.evaluate(train)?));
    }
    Ok(EncodedArm { x_train, y_train, x_test, y_test, groups: masks, train_groups: train_masks })
}

/// Scores a fitted unit model's test predictions against an arm.
fn score_tuned(arm: &EncodedArm, tuned: &TunedModel, preds: &[u8]) -> ArmEvaluation {
    let accuracy = mlcore::accuracy(&arm.y_test, preds);
    let f1 = f1_score(&arm.y_test, preds);
    let per_group = arm
        .groups
        .iter()
        .map(|(label, masks)| (label.clone(), group_confusions(&arm.y_test, preds, masks)))
        .collect();
    ArmEvaluation {
        test_accuracy: accuracy,
        test_f1: f1,
        val_accuracy: tuned.val_accuracy,
        train_accuracy: tuned.train_accuracy,
        best_params: tuned.best_spec.params_string(),
        group_confusions: per_group,
    }
}

/// Cross-validates and refits one unit's model on the arm's training
/// matrix. Split out from [`evaluate_arm_encoded`] so the runner can
/// rectify the fitted model (and time that phase separately) before
/// scoring it.
pub fn fit_unit(arm: &EncodedArm, model: ModelKind, cv_folds: usize, seed: u64) -> TunedModel {
    tune_and_fit(model, &arm.x_train, &arm.y_train, cv_folds, seed)
}

/// Trains a tuned model of `model` kind on a pre-encoded arm and scores
/// it on the arm's test matrix.
pub fn evaluate_arm_encoded(
    arm: &EncodedArm,
    model: ModelKind,
    cv_folds: usize,
    seed: u64,
) -> ArmEvaluation {
    let tuned = fit_unit(arm, model, cv_folds, seed);
    let preds = tuned.model.predict(&arm.x_test);
    score_tuned(arm, &tuned, &preds)
}

/// Trains and scores one **evaluation unit** — the scheduling atom of the
/// study grid: a single (encoded arm, model, seed) fit — returning the
/// unit's test accuracy and its absolute disparities per (group, metric)
/// in `group_labels` × `metrics` order (NaN when a disparity is
/// undefined for the split).
///
/// Everything a unit's result depends on is in its arguments; nothing is
/// read from shared mutable state, which is what lets the runner execute
/// units in any order on any worker and still assemble byte-identical
/// studies.
pub fn evaluate_unit(
    arm: &EncodedArm,
    model: ModelKind,
    cv_folds: usize,
    seed: u64,
    group_labels: &[(String, bool)],
    metrics: &[FairnessMetric],
) -> (f64, Vec<f64>) {
    let tuned = fit_unit(arm, model, cv_folds, seed);
    score_unit(arm, &tuned, group_labels, metrics)
}

/// Scores a fitted (and possibly rectified) unit model: test accuracy
/// plus absolute disparities in `group_labels` × `metrics` order.
pub fn score_unit(
    arm: &EncodedArm,
    tuned: &TunedModel,
    group_labels: &[(String, bool)],
    metrics: &[FairnessMetric],
) -> (f64, Vec<f64>) {
    let preds = tuned.model.predict(&arm.x_test);
    let eval = score_tuned(arm, tuned, &preds);
    let mut disp = Vec::with_capacity(group_labels.len() * metrics.len());
    for (label, _) in group_labels {
        let gc = eval.confusions_for(label);
        for metric in metrics {
            disp.push(gc.and_then(|gc| metric.absolute_disparity(gc)).unwrap_or(f64::NAN));
        }
    }
    (eval.test_accuracy, disp)
}

/// The deterministic validation carve-out rectification evaluates flips
/// against: a ~25% subset of the training rows, derived from the unit's
/// model seed so every unit (and every resume of it) sees the same rows.
pub fn rectification_split(n_rows: usize, seed: u64) -> Vec<usize> {
    if n_rows == 0 {
        return Vec::new();
    }
    let n_val = (n_rows / 4).max(1);
    let mut rng = Rng64::seed_from_u64(seed ^ VALIDATION_SALT);
    let mut idx = rng.sample_indices(n_rows, n_val);
    idx.sort_unstable();
    idx
}

fn take_matrix_rows(x: &DenseMatrix, idx: &[usize]) -> DenseMatrix {
    let cols = x.n_cols();
    let mut data = Vec::with_capacity(idx.len() * cols);
    for &i in idx {
        data.extend_from_slice(x.row(i));
    }
    DenseMatrix::from_vec(idx.len(), cols, data)
}

/// Rectifies a unit's fitted model in place against the arm's validation
/// carve-out, constraining the **first** group spec (the dataset's
/// primary protected attribute). Returns `None` for model families
/// without editable tree structure — those pass through unrectified.
pub fn rectify_unit_model(
    model: &mut dyn Classifier,
    arm: &EncodedArm,
    seed: u64,
    rectify: &RectifySpec,
) -> Option<RectificationReport> {
    let (_, train_groups) = arm.train_groups.first()?;
    let idx = rectification_split(arm.y_train.len(), seed);
    if idx.is_empty() {
        return None;
    }
    let x_val = take_matrix_rows(&arm.x_train, &idx);
    let y_val: Vec<u8> = idx.iter().map(|&i| arm.y_train[i]).collect();
    let groups = Groups {
        privileged: idx.iter().map(|&i| train_groups.privileged[i]).collect(),
        disadvantaged: idx.iter().map(|&i| train_groups.disadvantaged[i]).collect(),
    };
    let opts = RectifyOptions {
        metric: rectify.metric,
        epsilon: rectify.epsilon,
        max_nodes: rectify.max_nodes,
        ..RectifyOptions::default()
    };
    rectify_classifier(model, &x_val, &y_val, &groups, &opts)
}

/// Trains a tuned model of `model` kind on `train` and scores it on
/// `test`, including group-wise confusion matrices for every group spec.
///
/// Thin frame-based wrapper over [`encode_arm`] + [`evaluate_arm_encoded`]
/// for callers that evaluate an arm once (serving, single-shot runs);
/// the study runner encodes each arm once and reuses it across models
/// and seeds.
pub fn evaluate_arm(
    train: &DataFrame,
    test: &DataFrame,
    model: ModelKind,
    groups: &[GroupSpec],
    cv_folds: usize,
    seed: u64,
) -> Result<ArmEvaluation> {
    let arm = encode_arm(train, test, groups)?;
    Ok(evaluate_arm_encoded(&arm, model, cv_folds, seed))
}

/// The default imputer used wherever the *dirty* pipeline is forced to
/// fill test-set missing values: mean for numeric, dummy for categorical.
fn baseline_imputer() -> MissingRepair {
    MissingRepair { num: NumImpute::Mean, cat: CatImpute::Dummy }
}

/// Builds the dirty and repaired train/test frames for a configuration.
///
/// Returns `(dirty_train, dirty_test, repaired_train, repaired_test)`.
pub fn prepare_arms(
    train: &DataFrame,
    test: &DataFrame,
    repair: &RepairSpec,
    seed: u64,
) -> Result<(DataFrame, DataFrame, DataFrame, DataFrame)> {
    match repair {
        RepairSpec::Missing(config) => {
            // Dirty: drop incomplete train rows; impute test (mean/dummy
            // fitted on the complete train rows).
            let dirty_train = train.drop_incomplete_rows()?;
            if dirty_train.n_rows() < 10 {
                return Err(TabularError::InvalidArgument(
                    "dropping incomplete rows leaves too little training data".to_string(),
                ));
            }
            let dirty_imputer = baseline_imputer().fit(&dirty_train)?;
            let dirty_test = dirty_imputer.apply(test)?;
            // Repaired: impute train and test with the configured strategy
            // fitted on the raw train data.
            let fitted = config.fit(train)?;
            let repaired_train = fitted.apply(train)?;
            let repaired_test = fitted.apply(test)?;
            Ok((dirty_train, dirty_test, repaired_train, repaired_test))
        }
        RepairSpec::Outliers { detector, repair } => {
            // Missing values removed beforehand for both arms.
            let (base_train, base_test) = preclean_missing(train, test)?;
            let fitted_detector = detector.fit(&base_train, seed)?;
            let train_report = fitted_detector.detect(&base_train)?;
            let test_report = fitted_detector.detect(&base_test)?;
            let fitted_repair = repair.fit(&base_train, &train_report)?;
            let repaired_train = fitted_repair.apply(&base_train, &train_report)?;
            let repaired_test = fitted_repair.apply(&base_test, &test_report)?;
            Ok((base_train, base_test, repaired_train, repaired_test))
        }
        RepairSpec::Mislabels => {
            let (base_train, base_test) = preclean_missing(train, test)?;
            let detector = DetectorKind::Mislabels.fit(&base_train, seed)?;
            let report = detector.detect(&base_train)?;
            let repaired_train = LabelRepair.apply(&base_train, &report)?;
            // Labels are never flipped on the test set.
            Ok((base_train, base_test.clone(), repaired_train, base_test))
        }
    }
}

/// Removes missing values before outlier/mislabel experiments: drops
/// incomplete training rows, imputes the test set (mean/dummy).
fn preclean_missing(train: &DataFrame, test: &DataFrame) -> Result<(DataFrame, DataFrame)> {
    if train.missing_cells() == 0 && test.missing_cells() == 0 {
        return Ok((train.clone(), test.clone()));
    }
    let clean_train = train.drop_incomplete_rows()?;
    if clean_train.n_rows() < 10 {
        return Err(TabularError::InvalidArgument(
            "dropping incomplete rows leaves too little training data".to_string(),
        ));
    }
    let imputer = baseline_imputer().fit(&clean_train)?;
    let clean_test = imputer.apply(test)?;
    Ok((clean_train, clean_test))
}

/// Samples a run's train/test split from the columnar dataset pool.
///
/// The RNG sequence (index sample, then split seed draw) and the
/// gathered sample are bit-identical to the old dense-frame path:
/// [`BlockStore::take`] reconstructs exactly the cells
/// `DataFrame::take` would copy, so exports do not move.
pub fn sample_split(
    pool: &BlockStore,
    scale: &StudyScale,
    split_seed: u64,
) -> Result<(DataFrame, DataFrame)> {
    let mut rng = Rng64::seed_from_u64(split_seed);
    let rows = rng.sample_indices(pool.n_rows(), scale.sample_size.min(pool.n_rows()));
    let sample = pool.take(&rows)?;
    let (train_idx, test_idx) =
        train_test_split(sample.n_rows(), scale.test_fraction, rng.next_u64())?;
    Ok((sample.take(&train_idx)?, sample.take(&test_idx)?))
}

/// Runs the full Figure 3 pipeline once for one configuration.
pub fn run_configuration_once(
    pool: &BlockStore,
    model: ModelKind,
    repair: &RepairSpec,
    groups: &[GroupSpec],
    scale: &StudyScale,
    split_seed: u64,
    model_seed: u64,
) -> Result<RunPair> {
    let (train, test) = sample_split(pool, scale, split_seed)?;
    let (dirty_train, dirty_test, rep_train, rep_test) =
        prepare_arms(&train, &test, repair, split_seed ^ 0x5EED)?;
    let dirty = evaluate_arm(&dirty_train, &dirty_test, model, groups, scale.cv_folds, model_seed)?;
    let repaired = evaluate_arm(&rep_train, &rep_test, model, groups, scale.cv_folds, model_seed)?;
    Ok(RunPair { dirty, repaired })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleaning::repair::OutlierRepair;
    use datasets::DatasetId;

    fn german_pool() -> BlockStore {
        DatasetId::German.generate_store(900, 42).unwrap()
    }

    fn groups() -> Vec<GroupSpec> {
        let spec = DatasetId::German.spec();
        let mut gs = spec.single_attribute_specs();
        gs.push(spec.intersectional_spec().unwrap());
        gs
    }

    #[test]
    fn sample_split_respects_scale() {
        let pool = german_pool();
        let scale = StudyScale::smoke();
        let (train, test) = sample_split(&pool, &scale, 7).unwrap();
        assert_eq!(train.n_rows() + test.n_rows(), scale.sample_size);
        let expected_test = (scale.sample_size as f64 * scale.test_fraction).round() as usize;
        assert_eq!(test.n_rows(), expected_test);
    }

    #[test]
    fn missing_arms_have_correct_shapes() {
        let pool = german_pool();
        let scale = StudyScale::smoke();
        let (train, test) = sample_split(&pool, &scale, 3).unwrap();
        let repair = RepairSpec::Missing(MissingRepair::all()[0]);
        let (dt, dte, rt, rte) = prepare_arms(&train, &test, &repair, 1).unwrap();
        // Dirty train drops incomplete rows.
        assert!(dt.n_rows() <= train.n_rows());
        assert_eq!(dt.missing_cells(), 0);
        // Dirty test keeps all rows but is imputed.
        assert_eq!(dte.n_rows(), test.n_rows());
        assert_eq!(dte.missing_cells(), 0);
        // Repaired arms keep all rows, fully imputed.
        assert_eq!(rt.n_rows(), train.n_rows());
        assert_eq!(rt.missing_cells(), 0);
        assert_eq!(rte.n_rows(), test.n_rows());
        assert_eq!(rte.missing_cells(), 0);
    }

    #[test]
    fn outlier_arms_keep_rows_and_change_cells() {
        let pool = DatasetId::Credit.generate_store(900, 7).unwrap();
        let scale = StudyScale::smoke();
        let (train, test) = sample_split(&pool, &scale, 5).unwrap();
        let repair = RepairSpec::Outliers {
            detector: DetectorKind::OutliersIqr { k: 1.5 },
            repair: OutlierRepair::all()[0],
        };
        let (dt, dte, rt, rte) = prepare_arms(&train, &test, &repair, 2).unwrap();
        assert_eq!(dt.n_rows(), rt.n_rows());
        assert_eq!(dte.n_rows(), rte.n_rows());
        // The repaired train differs from the dirty train (outliers exist
        // in credit by construction).
        let dirty_util = dt.numeric("revolving_utilization").unwrap();
        let rep_util = rt.numeric("revolving_utilization").unwrap();
        assert!(dirty_util.iter().zip(rep_util).any(|(a, b)| a != b));
        // Labels are identical in both arms.
        assert_eq!(dt.labels().unwrap(), rt.labels().unwrap());
    }

    #[test]
    fn mislabel_arms_flip_train_labels_only() {
        let pool = german_pool();
        let scale = StudyScale::smoke();
        let (train, test) = sample_split(&pool, &scale, 11).unwrap();
        let (dt, dte, rt, rte) = prepare_arms(&train, &test, &RepairSpec::Mislabels, 3).unwrap();
        let flipped = dt
            .labels()
            .unwrap()
            .iter()
            .zip(&rt.labels().unwrap())
            .filter(|(a, b)| a != b)
            .count();
        assert!(flipped > 0, "confident learning found no mislabels");
        // Test sets are byte-identical across arms.
        assert_eq!(dte, rte);
    }

    #[test]
    fn full_run_produces_paired_scores() {
        let pool = german_pool();
        let scale = StudyScale::smoke();
        let pair = run_configuration_once(
            &pool,
            ModelKind::LogReg,
            &RepairSpec::Missing(MissingRepair::all()[0]),
            &groups(),
            &scale,
            21,
            4,
        )
        .unwrap();
        for arm in [&pair.dirty, &pair.repaired] {
            assert!(arm.test_accuracy > 0.4, "accuracy {}", arm.test_accuracy);
            assert!(arm.test_accuracy <= 1.0);
            assert_eq!(arm.group_confusions.len(), 3); // age, sex, age*sex
            assert!(arm.best_params.contains('='));
            // Confusion counts cover the full test set for partitioning
            // (single-attribute) specs.
            let total = arm.confusions_for("age").unwrap().total();
            assert_eq!(total as usize, 113); // 450 * 0.25 rounded
        }
    }

    #[test]
    fn rectification_split_is_a_deterministic_quarter() {
        let a = rectification_split(400, 9);
        let b = rectification_split(400, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|&i| i < 400));
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted and unique");
        assert_ne!(a, rectification_split(400, 10), "seed-dependent");
        assert!(rectification_split(0, 9).is_empty());
        assert_eq!(rectification_split(3, 9).len(), 1, "tiny splits keep one row");
    }

    #[test]
    fn rectify_unit_model_edits_trees_and_skips_logreg() {
        let pool = german_pool();
        let scale = StudyScale::smoke();
        let (train, test) = sample_split(&pool, &scale, 13).unwrap();
        let arm = encode_arm(&train, &test, &groups()).unwrap();
        assert_eq!(arm.train_groups.len(), 3);
        let spec = RectifySpec {
            epsilon: 0.0,
            ..RectifySpec::default()
        };
        let mut tree = fit_unit(&arm, ModelKind::DecisionTree, scale.cv_folds, 4);
        let report = rectify_unit_model(tree.model.as_mut(), &arm, 4, &spec);
        let report = report.expect("decision trees are rectifiable");
        assert_eq!(report.model, "decision-tree");
        // Scoring the rectified model still produces well-formed scores.
        let labels = vec![("sex".to_string(), false)];
        let (acc, disp) = score_unit(&arm, &tree, &labels, &[FairnessMetric::EqualOpportunity]);
        assert!(acc > 0.0 && acc <= 1.0);
        assert_eq!(disp.len(), 1);
        let mut logreg = fit_unit(&arm, ModelKind::LogReg, scale.cv_folds, 4);
        assert!(rectify_unit_model(logreg.model.as_mut(), &arm, 4, &spec).is_none());
    }

    #[test]
    fn run_is_deterministic() {
        let pool = german_pool();
        let scale = StudyScale::smoke();
        let run = |sseed, mseed| {
            run_configuration_once(
                &pool,
                ModelKind::LogReg,
                &RepairSpec::Mislabels,
                &groups(),
                &scale,
                sseed,
                mseed,
            )
            .unwrap()
        };
        let a = run(5, 6);
        let b = run(5, 6);
        assert_eq!(a.dirty.test_accuracy, b.dirty.test_accuracy);
        assert_eq!(a.repaired.test_accuracy, b.repaired.test_accuracy);
        assert_eq!(a.dirty.group_confusions, b.dirty.group_confusions);
    }
}
