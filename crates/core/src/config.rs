//! Experimental configurations, study scales, and durable-execution
//! options.

use cleaning::detect::DetectorKind;
use cleaning::repair::{MissingRepair, OutlierRepair};
use datasets::{DatasetId, ErrorType};
use fairness::FairnessMetric;
use mlcore::ModelKind;
use std::path::PathBuf;
use std::time::Duration;

/// Which side of the pipeline a study's repairs act on.
///
/// The paper's protocol repairs the **data** (clean, refit, compare);
/// `demodq-rectify` adds the **model** side (train on dirty data, then
/// edit the trained model's leaves until a fairness constraint holds).
/// `Both` composes them: clean the data *and* rectify the refit model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairSide {
    /// Repair the training data only (the paper's protocol).
    Data,
    /// Leave the data dirty and rectify the trained model only.
    Model,
    /// Clean the data, then rectify the model trained on it.
    Both,
}

impl RepairSide {
    /// All sides, in study-grid order.
    pub fn all() -> [RepairSide; 3] {
        [RepairSide::Data, RepairSide::Model, RepairSide::Both]
    }

    /// Stable name used in exports and journal fingerprints.
    pub fn name(&self) -> &'static str {
        match self {
            RepairSide::Data => "data",
            RepairSide::Model => "model",
            RepairSide::Both => "both",
        }
    }

    /// Parses a side name.
    pub fn parse(name: &str) -> Option<RepairSide> {
        match name {
            "data" => Some(RepairSide::Data),
            "model" => Some(RepairSide::Model),
            "both" => Some(RepairSide::Both),
            _ => None,
        }
    }

    /// Whether units on this side rectify the trained model.
    pub fn rectifies(&self) -> bool {
        !matches!(self, RepairSide::Data)
    }

    /// Whether the "repaired" arm of a unit uses the cleaned data (when
    /// false, the repaired arm retrains on the dirty frame and relies on
    /// rectification alone).
    pub fn repairs_data(&self) -> bool {
        !matches!(self, RepairSide::Model)
    }
}

/// The fairness constraint model-side rectification restores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RectifySpec {
    /// Constrained metric (absolute validation gap).
    pub metric: FairnessMetric,
    /// Gap tolerance.
    pub epsilon: f64,
    /// Branch-and-bound node budget per rectification.
    pub max_nodes: usize,
}

impl Default for RectifySpec {
    fn default() -> RectifySpec {
        RectifySpec {
            metric: FairnessMetric::EqualOpportunity,
            epsilon: 0.05,
            max_nodes: 20_000,
        }
    }
}

/// A fully specified cleaning intervention: which errors are detected and
/// how flagged tuples are repaired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RepairSpec {
    /// Impute missing values (detector is trivially `missing_values`).
    Missing(MissingRepair),
    /// Detect outliers with `detector` and replace flagged cells.
    Outliers {
        /// One of the three outlier detectors.
        detector: DetectorKind,
        /// Replacement statistic.
        repair: OutlierRepair,
    },
    /// Detect mislabels with confident learning and flip flagged labels.
    Mislabels,
}

impl RepairSpec {
    /// The error type this intervention addresses.
    pub fn error_type(&self) -> ErrorType {
        match self {
            RepairSpec::Missing(_) => ErrorType::MissingValues,
            RepairSpec::Outliers { .. } => ErrorType::Outliers,
            RepairSpec::Mislabels => ErrorType::Mislabels,
        }
    }

    /// CleanML-style name, e.g. `impute_mean_dummy`,
    /// `outliers-iqr/impute_median`, `flip_labels`.
    pub fn name(&self) -> String {
        match self {
            RepairSpec::Missing(r) => r.name(),
            RepairSpec::Outliers { detector, repair } => {
                format!("{}/{}", detector.name(), repair.name())
            }
            RepairSpec::Mislabels => "flip_labels".to_string(),
        }
    }

    /// The detection strategy's name.
    pub fn detector_name(&self) -> &'static str {
        match self {
            RepairSpec::Missing(_) => "missing_values",
            RepairSpec::Outliers { detector, .. } => detector.name(),
            RepairSpec::Mislabels => "mislabels",
        }
    }

    /// All repair variants the study sweeps for an error type:
    /// 6 imputation combos for missing values, 3 detectors × 3 replacement
    /// statistics for outliers, and label flipping for mislabels.
    pub fn variants_for(error: ErrorType) -> Vec<RepairSpec> {
        match error {
            ErrorType::MissingValues => {
                MissingRepair::all().into_iter().map(RepairSpec::Missing).collect()
            }
            ErrorType::Outliers => {
                let mut out = Vec::new();
                for detector in DetectorKind::outlier_detectors() {
                    for repair in OutlierRepair::all() {
                        out.push(RepairSpec::Outliers { detector, repair });
                    }
                }
                out
            }
            ErrorType::Mislabels => vec![RepairSpec::Mislabels],
        }
    }
}

/// One experimental configuration: dataset × model × cleaning intervention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// The dataset.
    pub dataset: DatasetId,
    /// The model family.
    pub model: ModelKind,
    /// The cleaning intervention.
    pub repair: RepairSpec,
}

impl ExperimentConfig {
    /// CleanML-style configuration key, e.g.
    /// `german/missing_values/impute_mean_dummy/log-reg`.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.dataset.name(),
            self.repair.error_type().name(),
            self.repair.name(),
            self.model.name()
        )
    }
}

/// How big a study run is. The paper's full study uses 15,000-record
/// samples, 20 splits and 5 model seeds per configuration (100 paired
/// scores); the presets keep the identical protocol at reduced density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudyScale {
    /// Rows generated per dataset pool (sampling source).
    pub pool_size: usize,
    /// Rows sampled from the pool per run (paper: 15,000).
    pub sample_size: usize,
    /// Train/test splits per configuration (paper: 20).
    pub n_splits: usize,
    /// Model instances with different seeds per split (paper: 5).
    pub n_model_seeds: usize,
    /// Test fraction of each split.
    pub test_fraction: f64,
    /// Cross-validation folds for hyperparameter tuning (paper: 5).
    pub cv_folds: usize,
}

impl StudyScale {
    /// Minimal scale for unit/integration tests (seconds).
    pub fn smoke() -> StudyScale {
        StudyScale {
            pool_size: 900,
            sample_size: 450,
            n_splits: 2,
            n_model_seeds: 2,
            test_fraction: 0.25,
            cv_folds: 3,
        }
    }

    /// Laptop-scale default for the benchmark binaries (minutes).
    pub fn default_scale() -> StudyScale {
        StudyScale {
            pool_size: 6_000,
            sample_size: 2_000,
            n_splits: 6,
            n_model_seeds: 3,
            test_fraction: 0.25,
            cv_folds: 5,
        }
    }

    /// The paper's protocol (hours; 100 paired scores per configuration).
    pub fn full() -> StudyScale {
        StudyScale {
            pool_size: 40_000,
            sample_size: 15_000,
            n_splits: 20,
            n_model_seeds: 5,
            test_fraction: 0.25,
            cv_folds: 5,
        }
    }

    /// Million-row study tier: pools are one full block
    /// (`tabular::ROWS_PER_BLOCK` rows) per dataset, exercising the
    /// columnar substrate's bounded-memory streaming. Split/seed density
    /// is kept low — the point is data volume, not score density.
    pub fn large() -> StudyScale {
        StudyScale {
            pool_size: 1 << 20,
            sample_size: 4_000,
            n_splits: 1,
            n_model_seeds: 1,
            test_fraction: 0.25,
            cv_folds: 3,
        }
    }

    /// Parses a scale name (`smoke` / `default` / `full` / `large`).
    pub fn parse(name: &str) -> Option<StudyScale> {
        match name {
            "smoke" => Some(StudyScale::smoke()),
            "default" => Some(StudyScale::default_scale()),
            "full" => Some(StudyScale::full()),
            "large" => Some(StudyScale::large()),
            _ => None,
        }
    }

    /// Paired scores produced per configuration.
    pub fn scores_per_config(&self) -> usize {
        self.n_splits * self.n_model_seeds
    }
}

/// Durability and robustness controls for
/// [`crate::runner::run_error_type_study_with`].
///
/// The defaults reproduce a plain in-memory run (no journal, no progress
/// lines) with graceful degradation: a failed (dataset, split) task is
/// recorded and excluded from assembly instead of aborting the study, and
/// only when more than [`StudyOptions::failure_threshold`] of the tasks
/// fail does the run turn into an `Err`.
#[derive(Debug, Clone)]
pub struct StudyOptions {
    /// Directory for the append-only task journal (e.g. `results/journal`).
    /// `None` disables journaling.
    pub journal_dir: Option<PathBuf>,
    /// Load the matching journal before running and skip tasks whose
    /// results are already recorded (fingerprint-verified).
    pub resume: bool,
    /// Highest tolerated fraction of failed tasks; strictly more than this
    /// turns the study into an `Err` listing every failed task.
    pub failure_threshold: f64,
    /// Emit periodic progress lines (tasks done/total, evals/s, ETA) to
    /// stderr.
    pub progress: bool,
    /// Minimum interval between progress lines.
    pub progress_interval: Duration,
    /// Test hook: report `(dataset name, split)` tasks as failed without
    /// executing them (exercises the degradation path deterministically).
    pub inject_task_failure: Option<fn(dataset: &str, split: usize) -> bool>,
    /// Test hook: stop starting new tasks once this many have been
    /// executed this run, then return an interruption `Err` (simulates a
    /// crash without killing the test process; the journal keeps what
    /// completed).
    pub stop_after_tasks: Option<usize>,
    /// Hook called after each newly executed task completes (and is
    /// journaled), with `(tasks executed this run, total tasks)`. The
    /// crash-resume CI smoke uses this to `kill -9` itself mid-run.
    pub on_task_complete: Option<fn(done: usize, total: usize)>,
    /// Which side of the pipeline the study's repairs act on. `Data`
    /// reproduces the paper's protocol exactly; `Model` / `Both` add
    /// post-training rectification of tree-structured models.
    pub repair_side: RepairSide,
    /// The rectification constraint used when
    /// [`StudyOptions::repair_side`] rectifies.
    pub rectify: RectifySpec,
}

impl Default for StudyOptions {
    fn default() -> StudyOptions {
        StudyOptions {
            journal_dir: None,
            resume: false,
            failure_threshold: 0.1,
            progress: false,
            progress_interval: Duration::from_secs(5),
            inject_task_failure: None,
            stop_after_tasks: None,
            on_task_complete: None,
            repair_side: RepairSide::Data,
            rectify: RectifySpec::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_counts_match_study() {
        assert_eq!(RepairSpec::variants_for(ErrorType::MissingValues).len(), 6);
        assert_eq!(RepairSpec::variants_for(ErrorType::Outliers).len(), 9);
        assert_eq!(RepairSpec::variants_for(ErrorType::Mislabels).len(), 1);
    }

    #[test]
    fn names_follow_cleanml_convention() {
        let missing = &RepairSpec::variants_for(ErrorType::MissingValues)[0];
        assert!(missing.name().starts_with("impute_"));
        let outlier = &RepairSpec::variants_for(ErrorType::Outliers)[0];
        assert!(outlier.name().contains('/'));
        assert_eq!(RepairSpec::Mislabels.name(), "flip_labels");
    }

    #[test]
    fn error_types_and_detectors_consistent() {
        for error in ErrorType::all() {
            for spec in RepairSpec::variants_for(error) {
                assert_eq!(spec.error_type(), error);
                assert!(!spec.detector_name().is_empty());
            }
        }
    }

    #[test]
    fn config_key_format() {
        let cfg = ExperimentConfig {
            dataset: DatasetId::German,
            model: ModelKind::LogReg,
            repair: RepairSpec::Missing(MissingRepair::all()[0]),
        };
        let key = cfg.key();
        assert!(key.starts_with("german/missing_values/impute_"));
        assert!(key.ends_with("/log-reg"));
    }

    #[test]
    fn repair_sides_round_trip_and_default_is_the_paper() {
        for side in RepairSide::all() {
            assert_eq!(RepairSide::parse(side.name()), Some(side));
        }
        assert!(RepairSide::parse("smt").is_none());
        let options = StudyOptions::default();
        assert_eq!(options.repair_side, RepairSide::Data);
        assert!(!options.repair_side.rectifies(), "paper protocol has no model edits");
        assert!(RepairSide::Model.rectifies());
        assert!(!RepairSide::Model.repairs_data());
        assert!(RepairSide::Both.rectifies());
        assert!(RepairSide::Both.repairs_data());
        assert_eq!(options.rectify.metric, FairnessMetric::EqualOpportunity);
        assert!(options.rectify.epsilon > 0.0 && options.rectify.epsilon < 1.0);
    }

    #[test]
    fn scales_parse_and_order() {
        let smoke = StudyScale::parse("smoke").unwrap();
        let default = StudyScale::parse("default").unwrap();
        let full = StudyScale::parse("full").unwrap();
        assert!(smoke.sample_size < default.sample_size);
        assert!(default.sample_size < full.sample_size);
        assert_eq!(full.scores_per_config(), 100); // the paper's 100 models/config
        let large = StudyScale::parse("large").unwrap();
        assert_eq!(large.pool_size, 1 << 20); // exactly one block per pool
        assert!(large.pool_size > full.pool_size);
        assert!(StudyScale::parse("nope").is_none());
    }
}
