//! Impact classification: the CleanML protocol of paired-sample t-tests
//! with a Bonferroni-adjusted significance threshold, applied to the
//! paired dirty/repaired score vectors of each configuration.

use statskit::{bonferroni_alpha, paired_t_test};

/// The classified impact of a cleaning configuration on one quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Impact {
    /// The repaired arm is significantly worse.
    Worse,
    /// No significant difference.
    Insignificant,
    /// The repaired arm is significantly better.
    Better,
}

impl Impact {
    /// Index into a 3-slot axis: Worse = 0, Insignificant = 1, Better = 2.
    pub fn index(&self) -> usize {
        match self {
            Impact::Worse => 0,
            Impact::Insignificant => 1,
            Impact::Better => 2,
        }
    }

    /// Label used in rendered tables.
    pub fn label(&self) -> &'static str {
        match self {
            Impact::Worse => "worse",
            Impact::Insignificant => "insignificant",
            Impact::Better => "better",
        }
    }
}

impl std::fmt::Display for Impact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Classifies a paired comparison of `dirty` vs `repaired` scores.
///
/// * `higher_is_better = true` for accuracy (a significant increase is
///   [`Impact::Better`]);
/// * `higher_is_better = false` for absolute fairness disparities (a
///   significant increase is [`Impact::Worse`]).
///
/// `alpha` is the raw significance level (.05 in the paper) and
/// `n_hypotheses` the Bonferroni divisor — the number of simultaneous
/// comparisons in the family (CleanML uses the number of cleaning methods
/// compared per setting).
///
/// Fewer than two finite score pairs classify as insignificant.
pub fn classify_pair(
    dirty: &[f64],
    repaired: &[f64],
    higher_is_better: bool,
    alpha: f64,
    n_hypotheses: usize,
) -> Impact {
    let adjusted = bonferroni_alpha(alpha, n_hypotheses);
    let Some(test) = paired_t_test(dirty, repaired) else {
        return Impact::Insignificant;
    };
    if !test.significant(adjusted) {
        return Impact::Insignificant;
    }
    let improved = if higher_is_better { test.mean_diff > 0.0 } else { test.mean_diff < 0.0 };
    if improved {
        Impact::Better
    } else {
        Impact::Worse
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_improvement_is_better() {
        let dirty = [0.70, 0.71, 0.69, 0.70, 0.72, 0.71];
        let repaired = [0.80, 0.81, 0.79, 0.80, 0.82, 0.81];
        assert_eq!(classify_pair(&dirty, &repaired, true, 0.05, 1), Impact::Better);
        // Same shift on a fairness disparity is a worsening.
        assert_eq!(classify_pair(&dirty, &repaired, false, 0.05, 1), Impact::Worse);
    }

    #[test]
    fn noise_is_insignificant() {
        let dirty = [0.70, 0.75, 0.68, 0.73, 0.71, 0.74];
        let repaired = [0.71, 0.73, 0.70, 0.72, 0.73, 0.70];
        assert_eq!(classify_pair(&dirty, &repaired, true, 0.05, 1), Impact::Insignificant);
    }

    #[test]
    fn bonferroni_makes_borderline_effects_insignificant() {
        // A modest but consistent effect that passes at alpha=.05 with one
        // hypothesis but not alpha/20.
        let dirty = [0.70, 0.71, 0.72, 0.73, 0.70];
        let repaired = [0.710, 0.726, 0.722, 0.742, 0.707];
        let unadjusted = classify_pair(&dirty, &repaired, true, 0.05, 1);
        let adjusted = classify_pair(&dirty, &repaired, true, 0.05, 50);
        assert_eq!(unadjusted, Impact::Better);
        assert_eq!(adjusted, Impact::Insignificant);
    }

    #[test]
    fn degenerate_inputs_are_insignificant() {
        assert_eq!(classify_pair(&[0.5], &[0.9], true, 0.05, 1), Impact::Insignificant);
        assert_eq!(classify_pair(&[], &[], true, 0.05, 1), Impact::Insignificant);
        let nans = [f64::NAN, f64::NAN, f64::NAN];
        assert_eq!(classify_pair(&nans, &nans, true, 0.05, 1), Impact::Insignificant);
    }

    #[test]
    fn identical_scores_are_insignificant() {
        let s = [0.8, 0.81, 0.79, 0.8];
        assert_eq!(classify_pair(&s, &s, true, 0.05, 1), Impact::Insignificant);
    }

    #[test]
    fn indexes_and_labels() {
        assert_eq!(Impact::Worse.index(), 0);
        assert_eq!(Impact::Insignificant.index(), 1);
        assert_eq!(Impact::Better.index(), 2);
        assert_eq!(Impact::Better.to_string(), "better");
    }
}
