//! Fairness-constrained model selection — the paper's §VII research
//! direction: "the selection of cleaning techniques and model
//! hyperparameters is typically steered by cross-validation techniques
//! which aim for the highest accuracy. A promising direction might be to
//! extend existing techniques and implementations to adhere to fairness
//! constraints during the selection procedure."
//!
//! [`tune_and_fit_fair`] runs the same k-fold grid search as
//! [`mlcore::tune_and_fit`], but scores every candidate on *both* mean
//! validation accuracy and mean validation fairness disparity, then picks
//! the most accurate candidate whose disparity stays within `epsilon` —
//! falling back to the least-disparate candidate when the constraint is
//! infeasible on this data.

use demodq_rectify::{rectify_classifier, RectificationReport, RectifyOptions};
use fairness::{group_confusions, FairnessMetric, GroupSpec};
use mlcore::model::Classifier;
use mlcore::{accuracy, ModelKind, ModelSpec};
use tabular::{split::kfold, DataFrame, FeatureEncoder, Result, Rng64, TabularError};

/// Result of fairness-constrained tuning.
pub struct FairTunedModel {
    /// The refit classifier.
    pub model: Box<dyn Classifier>,
    /// The winning hyperparameter configuration.
    pub best_spec: ModelSpec,
    /// Mean validation accuracy of the winner.
    pub val_accuracy: f64,
    /// Mean validation disparity of the winner (absolute).
    pub val_disparity: f64,
    /// True when the winner satisfied the epsilon constraint; false when
    /// the search fell back to the least-disparate candidate.
    pub constraint_satisfied: bool,
}

/// Per-candidate validation scores.
#[derive(Debug, Clone, Copy)]
struct CandidateScore {
    accuracy: f64,
    disparity: f64,
}

/// Tunes `kind`'s hyperparameter under a fairness constraint.
///
/// * `groups` defines the privileged/disadvantaged split the disparity is
///   computed over (evaluated on each validation fold's rows);
/// * `metric` is the guarded fairness metric;
/// * `epsilon` is the maximum tolerated mean absolute disparity.
///
/// Folds where the metric is undefined (e.g. no positive predictions in
/// one group) contribute a pessimistic disparity of 1.0 — undefined
/// fairness must not be rewarded.
pub fn tune_and_fit_fair(
    kind: ModelKind,
    train: &DataFrame,
    groups: &GroupSpec,
    metric: FairnessMetric,
    epsilon: f64,
    n_folds: usize,
    seed: u64,
) -> Result<FairTunedModel> {
    if !(0.0..=1.0).contains(&epsilon) {
        return Err(TabularError::InvalidArgument(format!(
            "epsilon must be in [0,1], got {epsilon}"
        )));
    }
    let y = train.labels()?;
    let n = train.n_rows();
    if n < n_folds {
        return Err(TabularError::InvalidArgument(format!(
            "need at least {n_folds} rows, got {n}"
        )));
    }
    let encoder = FeatureEncoder::fit(train, true)?;
    let x = encoder.transform(train)?;
    let membership = groups.evaluate(train)?;

    let mut rng = Rng64::seed_from_u64(seed);
    let mut grid = kind.default_grid();
    rng.shuffle(&mut grid);
    let folds = kfold(n, n_folds, rng.next_u64())?;
    let fit_seed = rng.next_u64();

    let mut scored: Vec<(ModelSpec, CandidateScore)> = Vec::with_capacity(grid.len());
    for spec in &grid {
        let mut accs = Vec::with_capacity(folds.len());
        let mut disparities = Vec::with_capacity(folds.len());
        for (train_idx, val_idx) in &folds {
            let x_tr = x.take_rows(train_idx);
            let y_tr: Vec<u8> = train_idx.iter().map(|&i| y[i]).collect();
            let model = spec.fit(&x_tr, &y_tr, fit_seed);
            let x_val = x.take_rows(val_idx);
            let y_val: Vec<u8> = val_idx.iter().map(|&i| y[i]).collect();
            let preds = model.predict(&x_val);
            accs.push(accuracy(&y_val, &preds));
            let val_groups = fairness::Groups {
                privileged: val_idx.iter().map(|&i| membership.privileged[i]).collect(),
                disadvantaged: val_idx.iter().map(|&i| membership.disadvantaged[i]).collect(),
            };
            let gc = group_confusions(&y_val, &preds, &val_groups);
            disparities.push(metric.absolute_disparity(&gc).unwrap_or(1.0));
        }
        let score = CandidateScore {
            accuracy: accs.iter().sum::<f64>() / accs.len() as f64,
            disparity: disparities.iter().sum::<f64>() / disparities.len() as f64,
        };
        scored.push((*spec, score));
    }

    // Feasible set: within epsilon. Pick max accuracy there; otherwise
    // minimise disparity (ties by accuracy).
    let feasible_best = scored
        .iter()
        .filter(|(_, s)| s.disparity <= epsilon)
        .max_by(|a, b| a.1.accuracy.partial_cmp(&b.1.accuracy).unwrap_or(std::cmp::Ordering::Equal));
    let (best_spec, score, satisfied) = match feasible_best {
        Some((spec, score)) => (*spec, *score, true),
        None => {
            let (spec, score) = scored
                .iter()
                .min_by(|a, b| {
                    a.1.disparity
                        .partial_cmp(&b.1.disparity)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(
                            b.1.accuracy
                                .partial_cmp(&a.1.accuracy)
                                .unwrap_or(std::cmp::Ordering::Equal),
                        )
                })
                // lint:allow(P001, scored has one entry per spec and the spec grid is never empty)
                .expect("non-empty grid");
            (*spec, *score, false)
        }
    };
    let model = best_spec.fit(&x, &y, fit_seed);
    Ok(FairTunedModel {
        model,
        best_spec,
        val_accuracy: score.accuracy,
        val_disparity: score.disparity,
        constraint_satisfied: satisfied,
    })
}

/// Fairness-constrained tuning composed with post-training rectification.
///
/// Runs [`tune_and_fit_fair`] first (hyperparameter-level fairness), then
/// — when the winning model is a tree family — rectifies its leaves in
/// place against the same `(metric, epsilon)` constraint, evaluated on
/// the full tuning frame. The two levers are complementary: tuning picks
/// the least-unfair candidate in the grid, rectification then edits that
/// candidate's decision regions directly, which can succeed where every
/// grid point was infeasible.
///
/// After an in-place rectification the fold-mean validation scores no
/// longer describe the mutated model, so `val_accuracy`, `val_disparity`
/// and `constraint_satisfied` are recomputed from the rectified model's
/// predictions on the tuning frame (the same split the rectifier
/// optimised over — an optimistic estimate, like any post-hoc repair).
/// Non-tree winners (log-reg, kNN) return `None` for the report and keep
/// the tuning-time scores untouched.
pub fn tune_and_fit_fair_rectified(
    kind: ModelKind,
    train: &DataFrame,
    groups: &GroupSpec,
    metric: FairnessMetric,
    epsilon: f64,
    n_folds: usize,
    seed: u64,
) -> Result<(FairTunedModel, Option<RectificationReport>)> {
    let mut tuned = tune_and_fit_fair(kind, train, groups, metric, epsilon, n_folds, seed)?;
    let y = train.labels()?;
    let encoder = FeatureEncoder::fit(train, true)?;
    let x = encoder.transform(train)?;
    let membership = groups.evaluate(train)?;
    let opts = RectifyOptions { metric, epsilon, ..RectifyOptions::default() };
    let report = rectify_classifier(tuned.model.as_mut(), &x, &y, &membership, &opts);
    if report.is_some() {
        let preds = tuned.model.predict(&x);
        let gc = group_confusions(&y, &preds, &membership);
        tuned.val_accuracy = accuracy(&y, &preds);
        tuned.val_disparity = metric.absolute_disparity(&gc).unwrap_or(1.0);
        tuned.constraint_satisfied = tuned.val_disparity <= epsilon;
    }
    Ok((tuned, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::DatasetId;

    fn german_train() -> (DataFrame, GroupSpec) {
        let frame = DatasetId::German.generate(600, 5).unwrap();
        let clean = frame.drop_incomplete_rows().unwrap();
        let spec = DatasetId::German.spec();
        (clean, spec.single_attribute_specs()[1].clone()) // sex
    }

    #[test]
    fn constrained_tuning_runs_for_all_models() {
        let (train, groups) = german_train();
        for kind in ModelKind::all() {
            let tuned = tune_and_fit_fair(
                kind,
                &train,
                &groups,
                FairnessMetric::EqualOpportunity,
                0.5,
                5,
                7,
            )
            .unwrap();
            assert!(tuned.val_accuracy > 0.4, "{kind}");
            assert!((0.0..=1.0).contains(&tuned.val_disparity));
            assert_eq!(tuned.best_spec.kind(), kind);
        }
    }

    #[test]
    fn loose_constraint_matches_unconstrained_accuracy_ordering() {
        let (train, groups) = german_train();
        // epsilon = 1.0 makes every candidate feasible: the winner is the
        // plain accuracy maximiser over the same folds.
        let tuned = tune_and_fit_fair(
            ModelKind::LogReg,
            &train,
            &groups,
            FairnessMetric::EqualOpportunity,
            1.0,
            5,
            11,
        )
        .unwrap();
        assert!(tuned.constraint_satisfied);
    }

    #[test]
    fn tight_constraint_reduces_disparity_or_reports_fallback() {
        let (train, groups) = german_train();
        let loose = tune_and_fit_fair(
            ModelKind::Gbdt,
            &train,
            &groups,
            FairnessMetric::EqualOpportunity,
            1.0,
            5,
            13,
        )
        .unwrap();
        let tight = tune_and_fit_fair(
            ModelKind::Gbdt,
            &train,
            &groups,
            FairnessMetric::EqualOpportunity,
            0.02,
            5,
            13,
        )
        .unwrap();
        if tight.constraint_satisfied {
            assert!(tight.val_disparity <= 0.02 + 1e-12);
        } else {
            // Fallback picks the least-disparate candidate.
            assert!(tight.val_disparity <= loose.val_disparity + 1e-12);
        }
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let (train, groups) = german_train();
        assert!(tune_and_fit_fair(
            ModelKind::LogReg,
            &train,
            &groups,
            FairnessMetric::EqualOpportunity,
            1.5,
            5,
            1,
        )
        .is_err());
    }

    #[test]
    fn rectified_tuning_repairs_trees_and_skips_linear_models() {
        let (train, groups) = german_train();
        // Tree family: a report is produced and the recomputed scores
        // describe the rectified model.
        let (tuned, report) = tune_and_fit_fair_rectified(
            ModelKind::DecisionTree,
            &train,
            &groups,
            FairnessMetric::EqualOpportunity,
            0.05,
            5,
            17,
        )
        .unwrap();
        let report = report.expect("decision trees are rectifiable");
        assert_eq!(report.model, "decision-tree");
        assert!((0.0..=1.0).contains(&tuned.val_accuracy));
        if report.constraint_met {
            assert!(tuned.constraint_satisfied, "report and tuned scores must agree");
            assert!(tuned.val_disparity <= 0.05 + 1e-12);
        }
        // Linear family: no report, tuning-time scores untouched.
        let (plain, none) = tune_and_fit_fair_rectified(
            ModelKind::LogReg,
            &train,
            &groups,
            FairnessMetric::EqualOpportunity,
            0.05,
            5,
            17,
        )
        .unwrap();
        assert!(none.is_none());
        let baseline = tune_and_fit_fair(
            ModelKind::LogReg,
            &train,
            &groups,
            FairnessMetric::EqualOpportunity,
            0.05,
            5,
            17,
        )
        .unwrap();
        assert_eq!(plain.val_accuracy, baseline.val_accuracy);
        assert_eq!(plain.val_disparity, baseline.val_disparity);
    }

    #[test]
    fn deterministic_given_seed() {
        let (train, groups) = german_train();
        let run = || {
            tune_and_fit_fair(
                ModelKind::LogReg,
                &train,
                &groups,
                FairnessMetric::PredictiveParity,
                0.3,
                5,
                21,
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.best_spec, b.best_spec);
        assert_eq!(a.val_accuracy, b.val_accuracy);
        assert_eq!(a.val_disparity, b.val_disparity);
    }
}
