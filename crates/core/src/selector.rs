//! Fairness-aware cleaning-technique selection — the paper's §VII vision
//! ("we can — and should — mitigate any potential negative impact of
//! automated cleaning with the help of a principled methodology for
//! selecting an appropriate cleaning procedure"), made executable.
//!
//! Given a study's classified configurations, the selector recommends,
//! per (dataset, group), a cleaning technique under a guardrail policy:
//! never deploy a technique whose fairness impact was classified *worse*;
//! prefer techniques that improve fairness; break ties by accuracy
//! impact. When no technique passes the guardrail, the recommendation is
//! to keep the dirty baseline — the paper's warning that blind
//! auto-cleaning is not safe.

use crate::config::ExperimentConfig;
use crate::impact::Impact;
use crate::runner::StudyResults;
use crate::tables::{classify_study, ClassifiedEntry};
use fairness::FairnessMetric;
use std::collections::BTreeMap;

/// How candidates are ranked after the fairness guardrail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Rank by fairness impact first, accuracy second.
    FairnessFirst,
    /// Rank by accuracy impact first (fairness still guarded).
    AccuracyFirst,
}

/// What the selector recommends for one (dataset, group) setting.
#[derive(Debug, Clone)]
pub enum SelectorChoice {
    /// Deploy this cleaning configuration.
    Clean {
        /// The chosen configuration.
        config: ExperimentConfig,
        /// Its classified fairness impact.
        fairness: Impact,
        /// Its classified accuracy impact.
        accuracy: Impact,
    },
    /// No configuration passed the fairness guardrail: keep the dirty
    /// baseline (do not auto-clean).
    KeepDirty {
        /// How many candidates were rejected by the guardrail.
        rejected: usize,
    },
}

/// A per-setting recommendation.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// Dataset name.
    pub dataset: String,
    /// Group label (sensitive attribute or intersection).
    pub group: String,
    /// Fairness metric the guardrail protects.
    pub metric: FairnessMetric,
    /// The decision.
    pub choice: SelectorChoice,
}

impl Recommendation {
    /// True when the selector found a deployable technique.
    pub fn is_clean(&self) -> bool {
        matches!(self.choice, SelectorChoice::Clean { .. })
    }
}

/// Ranks an impact for "better is higher" ordering.
fn rank(impact: Impact) -> u8 {
    match impact {
        Impact::Worse => 0,
        Impact::Insignificant => 1,
        Impact::Better => 2,
    }
}

/// Candidate ordering key under a policy (higher wins).
fn policy_key(entry: &ClassifiedEntry, policy: SelectionPolicy) -> (u8, u8) {
    match policy {
        SelectionPolicy::FairnessFirst => (rank(entry.fairness), rank(entry.accuracy)),
        SelectionPolicy::AccuracyFirst => (rank(entry.accuracy), rank(entry.fairness)),
    }
}

/// Recommends one cleaning technique per (dataset, group) of a study,
/// guarding the given fairness metric.
///
/// The guardrail is strict: any candidate classified fairness-*worse* is
/// rejected regardless of its accuracy gain.
pub fn recommend(
    results: &StudyResults,
    metric: FairnessMetric,
    intersectional: bool,
    alpha: f64,
    policy: SelectionPolicy,
) -> Vec<Recommendation> {
    let entries = classify_study(results, metric, intersectional, alpha);
    let mut by_setting: BTreeMap<(String, String), Vec<ClassifiedEntry>> = BTreeMap::new();
    for e in entries {
        by_setting
            .entry((e.config.dataset.name().to_string(), e.group.clone()))
            .or_default()
            .push(e);
    }
    by_setting
        .into_iter()
        .map(|((dataset, group), candidates)| {
            let total = candidates.len();
            let mut passing: Vec<&ClassifiedEntry> =
                candidates.iter().filter(|e| e.fairness != Impact::Worse).collect();
            // Deterministic ranking: policy key, then config key as a
            // stable tiebreak.
            passing.sort_by(|a, b| {
                policy_key(b, policy)
                    .cmp(&policy_key(a, policy))
                    .then_with(|| a.config.key().cmp(&b.config.key()))
            });
            let choice = match passing.first() {
                Some(best) => SelectorChoice::Clean {
                    config: best.config,
                    fairness: best.fairness,
                    accuracy: best.accuracy,
                },
                None => SelectorChoice::KeepDirty { rejected: total },
            };
            Recommendation { dataset, group, metric, choice }
        })
        .collect()
}

/// Recommends jointly for *both* headline metrics: a candidate must pass
/// the guardrail on PP **and** EO simultaneously (the paper's observation
/// that improving one metric while worsening the other creates in-group
/// unfairness makes a single-metric guardrail insufficient).
pub fn recommend_dual_metric(
    results: &StudyResults,
    intersectional: bool,
    alpha: f64,
    policy: SelectionPolicy,
) -> Vec<Recommendation> {
    let pp = classify_study(results, FairnessMetric::PredictiveParity, intersectional, alpha);
    let eo = classify_study(results, FairnessMetric::EqualOpportunity, intersectional, alpha);
    let mut by_setting: BTreeMap<(String, String), Vec<(ClassifiedEntry, Impact)>> =
        BTreeMap::new();
    for (p, e) in pp.into_iter().zip(eo) {
        debug_assert_eq!(p.config.key(), e.config.key());
        debug_assert_eq!(p.group, e.group);
        by_setting
            .entry((p.config.dataset.name().to_string(), p.group.clone()))
            .or_default()
            .push((p, e.fairness));
    }
    by_setting
        .into_iter()
        .map(|((dataset, group), candidates)| {
            let total = candidates.len();
            let mut passing: Vec<&(ClassifiedEntry, Impact)> = candidates
                .iter()
                .filter(|(p, eo_fairness)| {
                    p.fairness != Impact::Worse && *eo_fairness != Impact::Worse
                })
                .collect();
            passing.sort_by(|(a, a_eo), (b, b_eo)| {
                let ka = (policy_key(a, policy), rank(*a_eo));
                let kb = (policy_key(b, policy), rank(*b_eo));
                kb.cmp(&ka).then_with(|| a.config.key().cmp(&b.config.key()))
            });
            let choice = match passing.first() {
                Some((best, _)) => SelectorChoice::Clean {
                    config: best.config,
                    fairness: best.fairness,
                    accuracy: best.accuracy,
                },
                None => SelectorChoice::KeepDirty { rejected: total },
            };
            Recommendation {
                dataset,
                group,
                metric: FairnessMetric::PredictiveParity,
                choice,
            }
        })
        .collect()
}

/// Summary over a set of recommendations:
/// `(settings, deployable, fairness_improving, keep_dirty)`.
pub fn summarize(recommendations: &[Recommendation]) -> (usize, usize, usize, usize) {
    let deployable = recommendations.iter().filter(|r| r.is_clean()).count();
    let improving = recommendations
        .iter()
        .filter(|r| {
            matches!(r.choice, SelectorChoice::Clean { fairness: Impact::Better, .. })
        })
        .count();
    (
        recommendations.len(),
        deployable,
        improving,
        recommendations.len() - deployable,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RepairSpec, StudyScale};
    use crate::runner::{ConfigScores, GroupMetricScores};
    use cleaning::repair::MissingRepair;
    use datasets::{DatasetId, ErrorType};
    use mlcore::ModelKind;

    /// A study with two configurations on one group: one improves accuracy
    /// but worsens fairness, the other is fairness-neutral.
    fn study(first_worsens_fairness: bool) -> StudyResults {
        let flat = vec![0.70; 6];
        let up = vec![0.80, 0.81, 0.79, 0.80, 0.81, 0.82];
        let disparity_flat = vec![0.05; 6];
        let disparity_up = vec![0.15, 0.16, 0.15, 0.14, 0.15, 0.16];
        let mk = |repair: RepairSpec, acc: Vec<f64>, disp: Vec<f64>| ConfigScores {
            config: ExperimentConfig { dataset: DatasetId::German, model: ModelKind::LogReg, repair },
            dirty_accuracy: flat.clone(),
            repaired_accuracy: acc,
            fairness: vec![GroupMetricScores {
                group: "sex".to_string(),
                intersectional: false,
                metric: FairnessMetric::PredictiveParity,
                dirty: disparity_flat.clone(),
                repaired: disp,
            }],
        };
        let variants = MissingRepair::all();
        StudyResults::new(
            ErrorType::MissingValues,
            StudyScale::smoke(),
            vec![
                mk(
                    RepairSpec::Missing(variants[0]),
                    up.clone(),
                    if first_worsens_fairness { disparity_up.clone() } else { disparity_flat.clone() },
                ),
                mk(RepairSpec::Missing(variants[1]), flat.clone(), disparity_flat.clone()),
            ],
        )
    }

    #[test]
    fn guardrail_rejects_fairness_worsening_candidates() {
        let results = study(true);
        let recs = recommend(
            &results,
            FairnessMetric::PredictiveParity,
            false,
            0.05,
            SelectionPolicy::AccuracyFirst,
        );
        assert_eq!(recs.len(), 1);
        match &recs[0].choice {
            SelectorChoice::Clean { config, fairness, .. } => {
                // The accuracy-improving candidate worsens fairness, so the
                // neutral one must win even under AccuracyFirst.
                assert_eq!(config.repair.name(), MissingRepair::all()[1].name());
                assert_eq!(*fairness, Impact::Insignificant);
            }
            other => panic!("expected Clean, got {other:?}"),
        }
    }

    #[test]
    fn accuracy_first_prefers_accuracy_when_guardrail_passes() {
        let results = study(false);
        let recs = recommend(
            &results,
            FairnessMetric::PredictiveParity,
            false,
            0.05,
            SelectionPolicy::AccuracyFirst,
        );
        match &recs[0].choice {
            SelectorChoice::Clean { config, accuracy, .. } => {
                assert_eq!(config.repair.name(), MissingRepair::all()[0].name());
                assert_eq!(*accuracy, Impact::Better);
            }
            other => panic!("expected Clean, got {other:?}"),
        }
    }

    #[test]
    fn keep_dirty_when_everything_worsens() {
        let mut results = study(true);
        // Make the second candidate worsen fairness too.
        results.configs[1].fairness[0].repaired =
            vec![0.15, 0.16, 0.15, 0.14, 0.15, 0.16];
        let recs = recommend(
            &results,
            FairnessMetric::PredictiveParity,
            false,
            0.05,
            SelectionPolicy::FairnessFirst,
        );
        match &recs[0].choice {
            SelectorChoice::KeepDirty { rejected } => assert_eq!(*rejected, 2),
            other => panic!("expected KeepDirty, got {other:?}"),
        }
        let (settings, deployable, improving, dirty) = summarize(&recs);
        assert_eq!((settings, deployable, improving, dirty), (1, 0, 0, 1));
    }

    #[test]
    fn selector_is_deterministic() {
        let results = study(false);
        let a = recommend(
            &results,
            FairnessMetric::PredictiveParity,
            false,
            0.05,
            SelectionPolicy::FairnessFirst,
        );
        let b = recommend(
            &results,
            FairnessMetric::PredictiveParity,
            false,
            0.05,
            SelectionPolicy::FairnessFirst,
        );
        for (x, y) in a.iter().zip(&b) {
            match (&x.choice, &y.choice) {
                (SelectorChoice::Clean { config: ca, .. }, SelectorChoice::Clean { config: cb, .. }) => {
                    assert_eq!(ca.key(), cb.key());
                }
                (SelectorChoice::KeepDirty { .. }, SelectorChoice::KeepDirty { .. }) => {}
                _ => panic!("choices diverged"),
            }
        }
    }

    #[test]
    fn dual_metric_guardrail_on_real_smoke_study() {
        let results = crate::runner::run_error_type_study(
            ErrorType::MissingValues,
            &[DatasetId::German],
            &[ModelKind::LogReg],
            &StudyScale::smoke(),
            3,
        )
        .unwrap();
        let recs = recommend_dual_metric(&results, false, 0.05, SelectionPolicy::FairnessFirst);
        // One recommendation per (dataset, group): german has age and sex.
        assert_eq!(recs.len(), 2);
        let (settings, deployable, _, keep_dirty) = summarize(&recs);
        assert_eq!(settings, 2);
        assert_eq!(deployable + keep_dirty, 2);
    }
}
