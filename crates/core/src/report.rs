//! Paper-format text rendering of tables and figures.

use crate::deepdive::ModelImpactRow;
use crate::impact::Impact;
use crate::rq1::{DisparityRow, MislabelDrilldown};
use crate::tables::ImpactTable;
use datasets::DatasetSpec;
use std::fmt::Write;

const AXIS: [Impact; 3] = [Impact::Worse, Impact::Insignificant, Impact::Better];

/// Renders a 3×3 impact table in the paper's layout (fairness rows ×
/// accuracy columns, percentages with absolute counts in parentheses).
pub fn render_impact_table(title: &str, table: &ImpactTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{:>14} | {:^51} |", "", "accuracy");
    let _ = writeln!(
        out,
        "{:>14} | {:^15} {:^15} {:^15}     |",
        "fairness", "worse", "insignificant", "better"
    );
    let _ = writeln!(out, "{}", "-".repeat(72));
    for f in AXIS {
        let mut row = format!("{:>14} |", f.label());
        for a in AXIS {
            let cell = format!("{:5.1}% ({})", table.percentage(f, a), table.cell(f, a));
            let _ = write!(row, " {cell:^15}");
        }
        let _ = write!(
            row,
            " | {:5.1}% ({})",
            100.0 * table.fairness_marginal(f) as f64 / table.total().max(1) as f64,
            table.fairness_marginal(f)
        );
        let _ = writeln!(out, "{row}");
    }
    let _ = writeln!(out, "{}", "-".repeat(72));
    let mut row = format!("{:>14} |", "");
    for a in AXIS {
        let cell = format!(
            "{:5.1}% ({})",
            100.0 * table.accuracy_marginal(a) as f64 / table.total().max(1) as f64,
            table.accuracy_marginal(a)
        );
        let _ = write!(row, " {cell:^15}");
    }
    let _ = writeln!(out, "{row} | n={}", table.total());
    out
}

/// Renders the RQ1 disparity rows (Figure 1 when `intersectional` is
/// false, Figure 2 when true). Only G²-significant rows are shown, like
/// the paper's figures; pass `alpha = 1.0` to see everything.
pub fn render_disparities(rows: &[DisparityRow], intersectional: bool, alpha: f64) -> String {
    let mut out = String::new();
    let kind = if intersectional { "intersectional" } else { "single-attribute" };
    let _ = writeln!(
        out,
        "Disparate error-detection proportions ({kind} groups), G2-significant at p<{alpha}:"
    );
    let _ = writeln!(
        out,
        "{:<8} {:<15} {:<10} {:>10} {:>10} {:>12} {:>10}",
        "dataset", "detector", "group", "priv", "dis", "G2", "p"
    );
    let mut shown = 0;
    for row in rows {
        if row.intersectional != intersectional || !row.significant(alpha) {
            continue;
        }
        shown += 1;
        // lint:allow(P001, row.significant() returned true, which requires g_test to be Some)
        let test = row.g_test.expect("significant implies present");
        let _ = writeln!(
            out,
            "{:<8} {:<15} {:<10} {:>9.2}% {:>9.2}% {:>12.2} {:>10.2e}",
            row.dataset,
            row.detector,
            row.group,
            100.0 * row.privileged_fraction(),
            100.0 * row.disadvantaged_fraction(),
            test.g2,
            test.p_value
        );
    }
    if shown == 0 {
        let _ = writeln!(out, "(no significant disparities)");
    }
    out
}

/// Renders the mislabel FP/FN drill-down of Section III.
pub fn render_drilldown(rows: &[MislabelDrilldown]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Mislabel drill-down: predicted-FP share among flagged tuples:");
    let _ = writeln!(
        out,
        "{:<8} {:<8} {:>12} {:>12} {:>14}",
        "dataset", "group", "priv FP%", "dis FP%", "significant"
    );
    for row in rows {
        let sig = row.g_test.is_some_and(|t| t.significant(0.05));
        let _ = writeln!(
            out,
            "{:<8} {:<8} {:>11.1}% {:>11.1}% {:>14}",
            row.dataset,
            row.group,
            100.0 * row.privileged_fp_share(),
            100.0 * row.disadvantaged_fp_share(),
            if sig { "yes" } else { "no" }
        );
    }
    out
}

/// Renders Table XIV (per-model fairness impact).
pub fn render_model_table(rows: &[ModelImpactRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Impact of auto-cleaning per ML model (paper Table XIV):");
    let _ = writeln!(
        out,
        "{:<10} {:>18} {:>18} {:>26}",
        "model", "fairness worse", "fairness better", "fairness & accuracy better"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>12.1}% ({:>3}) {:>12.1}% ({:>3}) {:>20.1}% ({:>3})",
            row.model.name(),
            row.pct(row.fairness_worse),
            row.fairness_worse,
            row.pct(row.fairness_better),
            row.fairness_better,
            row.pct(row.both_better),
            row.both_better
        );
    }
    out
}

/// Renders the §VI case-analysis outcomes.
pub fn render_case_outcomes(cases: &[crate::deepdive::CaseOutcome]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:<8} {:<8} {:<15} {:>6} {:>14} {:>11} {:>8}",
        "metric", "dataset", "group", "error", "techs", "non-worsening", "improving", "win-win"
    );
    for c in cases {
        let _ = writeln!(
            out,
            "{:<6} {:<8} {:<8} {:<15} {:>6} {:>14} {:>11} {:>8}",
            c.metric.name(),
            c.dataset,
            c.group,
            c.error,
            c.n_techniques,
            if c.has_non_worsening { "yes" } else { "NO" },
            if c.has_improving { "yes" } else { "no" },
            if c.has_win_win { "yes" } else { "no" },
        );
    }
    let (total, non_worsening, improving, win_win) = crate::deepdive::case_summary(cases);
    let _ = writeln!(
        out,
        "\n{total} cases: {non_worsening} non-worsening, {improving} improving, {win_win} win-win (paper: 40/37/23/17)"
    );
    out
}

/// Renders selector recommendations.
pub fn render_recommendations(recs: &[crate::selector::Recommendation]) -> String {
    use crate::selector::SelectorChoice;
    let mut out = String::new();
    let _ = writeln!(out, "{:<10} {:<10} {:<8} recommendation", "dataset", "group", "metric");
    for rec in recs {
        match &rec.choice {
            SelectorChoice::Clean { config, fairness, accuracy } => {
                let _ = writeln!(
                    out,
                    "{:<10} {:<10} {:<8} {} + {} (fairness {fairness}, accuracy {accuracy})",
                    rec.dataset,
                    rec.group,
                    rec.metric.name(),
                    config.repair.name(),
                    config.model.name(),
                );
            }
            SelectorChoice::KeepDirty { rejected } => {
                let _ = writeln!(
                    out,
                    "{:<10} {:<10} {:<8} KEEP DIRTY ({rejected} candidates rejected)",
                    rec.dataset,
                    rec.group,
                    rec.metric.name(),
                );
            }
        }
    }
    out
}

/// Renders Table I (dataset inventory).
pub fn render_dataset_table(specs: &[DatasetSpec]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Datasets for the experimental study (paper Table I):");
    let _ = writeln!(
        out,
        "{:<8} {:<12} {:>16}   sensitive attributes",
        "name", "source", "number of tuples"
    );
    for spec in specs {
        let attrs: Vec<&str> = spec.sensitive_attributes.iter().map(|a| a.name).collect();
        let _ = writeln!(
            out,
            "{:<8} {:<12} {:>16}   {}",
            spec.name,
            spec.source,
            spec.full_size,
            attrs.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use statskit::GTestResult;

    #[test]
    fn impact_table_renders_all_cells() {
        let mut t = ImpactTable::default();
        t.add(Impact::Worse, Impact::Better);
        t.add(Impact::Better, Impact::Better);
        t.add(Impact::Insignificant, Impact::Insignificant);
        let text = render_impact_table("Table II", &t);
        assert!(text.contains("Table II"));
        assert!(text.contains("worse"));
        assert!(text.contains("insignificant"));
        assert!(text.contains("better"));
        assert!(text.contains("33.3% (1)"));
        assert!(text.contains("n=3"));
    }

    fn disparity_row(significant: bool, intersectional: bool) -> DisparityRow {
        DisparityRow {
            dataset: "adult".to_string(),
            detector: "missing_values".to_string(),
            group: "sex".to_string(),
            intersectional,
            privileged_flagged: 50,
            privileged_total: 1000,
            disadvantaged_flagged: 150,
            disadvantaged_total: 1000,
            g_test: Some(GTestResult {
                g2: if significant { 50.0 } else { 0.1 },
                p_value: if significant { 1e-10 } else { 0.75 },
                df: 1.0,
            }),
        }
    }

    #[test]
    fn disparities_filter_by_significance_and_kind() {
        let rows = vec![disparity_row(true, false), disparity_row(false, false)];
        let text = render_disparities(&rows, false, 0.05);
        assert!(text.contains("missing_values"));
        // Only one significant row appears.
        assert_eq!(text.matches("adult").count(), 1);
        let inter = render_disparities(&rows, true, 0.05);
        assert!(inter.contains("no significant disparities"));
    }

    #[test]
    fn drilldown_renders_shares() {
        let rows = vec![MislabelDrilldown {
            dataset: "heart".to_string(),
            group: "sex".to_string(),
            privileged_fp: 577,
            privileged_fn: 423,
            disadvantaged_fp: 522,
            disadvantaged_fn: 478,
            g_test: Some(GTestResult { g2: 6.2, p_value: 0.012, df: 1.0 }),
        }];
        let text = render_drilldown(&rows);
        assert!(text.contains("57.7%"));
        assert!(text.contains("52.2%"));
        assert!(text.contains("yes"));
    }

    #[test]
    fn model_table_renders_percentages() {
        let rows = vec![ModelImpactRow {
            model: mlcore::ModelKind::LogReg,
            n: 100,
            fairness_worse: 36,
            fairness_better: 21,
            both_better: 16,
        }];
        let text = render_model_table(&rows);
        assert!(text.contains("log-reg"));
        assert!(text.contains("36.0%"));
        assert!(text.contains("21.0%"));
        assert!(text.contains("16.0%"));
    }

    #[test]
    fn case_outcomes_render() {
        let cases = vec![crate::deepdive::CaseOutcome {
            metric: fairness::FairnessMetric::PredictiveParity,
            dataset: "german".to_string(),
            group: "sex".to_string(),
            error: "mislabels".to_string(),
            n_techniques: 3,
            has_non_worsening: true,
            has_improving: false,
            has_win_win: false,
        }];
        let text = render_case_outcomes(&cases);
        assert!(text.contains("german"));
        assert!(text.contains("1 cases: 1 non-worsening, 0 improving, 0 win-win"));
    }

    #[test]
    fn recommendations_render_both_choices() {
        use crate::config::{ExperimentConfig, RepairSpec};
        use crate::selector::{Recommendation, SelectorChoice};
        let recs = vec![
            Recommendation {
                dataset: "german".to_string(),
                group: "sex".to_string(),
                metric: fairness::FairnessMetric::PredictiveParity,
                choice: SelectorChoice::Clean {
                    config: ExperimentConfig {
                        dataset: datasets::DatasetId::German,
                        model: mlcore::ModelKind::LogReg,
                        repair: RepairSpec::Mislabels,
                    },
                    fairness: Impact::Better,
                    accuracy: Impact::Insignificant,
                },
            },
            Recommendation {
                dataset: "adult".to_string(),
                group: "race".to_string(),
                metric: fairness::FairnessMetric::EqualOpportunity,
                choice: SelectorChoice::KeepDirty { rejected: 6 },
            },
        ];
        let text = render_recommendations(&recs);
        assert!(text.contains("flip_labels + log-reg"));
        assert!(text.contains("KEEP DIRTY (6 candidates rejected)"));
    }

    #[test]
    fn dataset_table_lists_all() {
        let text = render_dataset_table(&datasets::all_specs());
        for name in ["adult", "folk", "credit", "german", "heart"] {
            assert!(text.contains(name), "{name} missing");
        }
        assert!(text.contains("378817"));
    }
}
