//! RQ1: does the incidence of detected data errors track demographic group
//! membership? (Paper Section III, Figures 1 and 2.)
//!
//! For every dataset × detector × group definition, count flagged tuples in
//! the privileged and disadvantaged groups and certify disparities with a
//! G² test at p = .05, exactly as the paper does. Also implements the
//! mislabel **false-positive/false-negative drill-down** the paper reports
//! for the heart dataset.

use cleaning::detect::DetectorKind;
use cleaning::MislabelDetector;
use datasets::DatasetId;
use fairness::GroupSpec;
use statskit::{g_test_2x2, GTestResult};
use tabular::Result;

/// One dataset × detector × group disparity measurement.
#[derive(Debug, Clone)]
pub struct DisparityRow {
    /// Dataset name.
    pub dataset: String,
    /// Detector name.
    pub detector: String,
    /// Group label (attribute name, or `a*b` for intersectional).
    pub group: String,
    /// Intersectional group definition?
    pub intersectional: bool,
    /// Flagged tuples in the privileged group.
    pub privileged_flagged: u64,
    /// Privileged group size.
    pub privileged_total: u64,
    /// Flagged tuples in the disadvantaged group.
    pub disadvantaged_flagged: u64,
    /// Disadvantaged group size.
    pub disadvantaged_total: u64,
    /// G² independence test result (None when degenerate).
    pub g_test: Option<GTestResult>,
}

impl DisparityRow {
    /// Fraction of the privileged group flagged.
    pub fn privileged_fraction(&self) -> f64 {
        if self.privileged_total == 0 {
            0.0
        } else {
            self.privileged_flagged as f64 / self.privileged_total as f64
        }
    }

    /// Fraction of the disadvantaged group flagged.
    pub fn disadvantaged_fraction(&self) -> f64 {
        if self.disadvantaged_total == 0 {
            0.0
        } else {
            self.disadvantaged_flagged as f64 / self.disadvantaged_total as f64
        }
    }

    /// True when the disparity passes the G² test at `alpha`
    /// (the paper reports only such cases).
    pub fn significant(&self, alpha: f64) -> bool {
        self.g_test.is_some_and(|t| t.significant(alpha))
    }

    /// True when errors hit the disadvantaged group harder.
    pub fn burdens_disadvantaged(&self) -> bool {
        self.disadvantaged_fraction() > self.privileged_fraction()
    }
}

/// Runs all five detectors on a generated pool of `n` rows of `dataset`
/// and measures flag disparities for every group definition
/// (single-attribute and intersectional).
pub fn analyze_dataset(dataset: DatasetId, n: usize, seed: u64) -> Result<Vec<DisparityRow>> {
    let frame = dataset.generate(n, seed)?;
    let spec = dataset.spec();
    let mut group_specs: Vec<GroupSpec> = spec.single_attribute_specs();
    if let Some(inter) = spec.intersectional_spec() {
        group_specs.push(inter);
    }
    let mut rows = Vec::new();
    for detector in DetectorKind::all() {
        // Skip missing-value analysis on datasets without missing values
        // (the paper's footnote: heart has none).
        if detector == DetectorKind::MissingValues && frame.missing_cells() == 0 {
            continue;
        }
        let fitted = detector.fit(&frame, seed ^ 0xD47A)?;
        let report = fitted.detect(&frame)?;
        for gs in &group_specs {
            let groups = gs.evaluate(&frame)?;
            let (pf, pu) = report.counts_within(&groups.privileged);
            let (df, du) = report.counts_within(&groups.disadvantaged);
            rows.push(DisparityRow {
                dataset: dataset.name().to_string(),
                detector: detector.name().to_string(),
                group: gs.label(),
                intersectional: gs.is_intersectional(),
                privileged_flagged: pf,
                privileged_total: pf + pu,
                disadvantaged_flagged: df,
                disadvantaged_total: df + du,
                g_test: g_test_2x2(pf, pu, df, du),
            });
        }
    }
    Ok(rows)
}

/// Runs the RQ1 analysis over several datasets (Figure 1 = the
/// single-attribute rows, Figure 2 = the intersectional rows).
pub fn analyze_datasets(
    datasets: &[DatasetId],
    n: usize,
    seed: u64,
) -> Result<Vec<DisparityRow>> {
    let mut rows = Vec::new();
    for &id in datasets {
        rows.extend(analyze_dataset(id, n, seed)?);
    }
    Ok(rows)
}

/// The mislabel FP/FN drill-down of Section III: among tuples flagged as
/// mislabeled, the share that are predicted false positives (labeled
/// positive, should be negative) vs false negatives, per group.
#[derive(Debug, Clone)]
pub struct MislabelDrilldown {
    /// Dataset name.
    pub dataset: String,
    /// Group label.
    pub group: String,
    /// Flagged false positives in the privileged group.
    pub privileged_fp: u64,
    /// Flagged false negatives in the privileged group.
    pub privileged_fn: u64,
    /// Flagged false positives in the disadvantaged group.
    pub disadvantaged_fp: u64,
    /// Flagged false negatives in the disadvantaged group.
    pub disadvantaged_fn: u64,
    /// G² test on the FP/FN × group table.
    pub g_test: Option<GTestResult>,
}

impl MislabelDrilldown {
    /// FP share among the privileged group's flags.
    pub fn privileged_fp_share(&self) -> f64 {
        let total = self.privileged_fp + self.privileged_fn;
        if total == 0 {
            0.0
        } else {
            self.privileged_fp as f64 / total as f64
        }
    }

    /// FP share among the disadvantaged group's flags.
    pub fn disadvantaged_fp_share(&self) -> f64 {
        let total = self.disadvantaged_fp + self.disadvantaged_fn;
        if total == 0 {
            0.0
        } else {
            self.disadvantaged_fp as f64 / total as f64
        }
    }
}

/// Computes the drill-down for every single-attribute group of a dataset.
pub fn mislabel_drilldown(
    dataset: DatasetId,
    n: usize,
    seed: u64,
) -> Result<Vec<MislabelDrilldown>> {
    let frame = dataset.generate(n, seed)?;
    let spec = dataset.spec();
    let detector = MislabelDetector::fit(&frame, seed ^ 0xD47A)?;
    let (fp_rows, fn_rows) = detector.flag_directions();
    let mut out = Vec::new();
    for gs in spec.single_attribute_specs() {
        let groups = gs.evaluate(&frame)?;
        let count = |rows: &[usize], mask: &[bool]| rows.iter().filter(|&&i| mask[i]).count() as u64;
        let pfp = count(&fp_rows, &groups.privileged);
        let pfn = count(&fn_rows, &groups.privileged);
        let dfp = count(&fp_rows, &groups.disadvantaged);
        let dfn = count(&fn_rows, &groups.disadvantaged);
        out.push(MislabelDrilldown {
            dataset: dataset.name().to_string(),
            group: gs.label(),
            privileged_fp: pfp,
            privileged_fn: pfn,
            disadvantaged_fp: dfp,
            disadvantaged_fn: dfn,
            g_test: g_test_2x2(pfp, pfn, dfp, dfn),
        });
    }
    let _ = frame;
    Ok(out)
}

/// A convenience summary over an RQ1 analysis: of the significant
/// disparities, how many burden the disadvantaged group.
pub fn summarize(rows: &[DisparityRow], alpha: f64) -> (usize, usize) {
    let significant: Vec<&DisparityRow> = rows.iter().filter(|r| r.significant(alpha)).collect();
    let burden = significant.iter().filter(|r| r.burdens_disadvantaged()).count();
    (significant.len(), burden)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adult_missing_disparity_is_detected_and_significant() {
        let rows = analyze_dataset(DatasetId::Adult, 4000, 11).unwrap();
        let mv_sex: Vec<&DisparityRow> = rows
            .iter()
            .filter(|r| r.detector == "missing_values" && r.group == "sex")
            .collect();
        assert_eq!(mv_sex.len(), 1);
        let row = mv_sex[0];
        // The generator injects more missingness into the disadvantaged
        // group; the G² test must pick this up at this sample size.
        assert!(row.burdens_disadvantaged());
        assert!(row.significant(0.05), "p={:?}", row.g_test.map(|t| t.p_value));
    }

    #[test]
    fn heart_has_no_missing_rows_in_analysis() {
        let rows = analyze_dataset(DatasetId::Heart, 1500, 3).unwrap();
        assert!(rows.iter().all(|r| r.detector != "missing_values"));
        // But it has outlier and mislabel rows, incl. intersectional.
        assert!(rows.iter().any(|r| r.detector == "outliers-sd"));
        assert!(rows.iter().any(|r| r.detector == "mislabels"));
        assert!(rows.iter().any(|r| r.intersectional));
    }

    #[test]
    fn fractions_are_consistent() {
        let rows = analyze_dataset(DatasetId::German, 1200, 5).unwrap();
        for row in &rows {
            assert!(row.privileged_flagged <= row.privileged_total);
            assert!(row.disadvantaged_flagged <= row.disadvantaged_total);
            assert!((0.0..=1.0).contains(&row.privileged_fraction()));
            assert!((0.0..=1.0).contains(&row.disadvantaged_fraction()));
        }
        // Single-attribute groups partition: totals match the pool.
        let single: Vec<&DisparityRow> =
            rows.iter().filter(|r| !r.intersectional && r.detector == "outliers-iqr").collect();
        for row in single {
            assert_eq!(row.privileged_total + row.disadvantaged_total, 1200, "{}", row.group);
        }
    }

    #[test]
    fn drilldown_counts_flagged_tuples() {
        let dd = mislabel_drilldown(DatasetId::Heart, 1500, 9).unwrap();
        assert_eq!(dd.len(), 2); // sex and age
        for row in &dd {
            let total =
                row.privileged_fp + row.privileged_fn + row.disadvantaged_fp + row.disadvantaged_fn;
            assert!(total > 0, "{}: no flags at all", row.group);
            assert!((0.0..=1.0).contains(&row.privileged_fp_share()));
            assert!((0.0..=1.0).contains(&row.disadvantaged_fp_share()));
        }
    }

    #[test]
    fn summarize_counts_significant_rows() {
        let rows = analyze_dataset(DatasetId::Adult, 3000, 21).unwrap();
        let (sig, burden) = summarize(&rows, 0.05);
        assert!(sig >= 1);
        assert!(burden <= sig);
    }

    #[test]
    fn deterministic() {
        let a = analyze_dataset(DatasetId::German, 800, 2).unwrap();
        let b = analyze_dataset(DatasetId::German, 800, 2).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.privileged_flagged, y.privileged_flagged);
            assert_eq!(x.disadvantaged_flagged, y.disadvantaged_flagged);
        }
    }
}
