//! Progress telemetry and per-phase wall-time accounting for study runs.
//!
//! The study runner schedules individual evaluation units — one (model,
//! variant-arm, seed) fit per unit — across the persistent worker pool;
//! both helpers here are lock-free so any worker can report:
//!
//! * [`ProgressTracker`] — atomic done/total + evaluation counters that
//!   emit periodic one-line progress reports (units done, evals/s, ETA)
//!   to stderr, rate-limited to one line per interval. Ticking per unit
//!   instead of per task makes the ETA meaningful again: the smoke grid
//!   has only 10 tasks but hundreds of units, so estimates move smoothly
//!   instead of jumping at task granularity;
//! * [`PhaseAccumulator`] — atomic nanosecond counters for the four
//!   phases of a task (sample / detect+repair / encode / train-eval),
//!   aggregated across tasks into a [`PhaseSeconds`] summary that the
//!   study result carries and `studybench` exports.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// The five phases of one (dataset, split) task, in execution order
/// (`Rectify` only runs for model-side repair studies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StudyPhase {
    /// Pool sampling and train/test splitting.
    Sample,
    /// Error detection and repair (all variants of the split).
    Prepare,
    /// Feature encoding and group-mask evaluation of every arm.
    Encode,
    /// Model tuning, training and scoring across models and seeds.
    TrainEval,
    /// Post-training fairness rectification of tree-structured models.
    Rectify,
}

impl StudyPhase {
    /// Stable lowercase name (used in exports).
    pub fn name(self) -> &'static str {
        match self {
            StudyPhase::Sample => "sample",
            StudyPhase::Prepare => "prepare",
            StudyPhase::Encode => "encode",
            StudyPhase::TrainEval => "train_eval",
            StudyPhase::Rectify => "rectify",
        }
    }

    fn index(self) -> usize {
        match self {
            StudyPhase::Sample => 0,
            StudyPhase::Prepare => 1,
            StudyPhase::Encode => 2,
            StudyPhase::TrainEval => 3,
            StudyPhase::Rectify => 4,
        }
    }
}

/// Cumulative per-phase wall time in seconds, summed over all executed
/// tasks (tasks run in parallel, so the sum can exceed elapsed time).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseSeconds {
    /// Pool sampling and splitting.
    pub sample: f64,
    /// Detection and repair of every variant.
    pub prepare: f64,
    /// Feature encoding and group masks.
    pub encode: f64,
    /// Model tuning, training and scoring.
    pub train_eval: f64,
    /// Post-training rectification (0 for data-side studies).
    pub rectify: f64,
}

impl PhaseSeconds {
    /// Total time across all five phases.
    pub fn total(&self) -> f64 {
        self.sample + self.prepare + self.encode + self.train_eval + self.rectify
    }

    /// Adds another summary (e.g. when aggregating several studies).
    pub fn accumulate(&mut self, other: &PhaseSeconds) {
        self.sample += other.sample;
        self.prepare += other.prepare;
        self.encode += other.encode;
        self.train_eval += other.train_eval;
        self.rectify += other.rectify;
    }
}

/// Thread-safe accumulator of per-phase nanoseconds.
#[derive(Debug, Default)]
pub struct PhaseAccumulator {
    nanos: [AtomicU64; 5],
}

impl PhaseAccumulator {
    /// Adds `elapsed` to a phase's counter.
    pub fn add(&self, phase: StudyPhase, elapsed: Duration) {
        self.nanos[phase.index()].fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Snapshot of the accumulated times in seconds.
    pub fn seconds(&self) -> PhaseSeconds {
        let s = |i: usize| self.nanos[i].load(Ordering::Relaxed) as f64 / 1e9;
        PhaseSeconds { sample: s(0), prepare: s(1), encode: s(2), train_eval: s(3), rectify: s(4) }
    }
}

/// A point-in-time view of study progress.
#[derive(Debug, Clone, Copy)]
pub struct ProgressSnapshot {
    /// Evaluation units finished (executed, replayed from a journal, or
    /// skipped because their task failed).
    pub done_units: usize,
    /// Total evaluation units in the study grid.
    pub total_units: usize,
    /// Model evaluations performed so far (excludes journal replays).
    pub evals: usize,
    /// Time since the tracker was created.
    pub elapsed: Duration,
}

impl ProgressSnapshot {
    /// Model evaluations per second of elapsed wall time.
    pub fn evals_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.evals as f64 / secs
        } else {
            0.0
        }
    }

    /// Estimated time to completion from the mean unit duration so far.
    /// `None` until at least one unit has finished.
    pub fn eta(&self) -> Option<Duration> {
        if self.done_units == 0 || self.total_units == 0 {
            return None;
        }
        let remaining = self.total_units.saturating_sub(self.done_units);
        Some(self.elapsed.mul_f64(remaining as f64 / self.done_units as f64))
    }

    /// One-line human-readable rendering.
    pub fn line(&self) -> String {
        let eta = match self.eta() {
            Some(d) => format!("{:.0}s", d.as_secs_f64()),
            None => "?".to_string(),
        };
        format!(
            "{}/{} units | {} evals | {:.1} evals/s | ETA {eta}",
            self.done_units,
            self.total_units,
            self.evals,
            self.evals_per_sec()
        )
    }
}

/// Atomic progress tracker; emits rate-limited lines to stderr when
/// enabled (the final task always emits).
#[derive(Debug)]
pub struct ProgressTracker {
    enabled: bool,
    total_units: usize,
    done: AtomicUsize,
    evals: AtomicUsize,
    start: Instant,
    interval: Duration,
    last_emit_nanos: AtomicU64,
}

impl ProgressTracker {
    /// A tracker over `total_units` evaluation units. With
    /// `enabled == false` it only counts (snapshots still work) and
    /// never prints.
    pub fn new(total_units: usize, enabled: bool, interval: Duration) -> ProgressTracker {
        ProgressTracker {
            enabled,
            total_units,
            done: AtomicUsize::new(0),
            evals: AtomicUsize::new(0),
            start: Instant::now(),
            interval,
            last_emit_nanos: AtomicU64::new(0),
        }
    }

    /// Records `units` finished evaluation units and their model
    /// evaluations (`evals` is 0 for journal replays and failed tasks,
    /// whose remaining units tick in one batch), emitting a progress
    /// line when the interval has elapsed.
    pub fn advance(&self, units: usize, evals: usize) {
        if units == 0 {
            return;
        }
        let done = self.done.fetch_add(units, Ordering::Relaxed) + units;
        self.evals.fetch_add(evals, Ordering::Relaxed);
        if !self.enabled {
            return;
        }
        let now = self.start.elapsed().as_nanos() as u64;
        let last = self.last_emit_nanos.load(Ordering::Relaxed);
        let is_final = done == self.total_units;
        let due = now.saturating_sub(last) >= self.interval.as_nanos() as u64;
        if !is_final && !due {
            return;
        }
        // One thread wins the emit; losers skip (the final unit prints
        // unconditionally so the 100% line is never lost).
        let won = self
            .last_emit_nanos
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok();
        if won || is_final {
            eprintln!("progress: {}", self.snapshot().line());
        }
    }

    /// Current counters.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            done_units: self.done.load(Ordering::Relaxed),
            total_units: self.total_units,
            evals: self.evals.load(Ordering::Relaxed),
            elapsed: self.start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_accumulator_sums_across_threads() {
        let acc = PhaseAccumulator::default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    acc.add(StudyPhase::Sample, Duration::from_millis(10));
                    acc.add(StudyPhase::TrainEval, Duration::from_millis(30));
                });
            }
        });
        let s = acc.seconds();
        assert!((s.sample - 0.04).abs() < 1e-9);
        assert!((s.train_eval - 0.12).abs() < 1e-9);
        assert_eq!(s.prepare, 0.0);
        assert!((s.total() - 0.16).abs() < 1e-9);
    }

    #[test]
    fn phase_seconds_accumulate() {
        let mut a = PhaseSeconds {
            sample: 1.0,
            prepare: 2.0,
            encode: 3.0,
            train_eval: 4.0,
            rectify: 1.0,
        };
        a.accumulate(&PhaseSeconds {
            sample: 0.5,
            prepare: 0.5,
            encode: 0.5,
            train_eval: 0.5,
            rectify: 1.0,
        });
        assert_eq!(a.total(), 14.0);
    }

    #[test]
    fn snapshot_math() {
        let s = ProgressSnapshot {
            done_units: 5,
            total_units: 20,
            evals: 100,
            elapsed: Duration::from_secs(10),
        };
        assert!((s.evals_per_sec() - 10.0).abs() < 1e-9);
        assert_eq!(s.eta().unwrap(), Duration::from_secs(30));
        let line = s.line();
        assert!(line.contains("5/20 units"), "{line}");
        assert!(line.contains("ETA 30s"), "{line}");
    }

    #[test]
    fn snapshot_edge_cases() {
        let s = ProgressSnapshot {
            done_units: 0,
            total_units: 4,
            evals: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(s.evals_per_sec(), 0.0);
        assert!(s.eta().is_none());
        assert!(s.line().contains("ETA ?"));
    }

    #[test]
    fn first_tick_line_is_finite_with_unknown_eta() {
        // The very first tick: nothing done, (near-)zero elapsed. The
        // rendered line must contain no NaN/inf from 0/0 rate or ETA math,
        // and the ETA must read as unknown, not garbage.
        let t = ProgressTracker::new(100, false, Duration::from_secs(60));
        let s = t.snapshot();
        assert_eq!(s.done_units, 0);
        assert!(s.eta().is_none(), "ETA must be unknown before the first unit");
        assert!(s.evals_per_sec().is_finite());
        let line = s.line();
        assert!(line.contains("0/100 units"), "{line}");
        assert!(line.contains("ETA ?"), "{line}");
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");

        // Evals recorded at exactly zero elapsed must not divide by zero.
        let s = ProgressSnapshot {
            done_units: 0,
            total_units: 100,
            evals: 7,
            elapsed: Duration::ZERO,
        };
        assert_eq!(s.evals_per_sec(), 0.0);
        assert!(s.eta().is_none());
        let line = s.line();
        assert!(line.contains("ETA ?") && !line.contains("NaN") && !line.contains("inf"), "{line}");
    }

    #[test]
    fn tracker_counts_without_printing() {
        let t = ProgressTracker::new(30, false, Duration::from_secs(60));
        t.advance(1, 10);
        t.advance(4, 0);
        t.advance(0, 99); // a zero-unit tick is a no-op
        let s = t.snapshot();
        assert_eq!(s.done_units, 5);
        assert_eq!(s.evals, 10);
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<&str> = [
            StudyPhase::Sample,
            StudyPhase::Prepare,
            StudyPhase::Encode,
            StudyPhase::TrainEval,
            StudyPhase::Rectify,
        ]
        .into_iter()
        .map(StudyPhase::name)
        .collect();
        assert_eq!(names, ["sample", "prepare", "encode", "train_eval", "rectify"]);
    }
}
