//! Machine-readable exports of analysis artifacts: Markdown (for reports
//! and READMEs) and CSV (for external plotting) renderings of the impact
//! tables, RQ1 disparity rows, and the model comparison.

use crate::deepdive::ModelImpactRow;
use crate::impact::Impact;
use crate::rq1::DisparityRow;
use crate::tables::ImpactTable;
use std::fmt::Write;

const AXIS: [Impact; 3] = [Impact::Worse, Impact::Insignificant, Impact::Better];

/// Markdown rendering of a 3×3 impact table (fairness rows × accuracy
/// columns, `percent% (count)` cells).
pub fn impact_table_markdown(title: &str, table: &ImpactTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "**{title}** (n = {})\n", table.total());
    let _ = writeln!(out, "| fairness \\ accuracy | worse | insignificant | better |");
    let _ = writeln!(out, "|---|---|---|---|");
    for f in AXIS {
        let mut row = format!("| {} |", f.label());
        for a in AXIS {
            let _ = write!(row, " {:.1}% ({}) |", table.percentage(f, a), table.cell(f, a));
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// CSV rendering of a 3×3 impact table: one row per cell with
/// `fairness,accuracy,count,percent` columns.
pub fn impact_table_csv(table: &ImpactTable) -> String {
    let mut out = String::from("fairness,accuracy,count,percent\n");
    for f in AXIS {
        for a in AXIS {
            let _ = writeln!(
                out,
                "{},{},{},{:.4}",
                f.label(),
                a.label(),
                table.cell(f, a),
                table.percentage(f, a)
            );
        }
    }
    out
}

/// CSV rendering of RQ1 disparity rows (all rows; filtering by
/// significance is the consumer's choice, unlike the paper-format text
/// rendering which mimics the figures).
pub fn disparities_csv(rows: &[DisparityRow]) -> String {
    let mut out = String::from(
        "dataset,detector,group,intersectional,priv_flagged,priv_total,dis_flagged,dis_total,g2,p_value\n",
    );
    for r in rows {
        let (g2, p) = r
            .g_test
            .map_or((String::new(), String::new()), |t| {
                (format!("{:.6}", t.g2), format!("{:.6e}", t.p_value))
            });
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{}",
            r.dataset,
            r.detector,
            r.group,
            r.intersectional,
            r.privileged_flagged,
            r.privileged_total,
            r.disadvantaged_flagged,
            r.disadvantaged_total,
            g2,
            p
        );
    }
    out
}

/// Markdown rendering of the model comparison (Table XIV).
pub fn model_table_markdown(rows: &[ModelImpactRow]) -> String {
    let mut out = String::from(
        "| model | fairness worse | fairness better | fairness & accuracy better |\n|---|---|---|---|\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {:.1}% ({}) | {:.1}% ({}) | {:.1}% ({}) |",
            r.model.name(),
            r.pct(r.fairness_worse),
            r.fairness_worse,
            r.pct(r.fairness_better),
            r.fairness_better,
            r.pct(r.both_better),
            r.both_better
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use statskit::GTestResult;

    fn demo_table() -> ImpactTable {
        let mut t = ImpactTable::default();
        t.add(Impact::Worse, Impact::Better);
        t.add(Impact::Better, Impact::Better);
        t.add(Impact::Better, Impact::Better);
        t.add(Impact::Insignificant, Impact::Worse);
        t
    }

    #[test]
    fn markdown_table_has_all_cells() {
        let md = impact_table_markdown("Table II", &demo_table());
        assert!(md.contains("**Table II** (n = 4)"));
        assert!(md.contains("| worse | 0.0% (0) | 0.0% (0) | 25.0% (1) |"));
        assert!(md.contains("| better | 0.0% (0) | 0.0% (0) | 50.0% (2) |"));
        // Valid markdown table: header separator present.
        assert!(md.contains("|---|---|---|---|"));
    }

    #[test]
    fn csv_table_has_nine_rows() {
        let csv = impact_table_csv(&demo_table());
        assert_eq!(csv.lines().count(), 10); // header + 9 cells
        assert!(csv.starts_with("fairness,accuracy,count,percent"));
        assert!(csv.contains("better,better,2,50.0000"));
    }

    #[test]
    fn disparities_csv_includes_test_stats() {
        let rows = vec![DisparityRow {
            dataset: "adult".to_string(),
            detector: "missing_values".to_string(),
            group: "sex".to_string(),
            intersectional: false,
            privileged_flagged: 10,
            privileged_total: 100,
            disadvantaged_flagged: 30,
            disadvantaged_total: 100,
            g_test: Some(GTestResult { g2: 12.34, p_value: 4.5e-4, df: 1.0 }),
        }];
        let csv = disparities_csv(&rows);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("adult,missing_values,sex,false,10,100,30,100,12.34"));
        assert!(csv.contains("4.5"));
        // Degenerate test serialises as empty fields.
        let mut no_test = rows;
        no_test[0].g_test = None;
        let csv = disparities_csv(&no_test);
        assert!(csv.trim_end().ends_with(",,"));
    }

    #[test]
    fn model_markdown_formats_percentages() {
        let rows = vec![ModelImpactRow {
            model: mlcore::ModelKind::Knn,
            n: 10,
            fairness_worse: 3,
            fairness_better: 2,
            both_better: 1,
        }];
        let md = model_table_markdown(&rows);
        assert!(md.contains("| knn | 30.0% (3) | 20.0% (2) | 10.0% (1) |"));
    }
}
