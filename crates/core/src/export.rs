//! Machine-readable exports of analysis artifacts: Markdown (for reports
//! and READMEs) and CSV (for external plotting) renderings of the impact
//! tables, RQ1 disparity rows, and the model comparison, plus the
//! deterministic JSON export of full study results.

use crate::deepdive::ModelImpactRow;
use crate::impact::Impact;
use crate::results::failed_task_record;
use crate::rq1::DisparityRow;
use crate::runner::StudyResults;
use crate::tables::ImpactTable;
use serde_json::{json, Map, Value};
use std::fmt::Write;

const AXIS: [Impact; 3] = [Impact::Worse, Impact::Insignificant, Impact::Better];

/// Markdown rendering of a 3×3 impact table (fairness rows × accuracy
/// columns, `percent% (count)` cells).
pub fn impact_table_markdown(title: &str, table: &ImpactTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "**{title}** (n = {})\n", table.total());
    let _ = writeln!(out, "| fairness \\ accuracy | worse | insignificant | better |");
    let _ = writeln!(out, "|---|---|---|---|");
    for f in AXIS {
        let mut row = format!("| {} |", f.label());
        for a in AXIS {
            let _ = write!(row, " {:.1}% ({}) |", table.percentage(f, a), table.cell(f, a));
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// CSV rendering of a 3×3 impact table: one row per cell with
/// `fairness,accuracy,count,percent` columns.
pub fn impact_table_csv(table: &ImpactTable) -> String {
    let mut out = String::from("fairness,accuracy,count,percent\n");
    for f in AXIS {
        for a in AXIS {
            let _ = writeln!(
                out,
                "{},{},{},{:.4}",
                f.label(),
                a.label(),
                table.cell(f, a),
                table.percentage(f, a)
            );
        }
    }
    out
}

/// CSV rendering of RQ1 disparity rows (all rows; filtering by
/// significance is the consumer's choice, unlike the paper-format text
/// rendering which mimics the figures).
pub fn disparities_csv(rows: &[DisparityRow]) -> String {
    let mut out = String::from(
        "dataset,detector,group,intersectional,priv_flagged,priv_total,dis_flagged,dis_total,g2,p_value\n",
    );
    for r in rows {
        let (g2, p) = r
            .g_test
            .map_or((String::new(), String::new()), |t| {
                (format!("{:.6}", t.g2), format!("{:.6e}", t.p_value))
            });
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{}",
            r.dataset,
            r.detector,
            r.group,
            r.intersectional,
            r.privileged_flagged,
            r.privileged_total,
            r.disadvantaged_flagged,
            r.disadvantaged_total,
            g2,
            p
        );
    }
    out
}

/// Markdown rendering of the model comparison (Table XIV).
pub fn model_table_markdown(rows: &[ModelImpactRow]) -> String {
    let mut out = String::from(
        "| model | fairness worse | fairness better | fairness & accuracy better |\n|---|---|---|---|\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {:.1}% ({}) | {:.1}% ({}) | {:.1}% ({}) |",
            r.model.name(),
            r.pct(r.fairness_worse),
            r.fairness_worse,
            r.pct(r.fairness_better),
            r.fairness_better,
            r.pct(r.both_better),
            r.both_better
        );
    }
    out
}

/// Score vector as a JSON array; non-finite values (undefined
/// disparities) serialise as `null`.
fn score_array(xs: &[f64]) -> Value {
    Value::Array(xs.iter().map(|&x| Value::from(x)).collect())
}

/// Deterministic JSON export of a study's results.
///
/// Contains only run-content fields — configuration scores, the
/// degradation summary and the evaluation count. Wall-clock measurements
/// (per-phase timings) and journal statistics are deliberately excluded,
/// so an uninterrupted run and a killed-then-resumed run of the same
/// configuration export **byte-identical** documents (the crash-resume CI
/// smoke compares them with `cmp`).
pub fn study_results_json(results: &StudyResults) -> String {
    let configs: Vec<Value> = results
        .configs
        .iter()
        .map(|c| {
            let fairness: Vec<Value> = c
                .fairness
                .iter()
                .map(|f| {
                    let mut entry = Map::new();
                    entry.insert("group".to_string(), json!(f.group));
                    entry.insert("intersectional".to_string(), json!(f.intersectional));
                    entry.insert("metric".to_string(), json!(f.metric.name()));
                    entry.insert("dirty".to_string(), score_array(&f.dirty));
                    entry.insert("repaired".to_string(), score_array(&f.repaired));
                    Value::Object(entry)
                })
                .collect();
            let mut entry = Map::new();
            entry.insert("key".to_string(), json!(c.config.key()));
            entry.insert("dirty_accuracy".to_string(), score_array(&c.dirty_accuracy));
            entry.insert("repaired_accuracy".to_string(), score_array(&c.repaired_accuracy));
            entry.insert("fairness".to_string(), Value::Array(fairness));
            Value::Object(entry)
        })
        .collect();
    let failed: Vec<Value> = results.failed_tasks.iter().map(failed_task_record).collect();
    let doc = json!({
        "error": results.error.name(),
        "repair_side": results.repair_side.name(),
        "scale": {
            "pool_size": results.scale.pool_size,
            "sample_size": results.scale.sample_size,
            "n_splits": results.scale.n_splits,
            "n_model_seeds": results.scale.n_model_seeds,
            "test_fraction": results.scale.test_fraction,
            "cv_folds": results.scale.cv_folds,
        },
        "degraded": results.degraded(),
        "failed_tasks": Value::Array(failed),
        "n_model_evaluations": results.n_model_evaluations(),
        "configs": Value::Array(configs),
    });
    // lint:allow(P001, serialising an in-memory Value tree cannot fail)
    serde_json::to_string_pretty(&doc).expect("study export serialises")
}

#[cfg(test)]
mod tests {
    use super::*;
    use statskit::GTestResult;

    fn demo_table() -> ImpactTable {
        let mut t = ImpactTable::default();
        t.add(Impact::Worse, Impact::Better);
        t.add(Impact::Better, Impact::Better);
        t.add(Impact::Better, Impact::Better);
        t.add(Impact::Insignificant, Impact::Worse);
        t
    }

    #[test]
    fn markdown_table_has_all_cells() {
        let md = impact_table_markdown("Table II", &demo_table());
        assert!(md.contains("**Table II** (n = 4)"));
        assert!(md.contains("| worse | 0.0% (0) | 0.0% (0) | 25.0% (1) |"));
        assert!(md.contains("| better | 0.0% (0) | 0.0% (0) | 50.0% (2) |"));
        // Valid markdown table: header separator present.
        assert!(md.contains("|---|---|---|---|"));
    }

    #[test]
    fn csv_table_has_nine_rows() {
        let csv = impact_table_csv(&demo_table());
        assert_eq!(csv.lines().count(), 10); // header + 9 cells
        assert!(csv.starts_with("fairness,accuracy,count,percent"));
        assert!(csv.contains("better,better,2,50.0000"));
    }

    #[test]
    fn disparities_csv_includes_test_stats() {
        let rows = vec![DisparityRow {
            dataset: "adult".to_string(),
            detector: "missing_values".to_string(),
            group: "sex".to_string(),
            intersectional: false,
            privileged_flagged: 10,
            privileged_total: 100,
            disadvantaged_flagged: 30,
            disadvantaged_total: 100,
            g_test: Some(GTestResult { g2: 12.34, p_value: 4.5e-4, df: 1.0 }),
        }];
        let csv = disparities_csv(&rows);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("adult,missing_values,sex,false,10,100,30,100,12.34"));
        assert!(csv.contains("4.5"));
        // Degenerate test serialises as empty fields.
        let mut no_test = rows;
        no_test[0].g_test = None;
        let csv = disparities_csv(&no_test);
        assert!(csv.trim_end().ends_with(",,"));
    }

    #[test]
    fn study_json_is_deterministic_and_excludes_wall_clock() {
        use crate::config::{ExperimentConfig, RepairSpec, StudyScale};
        use crate::results::FailedTask;
        use crate::runner::{ConfigScores, GroupMetricScores, StudyResults};
        use datasets::{DatasetId, ErrorType};
        use fairness::FairnessMetric;
        use mlcore::ModelKind;

        let mut results = StudyResults::new(
            ErrorType::Mislabels,
            StudyScale::smoke(),
            vec![ConfigScores {
                config: ExperimentConfig {
                    dataset: DatasetId::German,
                    model: ModelKind::LogReg,
                    repair: RepairSpec::Mislabels,
                },
                dirty_accuracy: vec![0.7, 0.71],
                repaired_accuracy: vec![0.8, 0.81],
                fairness: vec![GroupMetricScores {
                    group: "sex".to_string(),
                    intersectional: false,
                    metric: FairnessMetric::PredictiveParity,
                    dirty: vec![0.1, f64::NAN],
                    repaired: vec![0.2, 0.3],
                }],
            }],
        );
        results.failed_tasks.push(FailedTask {
            dataset: "german".to_string(),
            split: 1,
            seed: 42,
            error: "boom".to_string(),
        });
        let a = study_results_json(&results);
        assert_eq!(a, study_results_json(&results));
        assert!(a.contains("german/mislabels/flip_labels/log-reg"), "{a}");
        assert!(a.contains("null"), "undefined disparity must export as null: {a}");
        assert!(a.contains("\"degraded\": true"), "{a}");
        assert!(a.contains("\"repair_side\": \"data\""), "{a}");
        assert!(a.contains("\"boom\""), "{a}");
        // Wall-clock fields stay out of the export (byte-identity on
        // resume) — and journal statistics likewise.
        assert!(!a.contains("phase"), "{a}");
        assert!(!a.contains("journal"), "{a}");
        // Timings differ between runs but must not affect the export.
        results.phases.sample = 123.0;
        results.journal_hits = 7;
        assert_eq!(a, study_results_json(&results));
    }

    #[test]
    fn model_markdown_formats_percentages() {
        let rows = vec![ModelImpactRow {
            model: mlcore::ModelKind::Knn,
            n: 10,
            fairness_worse: 3,
            fairness_better: 2,
            both_better: 1,
        }];
        let md = model_table_markdown(&rows);
        assert!(md.contains("| knn | 30.0% (3) | 20.0% (2) | 10.0% (1) |"));
    }
}
