//! The Section VI deep-dive analyses:
//!
//! * **case analysis** — a case is (fairness metric × dataset-with-
//!   sensitive-attribute × error type); for each case, does *some* cleaning
//!   technique avoid worsening fairness / improve fairness / improve both
//!   fairness and accuracy? (The paper finds 37 / 23 / 17 out of 40.)
//! * **detector comparison** — which outlier detection strategy worsens
//!   fairness most often (the paper: iqr 50% vs sd 25% vs if 33%);
//! * **categorical-imputation comparison** — dummy vs mode imputation
//!   fairness wins (the paper: 27 vs 22);
//! * **model comparison (Table XIV)** — per model: how often auto-cleaning
//!   makes fairness worse / better / fairness-and-accuracy better.

use crate::config::RepairSpec;
use crate::impact::Impact;
use crate::runner::StudyResults;
use crate::tables::{classify_study, ClassifiedEntry};
use cleaning::repair::CatImpute;
use fairness::FairnessMetric;
use mlcore::ModelKind;
use std::collections::BTreeMap;

/// Classified entries of several studies pooled together (both headline
/// metrics, single-attribute groups unless noted).
pub fn pooled_entries(
    studies: &[StudyResults],
    metrics: &[FairnessMetric],
    intersectional: bool,
    alpha: f64,
) -> Vec<ClassifiedEntry> {
    let mut out = Vec::new();
    for study in studies {
        for &metric in metrics {
            out.extend(classify_study(study, metric, intersectional, alpha));
        }
    }
    out
}

/// Outcome of the per-case analysis.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Metric of the case.
    pub metric: FairnessMetric,
    /// Dataset name.
    pub dataset: String,
    /// Sensitive attribute (group label).
    pub group: String,
    /// Error type name.
    pub error: String,
    /// Number of techniques evaluated for the case.
    pub n_techniques: usize,
    /// Some technique does not worsen fairness.
    pub has_non_worsening: bool,
    /// Some technique improves fairness.
    pub has_improving: bool,
    /// Some technique improves fairness and accuracy simultaneously.
    pub has_win_win: bool,
}

/// Groups classified entries into cases and computes the §VI counts.
pub fn case_analysis(entries: &[ClassifiedEntry]) -> Vec<CaseOutcome> {
    let mut cases: BTreeMap<(String, String, String, String), Vec<&ClassifiedEntry>> =
        BTreeMap::new();
    for e in entries {
        let key = (
            e.metric.name().to_string(),
            e.config.dataset.name().to_string(),
            e.group.clone(),
            e.config.repair.error_type().name().to_string(),
        );
        cases.entry(key).or_default().push(e);
    }
    cases
        .into_iter()
        .map(|((metric, dataset, group, error), entries)| CaseOutcome {
            // lint:allow(P001, the key was produced by FairnessMetric::name; parse is its inverse)
            metric: FairnessMetric::parse(&metric).expect("metric name round-trips"),
            dataset,
            group,
            error,
            n_techniques: entries.len(),
            has_non_worsening: entries.iter().any(|e| e.fairness != Impact::Worse),
            has_improving: entries.iter().any(|e| e.fairness == Impact::Better),
            has_win_win: entries
                .iter()
                .any(|e| e.fairness == Impact::Better && e.accuracy == Impact::Better),
        })
        .collect()
}

/// Summary counts of a case analysis: `(total, non_worsening, improving,
/// win_win)` — the paper's "37 / 23 / 17 out of 40".
pub fn case_summary(cases: &[CaseOutcome]) -> (usize, usize, usize, usize) {
    (
        cases.len(),
        cases.iter().filter(|c| c.has_non_worsening).count(),
        cases.iter().filter(|c| c.has_improving).count(),
        cases.iter().filter(|c| c.has_win_win).count(),
    )
}

/// Per-detector fairness-impact shares, for the outlier detector
/// comparison: returns `(detector, worse_fraction, better_fraction, n)`.
pub fn detector_comparison(entries: &[ClassifiedEntry]) -> Vec<(String, f64, f64, usize)> {
    let mut by_detector: BTreeMap<String, (usize, usize, usize)> = BTreeMap::new();
    for e in entries {
        if let RepairSpec::Outliers { detector, .. } = e.config.repair {
            let slot = by_detector.entry(detector.name().to_string()).or_default();
            slot.2 += 1;
            match e.fairness {
                Impact::Worse => slot.0 += 1,
                Impact::Better => slot.1 += 1,
                Impact::Insignificant => {}
            }
        }
    }
    by_detector
        .into_iter()
        .map(|(name, (worse, better, n))| {
            (name, worse as f64 / n.max(1) as f64, better as f64 / n.max(1) as f64, n)
        })
        .collect()
}

/// Dummy-vs-mode categorical imputation comparison: counts of
/// fairness-improving entries per strategy (the paper: dummy 27 vs other
/// 22).
pub fn categorical_imputation_comparison(entries: &[ClassifiedEntry]) -> (usize, usize) {
    let mut dummy_wins = 0;
    let mut mode_wins = 0;
    for e in entries {
        if let RepairSpec::Missing(repair) = e.config.repair {
            if e.fairness == Impact::Better {
                match repair.cat {
                    CatImpute::Dummy => dummy_wins += 1,
                    CatImpute::Mode => mode_wins += 1,
                }
            }
        }
    }
    (dummy_wins, mode_wins)
}

/// One row of Table XIV.
#[derive(Debug, Clone)]
pub struct ModelImpactRow {
    /// The model.
    pub model: ModelKind,
    /// Entries evaluated.
    pub n: usize,
    /// Count with fairness worsened.
    pub fairness_worse: usize,
    /// Count with fairness improved.
    pub fairness_better: usize,
    /// Count with fairness *and* accuracy improved.
    pub both_better: usize,
}

impl ModelImpactRow {
    /// Percentage helpers for rendering.
    pub fn pct(&self, count: usize) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.n as f64
        }
    }
}

/// Builds Table XIV: per-model impact of auto-cleaning on fairness and
/// accuracy over all pooled entries.
pub fn model_comparison(entries: &[ClassifiedEntry]) -> Vec<ModelImpactRow> {
    ModelKind::all()
        .iter()
        .map(|&model| {
            let mine: Vec<&ClassifiedEntry> =
                entries.iter().filter(|e| e.config.model == model).collect();
            ModelImpactRow {
                model,
                n: mine.len(),
                fairness_worse: mine.iter().filter(|e| e.fairness == Impact::Worse).count(),
                fairness_better: mine.iter().filter(|e| e.fairness == Impact::Better).count(),
                both_better: mine
                    .iter()
                    .filter(|e| e.fairness == Impact::Better && e.accuracy == Impact::Better)
                    .count(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use cleaning::detect::DetectorKind;
    use cleaning::repair::{MissingRepair, NumImpute, OutlierRepair};
    use datasets::DatasetId;

    fn entry(
        repair: RepairSpec,
        model: ModelKind,
        metric: FairnessMetric,
        fairness: Impact,
        accuracy: Impact,
    ) -> ClassifiedEntry {
        ClassifiedEntry {
            config: ExperimentConfig { dataset: DatasetId::German, model, repair },
            group: "sex".to_string(),
            intersectional: false,
            metric,
            fairness,
            accuracy,
        }
    }

    #[test]
    fn case_analysis_aggregates_per_case() {
        let pp = FairnessMetric::PredictiveParity;
        let entries = vec![
            entry(RepairSpec::Mislabels, ModelKind::LogReg, pp, Impact::Worse, Impact::Better),
            entry(RepairSpec::Mislabels, ModelKind::Knn, pp, Impact::Better, Impact::Better),
            entry(RepairSpec::Mislabels, ModelKind::Gbdt, pp, Impact::Insignificant, Impact::Worse),
        ];
        let cases = case_analysis(&entries);
        assert_eq!(cases.len(), 1);
        let c = &cases[0];
        assert_eq!(c.n_techniques, 3);
        assert!(c.has_non_worsening);
        assert!(c.has_improving);
        assert!(c.has_win_win);
        assert_eq!(case_summary(&cases), (1, 1, 1, 1));
    }

    #[test]
    fn case_without_any_improvement() {
        let eo = FairnessMetric::EqualOpportunity;
        let entries = vec![
            entry(RepairSpec::Mislabels, ModelKind::LogReg, eo, Impact::Worse, Impact::Better),
            entry(RepairSpec::Mislabels, ModelKind::Knn, eo, Impact::Worse, Impact::Better),
        ];
        let cases = case_analysis(&entries);
        assert_eq!(case_summary(&cases), (1, 0, 0, 0));
    }

    #[test]
    fn detector_comparison_counts_worse_shares() {
        let pp = FairnessMetric::PredictiveParity;
        let iqr = RepairSpec::Outliers {
            detector: DetectorKind::OutliersIqr { k: 1.5 },
            repair: OutlierRepair { strategy: NumImpute::Mean },
        };
        let sd = RepairSpec::Outliers {
            detector: DetectorKind::OutliersSd { n_std: 3.0 },
            repair: OutlierRepair { strategy: NumImpute::Mean },
        };
        let entries = vec![
            entry(iqr, ModelKind::LogReg, pp, Impact::Worse, Impact::Worse),
            entry(iqr, ModelKind::Knn, pp, Impact::Worse, Impact::Worse),
            entry(sd, ModelKind::LogReg, pp, Impact::Insignificant, Impact::Worse),
            entry(sd, ModelKind::Knn, pp, Impact::Better, Impact::Worse),
        ];
        let cmp = detector_comparison(&entries);
        assert_eq!(cmp.len(), 2);
        let iqr_row = cmp.iter().find(|(n, ..)| n == "outliers-iqr").unwrap();
        assert!((iqr_row.1 - 1.0).abs() < 1e-12);
        let sd_row = cmp.iter().find(|(n, ..)| n == "outliers-sd").unwrap();
        assert!((sd_row.1 - 0.0).abs() < 1e-12);
        assert!((sd_row.2 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn imputation_comparison_counts_wins_by_cat_strategy() {
        let pp = FairnessMetric::PredictiveParity;
        let dummy = RepairSpec::Missing(MissingRepair {
            num: NumImpute::Mean,
            cat: CatImpute::Dummy,
        });
        let mode = RepairSpec::Missing(MissingRepair {
            num: NumImpute::Mean,
            cat: CatImpute::Mode,
        });
        let entries = vec![
            entry(dummy, ModelKind::LogReg, pp, Impact::Better, Impact::Better),
            entry(dummy, ModelKind::Knn, pp, Impact::Better, Impact::Worse),
            entry(mode, ModelKind::LogReg, pp, Impact::Better, Impact::Better),
            entry(mode, ModelKind::Knn, pp, Impact::Worse, Impact::Better),
        ];
        assert_eq!(categorical_imputation_comparison(&entries), (2, 1));
    }

    #[test]
    fn model_comparison_builds_table_xiv_rows() {
        let pp = FairnessMetric::PredictiveParity;
        let entries = vec![
            entry(RepairSpec::Mislabels, ModelKind::LogReg, pp, Impact::Better, Impact::Better),
            entry(RepairSpec::Mislabels, ModelKind::LogReg, pp, Impact::Worse, Impact::Better),
            entry(RepairSpec::Mislabels, ModelKind::Gbdt, pp, Impact::Worse, Impact::Worse),
        ];
        let rows = model_comparison(&entries);
        assert_eq!(rows.len(), 3);
        let logreg = rows.iter().find(|r| r.model == ModelKind::LogReg).unwrap();
        assert_eq!(logreg.n, 2);
        assert_eq!(logreg.fairness_worse, 1);
        assert_eq!(logreg.fairness_better, 1);
        assert_eq!(logreg.both_better, 1);
        assert!((logreg.pct(logreg.both_better) - 50.0).abs() < 1e-12);
        let knn = rows.iter().find(|r| r.model == ModelKind::Knn).unwrap();
        assert_eq!(knn.n, 0);
        assert_eq!(knn.pct(0), 0.0);
    }
}
