//! CleanML-style JSON result records.
//!
//! The paper (Section IV) shows the result schema: per configuration-run,
//! general metrics (`train_acc`, `val_acc`, `<repair>_test_acc`,
//! `<repair>_test_f1`) plus the raw group-wise confusion counts under keys
//! like `impute_mean_dummy__sex_priv__fp` and
//! `impute_mean_dummy__sex_priv__age_priv__fp` for intersectional groups.
//! Recording raw counts keeps every group-fairness metric computable after
//! the fact. This module reproduces that schema byte-for-byte in spirit
//! (deterministic key order via `BTreeMap` — CleanML's reshuffling bug,
//! which the paper reports and fixes, is structurally impossible here).

use crate::config::ExperimentConfig;
use crate::pipeline::RunPair;
use serde_json::{json, Map, Value};

/// A (dataset, split) task that failed during a study run and was excluded
/// from assembly; part of the degraded-run summary in
/// [`crate::runner::StudyResults`].
#[derive(Debug, Clone, PartialEq)]
pub struct FailedTask {
    /// Dataset name (e.g. `german`).
    pub dataset: String,
    /// Split index within the study grid.
    pub split: usize,
    /// The task's derived split seed (for standalone reproduction).
    pub seed: u64,
    /// The error the task failed with.
    pub error: String,
}

impl FailedTask {
    /// Short `dataset#split` label for summaries.
    pub fn label(&self) -> String {
        format!("{}#{}", self.dataset, self.split)
    }
}

/// JSON record of one failed task (used by the study export and the
/// degraded-run summary).
pub fn failed_task_record(task: &FailedTask) -> Value {
    json!({
        "dataset": task.dataset,
        "split": task.split,
        "seed": task.seed,
        "error": task.error,
    })
}

/// Sanitises a repair name for use as a key prefix (CleanML uses
/// underscores, not slashes).
fn key_prefix(name: &str) -> String {
    name.replace(['/', '-'], "_")
}

/// Turns a group label (`sex` or `sex*age`) and side into CleanML key
/// segments: `sex_priv` / `sex_priv__age_priv`.
fn group_segment(group: &str, privileged: bool) -> String {
    let suffix = if privileged { "priv" } else { "dis" };
    group
        .split('*')
        .map(|attr| format!("{attr}_{suffix}"))
        .collect::<Vec<_>>()
        .join("__")
}

/// Serialises one run of one configuration into the CleanML record format.
///
/// `run_id` identifies the (split, model-seed) pair.
pub fn run_record(config: &ExperimentConfig, run_id: usize, pair: &RunPair) -> Value {
    let prefix = key_prefix(&config.repair.name());
    let mut fields = Map::new();
    fields.insert("best_params".to_string(), json!(pair.repaired.best_params));
    fields.insert("train_acc".to_string(), json!(pair.repaired.train_accuracy));
    fields.insert("val_acc".to_string(), json!(pair.repaired.val_accuracy));
    fields.insert(format!("{prefix}_test_acc"), json!(pair.repaired.test_accuracy));
    fields.insert(format!("{prefix}_test_f1"), json!(pair.repaired.test_f1));
    fields.insert("dirty_test_acc".to_string(), json!(pair.dirty.test_accuracy));
    fields.insert("dirty_test_f1".to_string(), json!(pair.dirty.test_f1));
    for (group, gc) in &pair.repaired.group_confusions {
        for (side, cm) in
            [(true, &gc.privileged), (false, &gc.disadvantaged)]
        {
            let seg = group_segment(group, side);
            fields.insert(format!("{prefix}__{seg}__tn"), json!(cm.tn));
            fields.insert(format!("{prefix}__{seg}__fp"), json!(cm.fp));
            fields.insert(format!("{prefix}__{seg}__fn"), json!(cm.fn_));
            fields.insert(format!("{prefix}__{seg}__tp"), json!(cm.tp));
        }
    }
    for (group, gc) in &pair.dirty.group_confusions {
        for (side, cm) in
            [(true, &gc.privileged), (false, &gc.disadvantaged)]
        {
            let seg = group_segment(group, side);
            fields.insert(format!("dirty__{seg}__tn"), json!(cm.tn));
            fields.insert(format!("dirty__{seg}__fp"), json!(cm.fp));
            fields.insert(format!("dirty__{seg}__fn"), json!(cm.fn_));
            fields.insert(format!("dirty__{seg}__tp"), json!(cm.tp));
        }
    }
    let mut record = Map::new();
    record.insert(format!("{}/{run_id}", config.key()), Value::Object(fields));
    Value::Object(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RepairSpec;
    use crate::pipeline::ArmEvaluation;
    use cleaning::repair::MissingRepair;
    use datasets::DatasetId;
    use fairness::{ConfusionMatrix, GroupConfusions};
    use mlcore::ModelKind;

    fn arm() -> ArmEvaluation {
        let gc = GroupConfusions {
            privileged: ConfusionMatrix { tn: 145, fp: 22, fn_: 39, tp: 24 },
            disadvantaged: ConfusionMatrix { tn: 31, fp: 16, fn_: 9, tp: 14 },
        };
        ArmEvaluation {
            test_accuracy: 0.713,
            test_f1: 0.469,
            val_accuracy: 0.747,
            train_accuracy: 0.822,
            best_params: "C=0.37".to_string(),
            group_confusions: vec![("age".to_string(), gc), ("sex*age".to_string(), gc)],
        }
    }

    #[test]
    fn record_has_cleanml_keys() {
        let config = ExperimentConfig {
            dataset: DatasetId::German,
            model: ModelKind::LogReg,
            repair: RepairSpec::Missing(MissingRepair::all()[0]),
        };
        let pair = RunPair { dirty: arm(), repaired: arm() };
        let record = run_record(&config, 6130, &pair);
        let text = serde_json::to_string(&record).unwrap();
        // The paper's example keys appear (modulo the configured repair).
        assert!(text.contains("impute_mean_mode__age_priv__tn")
            || text.contains("impute_mean_dummy__age_priv__tn"), "{text}");
        assert!(text.contains("__sex_priv__age_priv__fp"), "{text}");
        assert!(text.contains("best_params"));
        assert!(text.contains("train_acc"));
        assert!(text.contains("_test_acc"));
        assert!(text.contains("dirty_test_acc"));
    }

    #[test]
    fn group_segments() {
        assert_eq!(group_segment("sex", true), "sex_priv");
        assert_eq!(group_segment("sex", false), "sex_dis");
        assert_eq!(group_segment("sex*age", true), "sex_priv__age_priv");
        assert_eq!(group_segment("sex*age", false), "sex_dis__age_dis");
    }

    #[test]
    fn key_prefix_sanitises() {
        assert_eq!(key_prefix("outliers-iqr/impute_mean"), "outliers_iqr_impute_mean");
        assert_eq!(key_prefix("impute_mean_dummy"), "impute_mean_dummy");
    }

    #[test]
    fn failed_task_record_has_all_fields() {
        let task = FailedTask {
            dataset: "german".to_string(),
            split: 3,
            seed: 0xDEAD_BEEF,
            error: "boom".to_string(),
        };
        assert_eq!(task.label(), "german#3");
        let text = serde_json::to_string(&failed_task_record(&task)).unwrap();
        assert!(text.contains("\"dataset\":\"german\""), "{text}");
        assert!(text.contains("\"split\":3"), "{text}");
        assert!(text.contains("\"error\":\"boom\""), "{text}");
        assert!(text.contains(&format!("\"seed\":{}", 0xDEAD_BEEFu64)), "{text}");
    }

    #[test]
    fn record_is_deterministic() {
        let config = ExperimentConfig {
            dataset: DatasetId::German,
            model: ModelKind::LogReg,
            repair: RepairSpec::Mislabels,
        };
        let pair = RunPair { dirty: arm(), repaired: arm() };
        let a = serde_json::to_string(&run_record(&config, 1, &pair)).unwrap();
        let b = serde_json::to_string(&run_record(&config, 1, &pair)).unwrap();
        assert_eq!(a, b);
    }
}
