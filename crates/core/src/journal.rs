//! Append-only JSONL task journal for crash-safe, resumable studies.
//!
//! One line per event, written as tasks finish. Record kinds:
//!
//! * `header` — the study fingerprint plus a human-readable configuration
//!   summary, written once when a journal file is created;
//! * `task` — one completed (dataset, split) task: the task key, its
//!   derived split seed, and every score of the task's run grid. Scores
//!   are stored as IEEE-754 **bit patterns** (u64) so the round-trip is
//!   exact — including NaN disparities — and a resumed run reproduces
//!   byte-identical final results;
//! * `failed` — a task that errored (error string + seed), informational;
//!   failed tasks are re-attempted on resume.
//!
//! Every record carries the study **fingerprint** (study seed, scale,
//! error type, dataset roster, model roster, repair-variant list hashed
//! together); the loader skips — with a warning — any record whose
//! fingerprint or task key does not match the current study, so stale
//! results are never silently reused.
//!
//! Durability: each record is serialised to one newline-terminated line
//! and written with a **single `write_all` + flush** while holding the
//! writer lock, so concurrent pool workers can never interleave records
//! and a `kill -9` can leave at most one truncated trailing line — which
//! the loader tolerates (the affected task is simply re-run).

use crate::config::{RectifySpec, RepairSide, RepairSpec, StudyScale};
use crate::runner::{fnv, SeedScores};
use datasets::{DatasetId, ErrorType};
use mlcore::ModelKind;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use tabular::{Result, TabularError};

/// Identity of a study configuration: everything that determines the task
/// grid and its scores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyFingerprint {
    /// 16-hex-digit FNV-1a hash of [`StudyFingerprint::summary`]; stored
    /// in every journal record and embedded in the journal file name.
    pub hex: String,
    /// The canonical configuration string the hash covers.
    pub summary: String,
}

impl StudyFingerprint {
    /// Computes the fingerprint of a study configuration.
    ///
    /// The summary's leading `v3` is the **study shape version**: it is
    /// bumped whenever the semantics of a unit's scores change (v1 → v2
    /// added the `repair_side` axis and model rectification; v2 → v3
    /// moved training onto the vectorised kernels — `f32` histogram
    /// statistics, blocked IRLS accumulation and the division-free split
    /// scan shift scores by rounding-level amounts), so a journal written
    /// by an older binary is rejected with an explicit versioned-shape
    /// warning instead of a bare hash mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn compute(
        error: ErrorType,
        datasets: &[DatasetId],
        models: &[ModelKind],
        scale: &StudyScale,
        study_seed: u64,
        variants: &[RepairSpec],
        side: RepairSide,
        rectify: &RectifySpec,
    ) -> StudyFingerprint {
        let dataset_names: Vec<&str> = datasets.iter().map(|d| d.name()).collect();
        let model_names: Vec<&str> = models.iter().map(|m| m.name()).collect();
        let variant_names: Vec<String> = variants.iter().map(RepairSpec::name).collect();
        let summary = format!(
            "v3|error={}|seed={study_seed}|pool={}|sample={}|splits={}|mseeds={}|test={}|cv={}|datasets={}|models={}|variants={}|side={}|rect={},{},{}",
            error.name(),
            scale.pool_size,
            scale.sample_size,
            scale.n_splits,
            scale.n_model_seeds,
            scale.test_fraction,
            scale.cv_folds,
            dataset_names.join(","),
            model_names.join(","),
            variant_names.join(","),
            side.name(),
            rectify.metric.name(),
            rectify.epsilon,
            rectify.max_nodes
        );
        StudyFingerprint { hex: format!("{:016x}", fnv(&summary)), summary }
    }
}

/// The journal file path for a study: `dir/study_<error>_<fp>.jsonl`.
/// Embedding the fingerprint keeps journals of different configurations
/// apart; the per-record fingerprint check still guards against renamed
/// or stale files.
pub fn journal_path(dir: &Path, error: ErrorType, fingerprint: &StudyFingerprint) -> PathBuf {
    dir.join(format!("study_{}_{}.jsonl", error.name(), fingerprint.hex))
}

fn io_error(context: &str, e: std::io::Error) -> TabularError {
    TabularError::InvalidArgument(format!("journal {context}: {e}"))
}

/// Appends records to a journal file; safe to share across pool workers.
#[derive(Debug)]
pub struct JournalWriter {
    file: Mutex<File>,
    fp_hex: String,
}

impl JournalWriter {
    /// Opens (or creates) the journal at `path` in append mode, writing a
    /// `header` record when the file is new.
    pub fn open(path: &Path, fingerprint: &StudyFingerprint) -> Result<JournalWriter> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| io_error("directory", e))?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_error("open", e))?;
        let is_new = file.metadata().map(|m| m.len() == 0).unwrap_or(false);
        let writer = JournalWriter { file: Mutex::new(file), fp_hex: fingerprint.hex.clone() };
        if is_new {
            writer.write_line(json!({
                "kind": "header",
                "fp": fingerprint.hex,
                "config": fingerprint.summary,
            }))?;
        }
        Ok(writer)
    }

    /// Serialises one record and writes it as a single newline-terminated
    /// `write_all` + flush under the lock (atomic per record).
    fn write_line(&self, record: Value) -> Result<()> {
        let mut line = serde_json::to_string(&record)
            .map_err(|e| TabularError::InvalidArgument(format!("journal serialise: {e}")))?;
        line.push('\n');
        let mut file = self
            .file
            .lock()
            .map_err(|_| TabularError::InvalidArgument("journal lock poisoned".to_string()))?;
        file.write_all(line.as_bytes()).map_err(|e| io_error("write", e))?;
        file.flush().map_err(|e| io_error("flush", e))
    }

    /// Records one completed task with its full run grid.
    pub fn record_task(
        &self,
        dataset: &str,
        split: usize,
        seed: u64,
        runs_by_model: &[Vec<SeedScores>],
    ) -> Result<()> {
        self.write_line(json!({
            "kind": "task",
            "fp": self.fp_hex,
            "dataset": dataset,
            "split": split,
            "seed": seed,
            "runs": encode_runs(runs_by_model),
        }))
    }

    /// Records one failed task (error string + seed).
    pub fn record_failure(&self, dataset: &str, split: usize, seed: u64, error: &str) -> Result<()> {
        self.write_line(json!({
            "kind": "failed",
            "fp": self.fp_hex,
            "dataset": dataset,
            "split": split,
            "seed": seed,
            "error": error,
        }))
    }
}

/// Exact (bit-pattern) encoding of one score.
fn score_value(x: f64) -> Value {
    Value::from(x.to_bits())
}

/// Encodes a task's run grid: per model → per model seed →
/// `[dirty_acc, [dirty_disp...], [[rep_acc, [rep_disp...]], ...]]`,
/// every f64 as its u64 bit pattern.
fn encode_runs(runs_by_model: &[Vec<SeedScores>]) -> Value {
    Value::Array(
        runs_by_model
            .iter()
            .map(|per_seed| {
                Value::Array(
                    per_seed
                        .iter()
                        .map(|(dirty_acc, dirty_disp, per_variant)| {
                            Value::Array(vec![
                                score_value(*dirty_acc),
                                Value::Array(dirty_disp.iter().copied().map(score_value).collect()),
                                Value::Array(
                                    per_variant
                                        .iter()
                                        .map(|(rep_acc, rep_disp)| {
                                            Value::Array(vec![
                                                score_value(*rep_acc),
                                                Value::Array(
                                                    rep_disp
                                                        .iter()
                                                        .copied()
                                                        .map(score_value)
                                                        .collect(),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ])
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

fn decode_score(v: &Value) -> std::result::Result<f64, String> {
    v.as_u64()
        .map(f64::from_bits)
        .ok_or_else(|| "score is not a u64 bit pattern".to_string())
}

fn decode_scores(v: &Value) -> std::result::Result<Vec<f64>, String> {
    v.as_array()
        .ok_or_else(|| "expected a score array".to_string())?
        .iter()
        .map(decode_score)
        .collect()
}

fn decode_runs(v: &Value) -> std::result::Result<Vec<Vec<SeedScores>>, String> {
    let models = v.as_array().ok_or_else(|| "runs is not an array".to_string())?;
    let mut out = Vec::with_capacity(models.len());
    for per_seed in models {
        let seeds = per_seed.as_array().ok_or_else(|| "model runs is not an array".to_string())?;
        let mut decoded_seeds = Vec::with_capacity(seeds.len());
        for run in seeds {
            let parts = run.as_array().ok_or_else(|| "run is not an array".to_string())?;
            if parts.len() != 3 {
                return Err(format!("run has {} parts, expected 3", parts.len()));
            }
            let dirty_acc = decode_score(&parts[0])?;
            let dirty_disp = decode_scores(&parts[1])?;
            let variants = parts[2]
                .as_array()
                .ok_or_else(|| "variant scores is not an array".to_string())?;
            let mut per_variant = Vec::with_capacity(variants.len());
            for pair in variants {
                let pair = pair.as_array().ok_or_else(|| "variant pair is not an array".to_string())?;
                if pair.len() != 2 {
                    return Err(format!("variant pair has {} parts, expected 2", pair.len()));
                }
                per_variant.push((decode_score(&pair[0])?, decode_scores(&pair[1])?));
            }
            decoded_seeds.push((dirty_acc, dirty_disp, per_variant));
        }
        out.push(decoded_seeds);
    }
    Ok(out)
}

/// One replayed `task` record.
#[derive(Debug)]
pub struct ReplayTask {
    /// The split seed recorded at execution time (the runner re-derives
    /// the seed and refuses the record on mismatch — seed-drift guard).
    pub seed: u64,
    /// The task's full run grid.
    pub runs_by_model: Vec<Vec<SeedScores>>,
}

/// Everything salvaged from a journal file.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Valid `task` records keyed by `(dataset name, split)`; a later
    /// record for the same key overrides an earlier one.
    pub tasks: BTreeMap<(String, usize), ReplayTask>,
    /// `failed` records (informational; failed tasks are re-attempted).
    pub failures: Vec<(String, usize, String)>,
    /// Lines or records that could not be used, with the reason.
    pub warnings: Vec<String>,
}

impl JournalReplay {
    fn ingest(&mut self, value: Value, fingerprint: &StudyFingerprint) -> std::result::Result<(), String> {
        let record = value.as_object().ok_or("record is not an object")?;
        let kind = record.get("kind").and_then(Value::as_str).ok_or("record has no kind")?;
        let fp = record.get("fp").and_then(Value::as_str).ok_or("record has no fingerprint")?;
        if fp != fingerprint.hex {
            // A header whose summary carries a different version prefix
            // was written by a binary with a different study shape (e.g.
            // a pre-rectification v1 journal): say so explicitly — the
            // whole file is unusable, not merely one stale record.
            if kind == "header" {
                if let Some(config) = record.get("config").and_then(Value::as_str) {
                    let old_version = config.split('|').next().unwrap_or("");
                    let new_version = fingerprint.summary.split('|').next().unwrap_or("");
                    if old_version != new_version {
                        return Err(format!(
                            "journal uses the {old_version} study shape but this binary                              writes the versioned study shape {new_version};                              its records are rejected and the study re-runs"
                        ));
                    }
                }
            }
            return Err(format!(
                "fingerprint mismatch ({fp} vs expected {}); stale record skipped",
                fingerprint.hex
            ));
        }
        match kind {
            "header" => Ok(()),
            "task" => {
                let dataset = record
                    .get("dataset")
                    .and_then(Value::as_str)
                    .ok_or("task record has no dataset")?;
                let split = record
                    .get("split")
                    .and_then(Value::as_u64)
                    .ok_or("task record has no split")? as usize;
                let seed =
                    record.get("seed").and_then(Value::as_u64).ok_or("task record has no seed")?;
                let runs = decode_runs(record.get("runs").ok_or("task record has no runs")?)?;
                self.tasks
                    .insert((dataset.to_string(), split), ReplayTask { seed, runs_by_model: runs });
                Ok(())
            }
            "failed" => {
                let dataset = record
                    .get("dataset")
                    .and_then(Value::as_str)
                    .ok_or("failed record has no dataset")?;
                let split = record
                    .get("split")
                    .and_then(Value::as_u64)
                    .ok_or("failed record has no split")? as usize;
                let error = record
                    .get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown error");
                self.failures.push((dataset.to_string(), split, error.to_string()));
                Ok(())
            }
            other => Err(format!("unknown record kind '{other}'")),
        }
    }
}

/// Loads a journal file, tolerating a missing file (fresh start) and a
/// truncated trailing line (hard kill mid-write). Records that fail the
/// fingerprint or structural checks are skipped with a warning rather
/// than silently reused.
pub fn load(path: &Path, fingerprint: &StudyFingerprint) -> JournalReplay {
    let mut replay = JournalReplay::default();
    let Ok(text) = std::fs::read_to_string(path) else {
        return replay;
    };
    let complete_tail = text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let line_no = i + 1;
        let value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                let is_tail = i + 1 == lines.len() && !complete_tail;
                if is_tail {
                    replay.warnings.push(format!(
                        "truncated trailing line {line_no} ignored (hard kill mid-write?): {e}"
                    ));
                } else {
                    replay.warnings.push(format!("unparseable line {line_no}: {e}"));
                }
                continue;
            }
        };
        if let Err(reason) = replay.ingest(value, fingerprint) {
            replay.warnings.push(format!("line {line_no}: {reason}"));
        }
    }
    replay
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_fp(seed: u64, datasets: &[DatasetId], side: RepairSide) -> StudyFingerprint {
        StudyFingerprint::compute(
            ErrorType::Mislabels,
            datasets,
            &[ModelKind::LogReg],
            &StudyScale::smoke(),
            seed,
            &RepairSpec::variants_for(ErrorType::Mislabels),
            side,
            &RectifySpec::default(),
        )
    }

    fn fingerprint() -> StudyFingerprint {
        compute_fp(7, &[DatasetId::German], RepairSide::Data)
    }

    fn sample_runs() -> Vec<Vec<SeedScores>> {
        vec![vec![
            (0.75, vec![0.1, f64::NAN], vec![(0.8, vec![0.2, 0.3])]),
            (0.5, vec![f64::INFINITY], vec![(0.25, vec![-0.0])]),
        ]]
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("demodq-journal-{}-{name}", std::process::id()))
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_input() {
        let base = fingerprint();
        let other_seed = compute_fp(8, &[DatasetId::German], RepairSide::Data);
        assert_ne!(base.hex, other_seed.hex);
        let other_roster = compute_fp(7, &[DatasetId::German, DatasetId::Adult], RepairSide::Data);
        assert_ne!(base.hex, other_roster.hex);
        let other_side = compute_fp(7, &[DatasetId::German], RepairSide::Both);
        assert_ne!(base.hex, other_side.hex, "repair side must be part of the identity");
        assert_eq!(base.hex.len(), 16);
        assert!(base.summary.starts_with("v3|"));
        assert!(base.summary.contains("error=mislabels"));
        assert!(base.summary.contains("datasets=german"));
        assert!(base.summary.contains("|side=data|"));
        assert!(base.summary.contains("|rect=EO,0.05,20000"));
    }

    #[test]
    fn roundtrip_is_bit_exact_including_nan() {
        let runs = sample_runs();
        let encoded = encode_runs(&runs);
        let text = serde_json::to_string(&encoded).unwrap();
        let decoded = decode_runs(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(decoded.len(), 1);
        let (acc, disp, per_variant) = &decoded[0][0];
        assert_eq!(acc.to_bits(), 0.75f64.to_bits());
        assert_eq!(disp[0].to_bits(), 0.1f64.to_bits());
        assert!(disp[1].is_nan());
        assert_eq!(disp[1].to_bits(), f64::NAN.to_bits());
        assert_eq!(per_variant[0].0.to_bits(), 0.8f64.to_bits());
        let (_, disp2, per_variant2) = &decoded[0][1];
        assert_eq!(disp2[0], f64::INFINITY);
        assert_eq!(per_variant2[0].1[0].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn write_load_roundtrip_and_dedup() {
        let path = temp_path("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint();
        let writer = JournalWriter::open(&path, &fp).unwrap();
        writer.record_task("german", 0, 11, &sample_runs()).unwrap();
        writer.record_failure("german", 1, 12, "boom").unwrap();
        // A later record for the same key wins.
        writer.record_task("german", 0, 13, &sample_runs()).unwrap();
        let replay = load(&path, &fp);
        assert!(replay.warnings.is_empty(), "{:?}", replay.warnings);
        assert_eq!(replay.tasks.len(), 1);
        assert_eq!(replay.tasks[&("german".to_string(), 0)].seed, 13);
        assert_eq!(replay.failures, vec![("german".to_string(), 1, "boom".to_string())]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_trailing_line_is_tolerated() {
        let path = temp_path("truncated.jsonl");
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint();
        let writer = JournalWriter::open(&path, &fp).unwrap();
        writer.record_task("german", 0, 11, &sample_runs()).unwrap();
        drop(writer);
        // Simulate a kill mid-write: an incomplete record with no newline.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"kind\":\"task\",\"fp\":\"").unwrap();
        drop(file);
        let replay = load(&path, &fp);
        assert_eq!(replay.tasks.len(), 1, "the complete record must survive");
        assert_eq!(replay.warnings.len(), 1);
        assert!(replay.warnings[0].contains("truncated trailing line"), "{:?}", replay.warnings);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_is_skipped_with_warning() {
        let path = temp_path("mismatch.jsonl");
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint();
        let writer = JournalWriter::open(&path, &fp).unwrap();
        writer.record_task("german", 0, 11, &sample_runs()).unwrap();
        drop(writer);
        let other = compute_fp(8, &[DatasetId::German], RepairSide::Data); // different study seed
        let replay = load(&path, &other);
        assert!(replay.tasks.is_empty(), "stale records must not be reused");
        // Header + task both mismatch.
        assert_eq!(replay.warnings.len(), 2, "{:?}", replay.warnings);
        assert!(replay.warnings.iter().all(|w| w.contains("fingerprint mismatch")));
        let _ = std::fs::remove_file(&path);
    }

    /// A journal written by a binary with an older study shape (the
    /// pre-rectification `v1` summary) is rejected with an explicit
    /// versioned-shape warning, never replayed.
    #[test]
    fn older_study_shape_journal_is_rejected_with_versioned_warning() {
        let path = temp_path("v1-shape.jsonl");
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint();
        // Hand-write a v1-era journal: same configuration, but the old
        // summary format (no side/rect components) and its old hash.
        let v1_summary = "v1|error=mislabels|seed=7|pool=900|sample=450|splits=2|mseeds=2|test=0.25|cv=3|datasets=german|models=log-reg|variants=flip_labels";
        let v1_hex = format!("{:016x}", fnv(v1_summary));
        let header = serde_json::json!({
            "kind": "header",
            "fp": v1_hex,
            "config": v1_summary,
        });
        let task = serde_json::json!({
            "kind": "task",
            "fp": v1_hex,
            "dataset": "german",
            "split": 0,
            "seed": 11,
            "runs": encode_runs(&sample_runs()),
        });
        std::fs::write(&path, format!("{header}
{task}
")).unwrap();
        let replay = load(&path, &fp);
        assert!(replay.tasks.is_empty(), "v1 records must never replay into a v2 study");
        assert!(
            replay.warnings.iter().any(|w| w.contains("versioned study shape")),
            "{:?}",
            replay.warnings
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_fresh_start() {
        let replay = load(Path::new("/nonexistent/journal.jsonl"), &fingerprint());
        assert!(replay.tasks.is_empty());
        assert!(replay.warnings.is_empty());
    }

    #[test]
    fn journal_path_embeds_error_and_fingerprint() {
        let fp = fingerprint();
        let path = journal_path(Path::new("results/journal"), ErrorType::Mislabels, &fp);
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        assert_eq!(name, format!("study_mislabels_{}.jsonl", fp.hex));
    }
}
