//! The 3×3 fairness × accuracy impact contingency tables of the paper's
//! Tables II–XIII.
//!
//! Each table cell counts configurations whose cleaning impact was
//! classified (fairness: worse/insignificant/better) × (accuracy: same
//! three levels). One configuration contributes one entry per sensitive
//! attribute (single-attribute tables) or one entry per dataset
//! (intersectional tables).

use crate::impact::{classify_pair, Impact};
use crate::runner::StudyResults;
use fairness::FairnessMetric;

/// A 3×3 impact contingency table. Axis order: worse, insignificant,
/// better — fairness on rows, accuracy on columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImpactTable {
    counts: [[usize; 3]; 3],
}

impl ImpactTable {
    /// Adds one classified configuration.
    pub fn add(&mut self, fairness: Impact, accuracy: Impact) {
        self.counts[fairness.index()][accuracy.index()] += 1;
    }

    /// Count in one cell.
    pub fn cell(&self, fairness: Impact, accuracy: Impact) -> usize {
        self.counts[fairness.index()][accuracy.index()]
    }

    /// Total number of classified configurations.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Row sum (fairness marginal).
    pub fn fairness_marginal(&self, fairness: Impact) -> usize {
        self.counts[fairness.index()].iter().sum()
    }

    /// Column sum (accuracy marginal).
    pub fn accuracy_marginal(&self, accuracy: Impact) -> usize {
        self.counts.iter().map(|row| row[accuracy.index()]).sum()
    }

    /// Cell value as a percentage of the total (0 when empty).
    pub fn percentage(&self, fairness: Impact, accuracy: Impact) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            100.0 * self.cell(fairness, accuracy) as f64 / total as f64
        }
    }

    /// Merges another table into this one.
    pub fn merge(&mut self, other: &ImpactTable) {
        for f in 0..3 {
            for a in 0..3 {
                self.counts[f][a] += other.counts[f][a];
            }
        }
    }
}

/// How the Bonferroni divisor is chosen when classifying a study's
/// configurations: the number of repair variants compared per setting
/// (CleanML's "sequence of paired t-tests" family size).
pub fn bonferroni_family_size(results: &StudyResults) -> usize {
    crate::config::RepairSpec::variants_for(results.error).len()
}

/// Classification of one configuration × group entry.
#[derive(Debug, Clone)]
pub struct ClassifiedEntry {
    /// Which configuration.
    pub config: crate::config::ExperimentConfig,
    /// Group label.
    pub group: String,
    /// Intersectional group definition?
    pub intersectional: bool,
    /// Metric used for the fairness axis.
    pub metric: FairnessMetric,
    /// Fairness impact.
    pub fairness: Impact,
    /// Accuracy impact.
    pub accuracy: Impact,
}

/// Classifies every (configuration, group) pair of a study for one metric
/// and group granularity.
pub fn classify_study(
    results: &StudyResults,
    metric: FairnessMetric,
    intersectional: bool,
    alpha: f64,
) -> Vec<ClassifiedEntry> {
    let m = bonferroni_family_size(results);
    let mut out = Vec::new();
    for cs in &results.configs {
        let accuracy = classify_pair(&cs.dirty_accuracy, &cs.repaired_accuracy, true, alpha, m);
        for f in &cs.fairness {
            if f.metric != metric || f.intersectional != intersectional {
                continue;
            }
            let fairness = classify_pair(&f.dirty, &f.repaired, false, alpha, m);
            out.push(ClassifiedEntry {
                config: cs.config,
                group: f.group.clone(),
                intersectional,
                metric,
                fairness,
                accuracy,
            });
        }
    }
    out
}

/// Builds the paper-style 3×3 table for a study, metric and group
/// granularity (e.g. Table II = missing values × single-attribute × PP).
pub fn build_table(
    results: &StudyResults,
    metric: FairnessMetric,
    intersectional: bool,
    alpha: f64,
) -> ImpactTable {
    let mut table = ImpactTable::default();
    for entry in classify_study(results, metric, intersectional, alpha) {
        table.add(entry.fairness, entry.accuracy);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentConfig, RepairSpec};
    use crate::runner::{ConfigScores, GroupMetricScores};
    use datasets::{DatasetId, ErrorType};
    use mlcore::ModelKind;

    #[test]
    fn table_counts_and_marginals() {
        let mut t = ImpactTable::default();
        t.add(Impact::Worse, Impact::Better);
        t.add(Impact::Worse, Impact::Better);
        t.add(Impact::Better, Impact::Insignificant);
        assert_eq!(t.total(), 3);
        assert_eq!(t.cell(Impact::Worse, Impact::Better), 2);
        assert_eq!(t.fairness_marginal(Impact::Worse), 2);
        assert_eq!(t.accuracy_marginal(Impact::Better), 2);
        assert!((t.percentage(Impact::Worse, Impact::Better) - 66.666).abs() < 0.01);
        let mut u = ImpactTable::default();
        u.merge(&t);
        u.merge(&t);
        assert_eq!(u.total(), 6);
    }

    #[test]
    fn empty_table_percentage_is_zero() {
        let t = ImpactTable::default();
        assert_eq!(t.percentage(Impact::Better, Impact::Better), 0.0);
    }

    fn synthetic_results() -> StudyResults {
        // One config where cleaning clearly helps accuracy and clearly
        // hurts the PP disparity on the single-attribute group.
        let dirty_acc = vec![0.70, 0.71, 0.69, 0.70, 0.71, 0.72];
        let rep_acc = vec![0.80, 0.81, 0.79, 0.80, 0.81, 0.82];
        let dirty_pp = vec![0.05, 0.06, 0.05, 0.04, 0.05, 0.06];
        let rep_pp = vec![0.15, 0.16, 0.15, 0.14, 0.15, 0.16];
        StudyResults::new(
            ErrorType::Mislabels,
            crate::config::StudyScale::smoke(),
            vec![ConfigScores {
                config: ExperimentConfig {
                    dataset: DatasetId::German,
                    model: ModelKind::LogReg,
                    repair: RepairSpec::Mislabels,
                },
                dirty_accuracy: dirty_acc,
                repaired_accuracy: rep_acc,
                fairness: vec![
                    GroupMetricScores {
                        group: "sex".to_string(),
                        intersectional: false,
                        metric: FairnessMetric::PredictiveParity,
                        dirty: dirty_pp.clone(),
                        repaired: rep_pp.clone(),
                    },
                    GroupMetricScores {
                        group: "age*sex".to_string(),
                        intersectional: true,
                        metric: FairnessMetric::PredictiveParity,
                        dirty: rep_pp,
                        repaired: dirty_pp,
                    },
                ],
            }],
        )
    }

    #[test]
    fn classification_respects_direction_conventions() {
        let results = synthetic_results();
        let single = classify_study(&results, FairnessMetric::PredictiveParity, false, 0.05);
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].accuracy, Impact::Better);
        assert_eq!(single[0].fairness, Impact::Worse); // disparity grew
        let inter = classify_study(&results, FairnessMetric::PredictiveParity, true, 0.05);
        assert_eq!(inter[0].fairness, Impact::Better); // disparity shrank
    }

    #[test]
    fn build_table_places_entries() {
        let results = synthetic_results();
        let t = build_table(&results, FairnessMetric::PredictiveParity, false, 0.05);
        assert_eq!(t.total(), 1);
        assert_eq!(t.cell(Impact::Worse, Impact::Better), 1);
    }

    #[test]
    fn family_size_matches_variant_count() {
        let results = synthetic_results();
        assert_eq!(bonferroni_family_size(&results), 1); // mislabels: one repair
    }
}
