//! Study runner: executes whole configuration grids — (dataset × model ×
//! repair variant) × (splits × model seeds) — collecting the paired score
//! vectors the impact classification consumes.
//!
//! Mirrors CleanML's execution structure: the **dirty baseline is computed
//! once per (dataset, model, split, model-seed)** and shared across all
//! repair variants of the error type, and detection runs once per detector
//! rather than once per (detector, repair) pair. Model-independent work is
//! hoisted maximally: each (dataset, split) task samples, prepares
//! (detection + repair) and **feature-encodes every arm exactly once**,
//! then reuses the encoded matrices across all models and model seeds.
//! Tasks are independent and run rayon-parallel.

use crate::config::{ExperimentConfig, RepairSpec, StudyScale};
use crate::pipeline::{encode_arm, evaluate_arm_encoded, sample_split, ArmEvaluation};
use cleaning::repair::{CatImpute, LabelRepair, MissingRepair, NumImpute};
use datasets::{DatasetId, ErrorType};
use fairness::{FairnessMetric, GroupSpec};
use mlcore::ModelKind;
use rayon::prelude::*;
use tabular::{DataFrame, Result, TabularError};

/// Paired dirty/repaired score vectors for one group × metric.
#[derive(Debug, Clone)]
pub struct GroupMetricScores {
    /// Group label (e.g. `sex`, `sex*race`).
    pub group: String,
    /// True when the group spec is intersectional.
    pub intersectional: bool,
    /// The fairness metric.
    pub metric: FairnessMetric,
    /// Absolute disparity per run on the dirty arm (NaN when undefined).
    pub dirty: Vec<f64>,
    /// Absolute disparity per run on the repaired arm.
    pub repaired: Vec<f64>,
}

/// All paired scores of one configuration.
#[derive(Debug, Clone)]
pub struct ConfigScores {
    /// The configuration.
    pub config: ExperimentConfig,
    /// Paired accuracies (dirty arm), one entry per run.
    pub dirty_accuracy: Vec<f64>,
    /// Paired accuracies (repaired arm).
    pub repaired_accuracy: Vec<f64>,
    /// Fairness score pairs per group × metric.
    pub fairness: Vec<GroupMetricScores>,
}

impl ConfigScores {
    /// The scores entry for a `(group, metric)` pair.
    pub fn fairness_for(&self, group: &str, metric: FairnessMetric) -> Option<&GroupMetricScores> {
        self.fairness.iter().find(|f| f.group == group && f.metric == metric)
    }
}

/// Results of a study over one error type.
#[derive(Debug, Clone)]
pub struct StudyResults {
    /// The error type studied.
    pub error: ErrorType,
    /// The scale the study ran at.
    pub scale: StudyScale,
    /// One entry per (dataset, model, repair variant).
    pub configs: Vec<ConfigScores>,
}

impl StudyResults {
    /// Total number of model evaluations performed (two arms per run, but
    /// the dirty arm is shared across repair variants).
    pub fn n_model_evaluations(&self) -> usize {
        // repaired evaluations + shared dirty evaluations
        let repaired: usize = self
            .configs
            .iter()
            .map(|c| c.repaired_accuracy.len())
            .sum();
        let mut dirty_keys: std::collections::BTreeSet<(&str, &str)> = Default::default();
        for c in &self.configs {
            dirty_keys.insert((c.config.dataset.name(), c.config.model.name()));
        }
        repaired + dirty_keys.len() * self.scale.scores_per_config()
    }
}

/// FNV-1a hash for deterministic seed derivation.
fn fnv(text: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Mixes study seed, dataset and split index into a split seed.
/// Independent of the model so all models see identical splits
/// (CleanML re-uses splits across methods).
fn split_seed(study_seed: u64, dataset: DatasetId, split: usize) -> u64 {
    study_seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(fnv(dataset.name()))
        .wrapping_add(split as u64 * 0xA24BAED4963EE407)
}

/// Builds the shared dirty frames and the per-variant repaired frames for
/// one split, computing detection once per detector.
fn prepare_all_variants(
    train: &DataFrame,
    test: &DataFrame,
    error: ErrorType,
    variants: &[RepairSpec],
    seed: u64,
) -> Result<PreparedVariants> {
    let baseline = MissingRepair { num: NumImpute::Mean, cat: CatImpute::Dummy };
    match error {
        ErrorType::MissingValues => {
            let dirty_train = train.drop_incomplete_rows()?;
            if dirty_train.n_rows() < 10 {
                return Err(TabularError::InvalidArgument(
                    "dropping incomplete rows leaves too little training data".to_string(),
                ));
            }
            let dirty_test = baseline.fit(&dirty_train)?.apply(test)?;
            let mut repaired = Vec::with_capacity(variants.len());
            for variant in variants {
                let RepairSpec::Missing(config) = variant else {
                    return Err(TabularError::InvalidArgument(
                        "variant/error mismatch".to_string(),
                    ));
                };
                let fitted = config.fit(train)?;
                repaired.push((fitted.apply(train)?, fitted.apply(test)?));
            }
            Ok((dirty_train, dirty_test, repaired))
        }
        ErrorType::Outliers => {
            let (base_train, base_test) = preclean(train, test, &baseline)?;
            // Cache detection reports per detector: repairs of the same
            // detector share them.
            let mut report_cache: std::collections::BTreeMap<
                String,
                (cleaning::DetectionReport, cleaning::DetectionReport),
            > = Default::default();
            let mut repaired = Vec::with_capacity(variants.len());
            for variant in variants {
                let RepairSpec::Outliers { detector, repair } = variant else {
                    return Err(TabularError::InvalidArgument(
                        "variant/error mismatch".to_string(),
                    ));
                };
                if !report_cache.contains_key(detector.name()) {
                    let fitted_detector = detector.fit(&base_train, seed)?;
                    report_cache.insert(
                        detector.name().to_string(),
                        (
                            fitted_detector.detect(&base_train)?,
                            fitted_detector.detect(&base_test)?,
                        ),
                    );
                }
                let (train_report, test_report) = &report_cache[detector.name()];
                let fitted_repair = repair.fit(&base_train, train_report)?;
                repaired.push((
                    fitted_repair.apply(&base_train, train_report)?,
                    fitted_repair.apply(&base_test, test_report)?,
                ));
            }
            Ok((base_train, base_test, repaired))
        }
        ErrorType::Mislabels => {
            let (base_train, base_test) = preclean(train, test, &baseline)?;
            let detector = cleaning::detect::DetectorKind::Mislabels.fit(&base_train, seed)?;
            let report = detector.detect(&base_train)?;
            let flipped = LabelRepair.apply(&base_train, &report)?;
            let repaired = variants
                .iter()
                .map(|_| (flipped.clone(), base_test.clone()))
                .collect();
            Ok((base_train, base_test, repaired))
        }
    }
}

fn preclean(
    train: &DataFrame,
    test: &DataFrame,
    baseline: &MissingRepair,
) -> Result<(DataFrame, DataFrame)> {
    if train.missing_cells() == 0 && test.missing_cells() == 0 {
        return Ok((train.clone(), test.clone()));
    }
    let clean_train = train.drop_incomplete_rows()?;
    if clean_train.n_rows() < 10 {
        return Err(TabularError::InvalidArgument(
            "dropping incomplete rows leaves too little training data".to_string(),
        ));
    }
    let clean_test = baseline.fit(&clean_train)?.apply(test)?;
    Ok((clean_train, clean_test))
}

/// Per-run fairness extraction: absolute disparities for every group spec
/// and metric.
fn disparities(
    arm: &ArmEvaluation,
    groups: &[(String, bool)],
    metrics: &[FairnessMetric],
) -> Vec<f64> {
    let mut out = Vec::with_capacity(groups.len() * metrics.len());
    for (label, _) in groups {
        let gc = arm.confusions_for(label);
        for metric in metrics {
            let value = gc
                .and_then(|gc| metric.absolute_disparity(gc))
                .unwrap_or(f64::NAN);
            out.push(value);
        }
    }
    out
}

/// The dirty (train, test) pair plus one repaired pair per variant.
type PreparedVariants = (DataFrame, DataFrame, Vec<(DataFrame, DataFrame)>);

/// One model-seed's scores: dirty accuracy, dirty disparities, and per
/// variant (repaired accuracy, repaired disparities).
type SeedScores = (f64, Vec<f64>, Vec<(f64, Vec<f64>)>);

/// Output of one (dataset, split) task: per model, one [`SeedScores`]
/// per model seed (seeds in ascending order).
struct TaskOutput {
    dataset_idx: usize,
    split_idx: usize,
    runs_by_model: Vec<Vec<SeedScores>>,
}

/// Runs the full study for one error type over the given datasets and
/// models.
///
/// Datasets that do not carry the error type (e.g. heart has no missing
/// values) are skipped automatically.
pub fn run_error_type_study(
    error: ErrorType,
    dataset_ids: &[DatasetId],
    models: &[ModelKind],
    scale: &StudyScale,
    study_seed: u64,
) -> Result<StudyResults> {
    let metrics = FairnessMetric::all().to_vec();
    let variants = RepairSpec::variants_for(error);

    // Keep only datasets that declare the error type.
    let datasets: Vec<DatasetId> = dataset_ids
        .iter()
        .copied()
        .filter(|id| id.spec().has_error_type(error))
        .collect();

    // Generate pools and group specs up front (one per dataset).
    let mut pools = Vec::with_capacity(datasets.len());
    let mut group_specs: Vec<Vec<GroupSpec>> = Vec::with_capacity(datasets.len());
    let mut group_labels: Vec<Vec<(String, bool)>> = Vec::with_capacity(datasets.len());
    for id in &datasets {
        let pool = id.generate(scale.pool_size, study_seed ^ fnv(id.name()))?;
        let spec = id.spec();
        let mut gs = spec.single_attribute_specs();
        if let Some(inter) = spec.intersectional_spec() {
            gs.push(inter);
        }
        group_labels.push(gs.iter().map(|g| (g.label(), g.is_intersectional())).collect());
        group_specs.push(gs);
        pools.push(pool);
    }

    // Task grid: (dataset, split). Sampling, detection, repair and feature
    // encoding are all model-independent, so each split's arms are built
    // and encoded once and shared across every model and model seed.
    let mut tasks = Vec::new();
    for d in 0..datasets.len() {
        for s in 0..scale.n_splits {
            tasks.push((d, s));
        }
    }

    let outputs: Vec<Result<TaskOutput>> = tasks
        .par_iter()
        .map(|&(d, s)| -> Result<TaskOutput> {
            let pool = &pools[d];
            let sseed = split_seed(study_seed, datasets[d], s);
            let (train, test) = sample_split(pool, scale, sseed)?;
            let (dirty_train, dirty_test, repaired_frames) =
                prepare_all_variants(&train, &test, error, &variants, sseed ^ 0x5EED)?;
            let dirty_arm = encode_arm(&dirty_train, &dirty_test, &group_specs[d])?;
            let variant_arms = repaired_frames
                .iter()
                .map(|(rep_train, rep_test)| encode_arm(rep_train, rep_test, &group_specs[d]))
                .collect::<Result<Vec<_>>>()?;
            let mut runs_by_model = Vec::with_capacity(models.len());
            for model in models {
                let mut runs = Vec::with_capacity(scale.n_model_seeds);
                for k in 0..scale.n_model_seeds {
                    let model_seed = sseed
                        .wrapping_add(fnv(model.name()))
                        .wrapping_add(k as u64 * 0x2545F4914F6CDD1D);
                    let dirty_eval =
                        evaluate_arm_encoded(&dirty_arm, *model, scale.cv_folds, model_seed);
                    let dirty_disp = disparities(&dirty_eval, &group_labels[d], &metrics);
                    let mut per_variant = Vec::with_capacity(variant_arms.len());
                    for arm in &variant_arms {
                        let rep_eval =
                            evaluate_arm_encoded(arm, *model, scale.cv_folds, model_seed);
                        let rep_disp = disparities(&rep_eval, &group_labels[d], &metrics);
                        per_variant.push((rep_eval.test_accuracy, rep_disp));
                    }
                    runs.push((dirty_eval.test_accuracy, dirty_disp, per_variant));
                }
                runs_by_model.push(runs);
            }
            Ok(TaskOutput { dataset_idx: d, split_idx: s, runs_by_model })
        })
        .collect();

    // Propagate the first task error; afterwards outputs are addressed
    // directly by task order (dataset-major, split-minor) — no per-config
    // scan over the whole output list.
    let outputs: Vec<TaskOutput> = outputs.into_iter().collect::<Result<_>>()?;

    // Assemble per-configuration score vectors. Runs are ordered by
    // (split asc, model seed asc), matching the task execution order.
    let n_runs = scale.scores_per_config();
    let mut configs = Vec::new();
    for (d, id) in datasets.iter().enumerate() {
        for (m, model) in models.iter().enumerate() {
            for (v, variant) in variants.iter().enumerate() {
                let mut cs = ConfigScores {
                    config: ExperimentConfig { dataset: *id, model: *model, repair: *variant },
                    dirty_accuracy: Vec::with_capacity(n_runs),
                    repaired_accuracy: Vec::with_capacity(n_runs),
                    fairness: group_labels[d]
                        .iter()
                        .flat_map(|(label, inter)| {
                            metrics.iter().map(move |metric| GroupMetricScores {
                                group: label.clone(),
                                intersectional: *inter,
                                metric: *metric,
                                dirty: Vec::with_capacity(n_runs),
                                repaired: Vec::with_capacity(n_runs),
                            })
                        })
                        .collect(),
                };
                for s in 0..scale.n_splits {
                    let output = &outputs[d * scale.n_splits + s];
                    debug_assert_eq!((output.dataset_idx, output.split_idx), (d, s));
                    for (dirty_acc, dirty_disp, per_variant) in &output.runs_by_model[m] {
                        let (rep_acc, rep_disp) = &per_variant[v];
                        cs.dirty_accuracy.push(*dirty_acc);
                        cs.repaired_accuracy.push(*rep_acc);
                        for (slot, f) in cs.fairness.iter_mut().enumerate() {
                            f.dirty.push(dirty_disp[slot]);
                            f.repaired.push(rep_disp[slot]);
                        }
                    }
                }
                configs.push(cs);
            }
        }
    }

    Ok(StudyResults { error, scale: *scale, configs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mislabel_study_on_german_smoke() {
        let results = run_error_type_study(
            ErrorType::Mislabels,
            &[DatasetId::German],
            &[ModelKind::LogReg],
            &StudyScale::smoke(),
            7,
        )
        .unwrap();
        assert_eq!(results.configs.len(), 1);
        let cs = &results.configs[0];
        let expected_runs = StudyScale::smoke().scores_per_config();
        assert_eq!(cs.dirty_accuracy.len(), expected_runs);
        assert_eq!(cs.repaired_accuracy.len(), expected_runs);
        // 3 groups (age, sex, age*sex) × 6 metrics.
        assert_eq!(cs.fairness.len(), 18);
        assert!(cs.fairness_for("sex", FairnessMetric::PredictiveParity).is_some());
        assert!(cs.fairness_for("age*sex", FairnessMetric::EqualOpportunity).is_some());
        assert!(cs.fairness.iter().any(|f| f.intersectional));
        assert!(results.n_model_evaluations() >= expected_runs * 2);
    }

    #[test]
    fn heart_skipped_for_missing_values() {
        let results = run_error_type_study(
            ErrorType::MissingValues,
            &[DatasetId::Heart],
            &[ModelKind::LogReg],
            &StudyScale::smoke(),
            1,
        )
        .unwrap();
        assert!(results.configs.is_empty());
    }

    #[test]
    fn study_is_deterministic() {
        let run = || {
            run_error_type_study(
                ErrorType::Mislabels,
                &[DatasetId::German],
                &[ModelKind::LogReg],
                &StudyScale::smoke(),
                99,
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.configs[0].dirty_accuracy, b.configs[0].dirty_accuracy);
        assert_eq!(a.configs[0].repaired_accuracy, b.configs[0].repaired_accuracy);
        let fa = &a.configs[0].fairness[0];
        let fb = &b.configs[0].fairness[0];
        // NaN-aware comparison.
        assert_eq!(fa.dirty.len(), fb.dirty.len());
        for (x, y) in fa.dirty.iter().zip(&fb.dirty) {
            assert!(x == y || (x.is_nan() && y.is_nan()));
        }
    }

    #[test]
    fn missing_study_counts_variants() {
        let results = run_error_type_study(
            ErrorType::MissingValues,
            &[DatasetId::German],
            &[ModelKind::LogReg],
            &StudyScale::smoke(),
            3,
        )
        .unwrap();
        assert_eq!(results.configs.len(), 6); // six imputation combos
        // All variants share the identical dirty baseline scores.
        let first = &results.configs[0].dirty_accuracy;
        for cs in &results.configs[1..] {
            assert_eq!(&cs.dirty_accuracy, first);
        }
    }
}
