//! Study runner: executes whole configuration grids — (dataset × model ×
//! repair variant) × (splits × model seeds) — collecting the paired score
//! vectors the impact classification consumes.
//!
//! Mirrors CleanML's execution structure: the **dirty baseline is computed
//! once per (dataset, model, split, model-seed)** and shared across all
//! repair variants of the error type, and detection runs once per detector
//! rather than once per (detector, repair) pair. Model-independent work is
//! hoisted maximally: each (dataset, split) task samples, prepares
//! (detection + repair) and **feature-encodes every arm exactly once**,
//! then reuses the encoded matrices across all models and model seeds.
//!
//! # Parallel decomposition
//!
//! Work is scheduled on the persistent work-stealing pool at **evaluation
//! unit** granularity, not task granularity. Tasks prepare (sample +
//! detect/repair + encode) in parallel; each prepared task then fans its
//! (model × model-seed × arm) grid out as individual units — one tuned
//! fit-and-score each — through a nested indexed parallel map on the same
//! pool, so idle workers steal units (and the CV folds inside them) from
//! whichever task is still running instead of idling behind the slowest
//! task. A task's encoded matrices live only while its units are in
//! flight, which keeps memory bounded by the number of workers rather
//! than the grid size.
//!
//! Determinism is by construction, not by scheduling: every unit's RNG
//! seed derives purely from `(study_seed, dataset, split, model,
//! seed_idx)` — see [`split_seed`] and the model-seed derivation in the
//! unit loop — and unit results return through an order-preserving
//! indexed collect, so any thread count (including the serial 1-worker
//! reference pool) produces byte-identical exports.
//!
//! # Durable execution
//!
//! [`run_error_type_study_with`] adds a crash-safe layer on top:
//!
//! * every completed task is appended to a fingerprinted JSONL
//!   **journal** (see [`crate::journal`]) as it finishes, so a killed
//!   process loses at most the tasks still in flight;
//! * `resume: true` replays journaled tasks instead of re-executing them
//!   — and because every task seed derives from `(study seed, dataset,
//!   split)` only (never from the task's position in a work list), a
//!   resumed run produces byte-identical final results;
//! * a task is journalled **only after all of its units complete** — a
//!   halt or crash mid-task re-runs that task from scratch on resume, so
//!   no partial grid ever reaches the journal (exactly-once semantics);
//! * a failed task no longer aborts the study: it is recorded (error
//!   string + seeds) and excluded from assembly, and only when more than
//!   [`StudyOptions::failure_threshold`] of the tasks fail does the run
//!   return an `Err` — past the threshold a halt flag stops workers from
//!   picking up new tasks promptly (idle workers park on the pool's
//!   condvar; nothing busy-spins);
//! * an atomic [`crate::progress::ProgressTracker`] reports units
//!   done/total, evals/s and ETA, and per-phase wall time is aggregated
//!   into the study result.

use crate::config::{ExperimentConfig, RectifySpec, RepairSide, RepairSpec, StudyOptions, StudyScale};
use crate::journal::{self, JournalWriter, StudyFingerprint};
use crate::pipeline::{
    encode_arm, evaluate_unit, fit_unit, rectify_unit_model, sample_split, score_unit, EncodedArm,
};
use crate::progress::{PhaseAccumulator, PhaseSeconds, ProgressTracker, StudyPhase};
use crate::results::FailedTask;
use cleaning::repair::{CatImpute, LabelRepair, MissingRepair, NumImpute};
use datasets::{DatasetId, ErrorType};
use fairness::{FairnessMetric, GroupSpec};
use mlcore::ModelKind;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use tabular::{BlockStore, DataFrame, Result, TabularError};

/// Paired dirty/repaired score vectors for one group × metric.
#[derive(Debug, Clone)]
pub struct GroupMetricScores {
    /// Group label (e.g. `sex`, `sex*race`).
    pub group: String,
    /// True when the group spec is intersectional.
    pub intersectional: bool,
    /// The fairness metric.
    pub metric: FairnessMetric,
    /// Absolute disparity per run on the dirty arm (NaN when undefined).
    pub dirty: Vec<f64>,
    /// Absolute disparity per run on the repaired arm.
    pub repaired: Vec<f64>,
}

/// All paired scores of one configuration.
#[derive(Debug, Clone)]
pub struct ConfigScores {
    /// The configuration.
    pub config: ExperimentConfig,
    /// Paired accuracies (dirty arm), one entry per run.
    pub dirty_accuracy: Vec<f64>,
    /// Paired accuracies (repaired arm).
    pub repaired_accuracy: Vec<f64>,
    /// Fairness score pairs per group × metric.
    pub fairness: Vec<GroupMetricScores>,
}

impl ConfigScores {
    /// The scores entry for a `(group, metric)` pair.
    pub fn fairness_for(&self, group: &str, metric: FairnessMetric) -> Option<&GroupMetricScores> {
        self.fairness.iter().find(|f| f.group == group && f.metric == metric)
    }
}

/// Results of a study over one error type.
#[derive(Debug, Clone)]
pub struct StudyResults {
    /// The error type studied.
    pub error: ErrorType,
    /// The scale the study ran at.
    pub scale: StudyScale,
    /// One entry per (dataset, model, repair variant) with at least one
    /// completed run; configurations whose every task failed are excluded.
    pub configs: Vec<ConfigScores>,
    /// Tasks that failed and were excluded from assembly (degraded run
    /// when non-empty).
    pub failed_tasks: Vec<FailedTask>,
    /// Tasks restored from the journal instead of re-executed.
    pub journal_hits: usize,
    /// Journal records that could not be used (stale fingerprint,
    /// truncation, seed drift, ...). Zero on a healthy resume.
    pub journal_warnings: usize,
    /// Cumulative per-phase wall time of the tasks executed this run.
    pub phases: PhaseSeconds,
    /// Which side of the pipeline the study's repairs acted on.
    pub repair_side: RepairSide,
}

impl StudyResults {
    /// A plain result carrying only scores (no failures, no journal
    /// statistics) — what an undisturbed in-memory run produces.
    pub fn new(error: ErrorType, scale: StudyScale, configs: Vec<ConfigScores>) -> StudyResults {
        StudyResults {
            error,
            scale,
            configs,
            failed_tasks: Vec::new(),
            journal_hits: 0,
            journal_warnings: 0,
            phases: PhaseSeconds::default(),
            repair_side: RepairSide::Data,
        }
    }

    /// True when at least one task failed and the study completed without
    /// its runs.
    pub fn degraded(&self) -> bool {
        !self.failed_tasks.is_empty()
    }

    /// Human-readable summary of the failed tasks, `None` for a clean run.
    pub fn degraded_summary(&self) -> Option<String> {
        if self.failed_tasks.is_empty() {
            return None;
        }
        let list = self
            .failed_tasks
            .iter()
            .map(|t| format!("{} ({})", t.label(), t.error))
            .collect::<Vec<_>>()
            .join("; ");
        Some(format!("degraded: {} task(s) failed: {list}", self.failed_tasks.len()))
    }

    /// Total number of model evaluations performed (two arms per run, but
    /// the dirty arm is shared across repair variants).
    ///
    /// Counts the dirty runs actually present per (dataset, model) rather
    /// than assuming the full grid, so degraded runs and partially
    /// completed configurations are not overcounted.
    pub fn n_model_evaluations(&self) -> usize {
        let repaired: usize = self
            .configs
            .iter()
            .map(|c| c.repaired_accuracy.len())
            .sum();
        let mut dirty_runs: std::collections::BTreeMap<(&str, &str), usize> = Default::default();
        for c in &self.configs {
            let key = (c.config.dataset.name(), c.config.model.name());
            let entry = dirty_runs.entry(key).or_insert(0);
            // All variants of a (dataset, model) share the identical dirty
            // baseline, so max == the shared run count.
            *entry = (*entry).max(c.dirty_accuracy.len());
        }
        repaired + dirty_runs.values().sum::<usize>()
    }
}

/// FNV-1a hash for deterministic seed derivation.
pub(crate) fn fnv(text: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Mixes study seed, dataset and split index into a split seed.
/// Independent of the model so all models see identical splits
/// (CleanML re-uses splits across methods), and independent of the task's
/// position in any work list so a resumed run reproduces identical seeds.
pub(crate) fn split_seed(study_seed: u64, dataset: DatasetId, split: usize) -> u64 {
    study_seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(fnv(dataset.name()))
        .wrapping_add(split as u64 * 0xA24BAED4963EE407)
}

/// Builds the shared dirty frames and the per-variant repaired frames for
/// one split, computing detection once per detector.
fn prepare_all_variants(
    train: &DataFrame,
    test: &DataFrame,
    error: ErrorType,
    variants: &[RepairSpec],
    seed: u64,
) -> Result<PreparedVariants> {
    let baseline = MissingRepair { num: NumImpute::Mean, cat: CatImpute::Dummy };
    match error {
        ErrorType::MissingValues => {
            let dirty_train = train.drop_incomplete_rows()?;
            if dirty_train.n_rows() < 10 {
                return Err(TabularError::InvalidArgument(
                    "dropping incomplete rows leaves too little training data".to_string(),
                ));
            }
            let dirty_test = baseline.fit(&dirty_train)?.apply(test)?;
            let mut repaired = Vec::with_capacity(variants.len());
            for variant in variants {
                let RepairSpec::Missing(config) = variant else {
                    return Err(TabularError::InvalidArgument(
                        "variant/error mismatch".to_string(),
                    ));
                };
                let fitted = config.fit(train)?;
                repaired.push((fitted.apply(train)?, fitted.apply(test)?));
            }
            Ok((dirty_train, dirty_test, repaired))
        }
        ErrorType::Outliers => {
            let (base_train, base_test) = preclean(train, test, &baseline)?;
            // Cache detection reports per detector: repairs of the same
            // detector share them.
            let mut report_cache: std::collections::BTreeMap<
                String,
                (cleaning::DetectionReport, cleaning::DetectionReport),
            > = Default::default();
            let mut repaired = Vec::with_capacity(variants.len());
            for variant in variants {
                let RepairSpec::Outliers { detector, repair } = variant else {
                    return Err(TabularError::InvalidArgument(
                        "variant/error mismatch".to_string(),
                    ));
                };
                if !report_cache.contains_key(detector.name()) {
                    let fitted_detector = detector.fit(&base_train, seed)?;
                    report_cache.insert(
                        detector.name().to_string(),
                        (
                            fitted_detector.detect(&base_train)?,
                            fitted_detector.detect(&base_test)?,
                        ),
                    );
                }
                let (train_report, test_report) = &report_cache[detector.name()];
                let fitted_repair = repair.fit(&base_train, train_report)?;
                repaired.push((
                    fitted_repair.apply(&base_train, train_report)?,
                    fitted_repair.apply(&base_test, test_report)?,
                ));
            }
            Ok((base_train, base_test, repaired))
        }
        ErrorType::Mislabels => {
            let (base_train, base_test) = preclean(train, test, &baseline)?;
            let detector = cleaning::detect::DetectorKind::Mislabels.fit(&base_train, seed)?;
            let report = detector.detect(&base_train)?;
            let flipped = LabelRepair.apply(&base_train, &report)?;
            let repaired = variants
                .iter()
                .map(|_| (flipped.clone(), base_test.clone()))
                .collect();
            Ok((base_train, base_test, repaired))
        }
    }
}

fn preclean(
    train: &DataFrame,
    test: &DataFrame,
    baseline: &MissingRepair,
) -> Result<(DataFrame, DataFrame)> {
    if train.missing_cells() == 0 && test.missing_cells() == 0 {
        return Ok((train.clone(), test.clone()));
    }
    let clean_train = train.drop_incomplete_rows()?;
    if clean_train.n_rows() < 10 {
        return Err(TabularError::InvalidArgument(
            "dropping incomplete rows leaves too little training data".to_string(),
        ));
    }
    let clean_test = baseline.fit(&clean_train)?.apply(test)?;
    Ok((clean_train, clean_test))
}

/// The dirty (train, test) pair plus one repaired pair per variant.
type PreparedVariants = (DataFrame, DataFrame, Vec<(DataFrame, DataFrame)>);

/// One model-seed's scores: dirty accuracy, dirty disparities, and per
/// variant (repaired accuracy, repaired disparities).
pub(crate) type SeedScores = (f64, Vec<f64>, Vec<(f64, Vec<f64>)>);

/// Output of one (dataset, split) task: per model, one [`SeedScores`]
/// per model seed (seeds in ascending order).
pub(crate) struct TaskOutput {
    pub(crate) dataset_idx: usize,
    pub(crate) split_idx: usize,
    pub(crate) runs_by_model: Vec<Vec<SeedScores>>,
}

/// The model-independent product of one (dataset, split) task: the dirty
/// arm and every variant arm, encoded once. Holds the matrices the
/// task's evaluation units all read; dropped as soon as the last unit
/// finishes.
struct EncodedTask {
    dirty_arm: EncodedArm,
    variant_arms: Vec<EncodedArm>,
}

/// Prepares one (dataset, split) task: sample, prepare all variants,
/// encode every arm once. Phase wall times are accumulated even when a
/// stage errors out.
fn prepare_task(
    sseed: u64,
    pool: &BlockStore,
    error: ErrorType,
    variants: &[RepairSpec],
    scale: &StudyScale,
    group_specs: &[GroupSpec],
    phases: &PhaseAccumulator,
) -> Result<EncodedTask> {
    // lint:allow(D002, phase timing is telemetry only; durations never feed seeds or exports)
    let mut mark = Instant::now();
    let mut lap = |phase: StudyPhase| {
        // lint:allow(D002, phase timing is telemetry only; durations never feed seeds or exports)
        let now = Instant::now();
        phases.add(phase, now - mark);
        mark = now;
    };

    let sampled = sample_split(pool, scale, sseed);
    lap(StudyPhase::Sample);
    let (train, test) = sampled?;

    let prepared = prepare_all_variants(&train, &test, error, variants, sseed ^ 0x5EED);
    lap(StudyPhase::Prepare);
    let (dirty_train, dirty_test, repaired_frames) = prepared?;

    let encoded = (|| -> Result<_> {
        let dirty_arm = encode_arm(&dirty_train, &dirty_test, group_specs)?;
        let variant_arms = repaired_frames
            .iter()
            .map(|(rep_train, rep_test)| encode_arm(rep_train, rep_test, group_specs))
            .collect::<Result<Vec<_>>>()?;
        Ok((dirty_arm, variant_arms))
    })();
    lap(StudyPhase::Encode);
    let (dirty_arm, variant_arms) = encoded?;
    Ok(EncodedTask { dirty_arm, variant_arms })
}

/// Evaluates a prepared task's full (model × model-seed × arm) grid as
/// individual units on the ambient pool and assembles the results in
/// grid order.
///
/// Read-only evaluation context shared by every unit of every task:
/// rosters, scale, fairness bookkeeping and the telemetry sinks.
struct UnitCtx<'a> {
    models: &'a [ModelKind],
    scale: &'a StudyScale,
    metrics: &'a [FairnessMetric],
    phases: &'a PhaseAccumulator,
    tracker: &'a ProgressTracker,
    side: RepairSide,
    rectify: &'a RectifySpec,
}

/// Each unit derives its model seed from `(sseed, model, seed_idx)`
/// alone and writes to its own index of the collected vector, so the
/// assembly — and therefore the export — is invariant to which worker
/// ran which unit. Arm index 0 is the dirty arm, `1 + v` is variant `v`;
/// the dirty and every variant arm of a (model, seed) pair share one
/// model seed, preserving the paper's paired design.
///
/// [`RepairSide`] decides what a variant unit trains on and whether its
/// fitted model is rectified afterwards; the dirty baseline (arm 0) is
/// always a plain fit, so every side's "repaired vs dirty" comparison
/// shares one baseline:
///
/// * `Data`  — variant arm, no rectification (the paper's protocol);
/// * `Model` — the **dirty** arm refit per variant slot, then rectified
///   (isolates the model-side repair from any data cleaning);
/// * `Both`  — variant arm, then rectified (composition of the two).
fn evaluate_task_units(
    d: usize,
    s: usize,
    sseed: u64,
    arms: &EncodedTask,
    group_labels: &[(String, bool)],
    ctx: &UnitCtx<'_>,
) -> TaskOutput {
    let UnitCtx { models, scale, metrics, phases, tracker, side, rectify } = *ctx;
    let n_arms = 1 + arms.variant_arms.len();
    let unit_scores: Vec<(f64, Vec<f64>)> = (0..models.len() * scale.n_model_seeds * n_arms)
        .into_par_iter()
        .map(|unit| {
            let m = unit / (scale.n_model_seeds * n_arms);
            let k = (unit / n_arms) % scale.n_model_seeds;
            let a = unit % n_arms;
            let model_seed = sseed
                .wrapping_add(fnv(models[m].name()))
                .wrapping_add(k as u64 * 0x2545F4914F6CDD1D);
            let use_variant = a > 0 && side.repairs_data();
            let arm = if use_variant { &arms.variant_arms[a - 1] } else { &arms.dirty_arm };
            let scores = if a > 0 && side.rectifies() {
                // lint:allow(D002, unit timing is telemetry only; never feeds seeds or exports)
                let start = Instant::now();
                let mut tuned = fit_unit(arm, models[m], scale.cv_folds, model_seed);
                phases.add(StudyPhase::TrainEval, start.elapsed());
                // lint:allow(D002, unit timing is telemetry only; never feeds seeds or exports)
                let rectify_start = Instant::now();
                let _report = rectify_unit_model(tuned.model.as_mut(), arm, model_seed, rectify);
                phases.add(StudyPhase::Rectify, rectify_start.elapsed());
                // lint:allow(D002, unit timing is telemetry only; never feeds seeds or exports)
                let score_start = Instant::now();
                let scores = score_unit(arm, &tuned, group_labels, metrics);
                phases.add(StudyPhase::TrainEval, score_start.elapsed());
                scores
            } else {
                // lint:allow(D002, unit timing is telemetry only; never feeds seeds or exports)
                let start = Instant::now();
                let scores = evaluate_unit(
                    arm,
                    models[m],
                    scale.cv_folds,
                    model_seed,
                    group_labels,
                    metrics,
                );
                phases.add(StudyPhase::TrainEval, start.elapsed());
                scores
            };
            tracker.advance(1, 1);
            scores
        })
        .collect();
    let mut units = unit_scores.into_iter();
    let runs_by_model = models
        .iter()
        .map(|_| {
            (0..scale.n_model_seeds)
                .map(|_| {
                    // lint:allow(P001, unit_scores has exactly n_models*n_seeds*n_arms entries by construction)
                    let (dirty_acc, dirty_disp) = units.next().expect("dirty unit present");
                    let per_variant: Vec<(f64, Vec<f64>)> = (1..n_arms)
                        // lint:allow(P001, unit_scores has exactly n_models*n_seeds*n_arms entries by construction)
                        .map(|_| units.next().expect("variant unit present"))
                        .collect();
                    (dirty_acc, dirty_disp, per_variant)
                })
                .collect()
        })
        .collect();
    TaskOutput { dataset_idx: d, split_idx: s, runs_by_model }
}

/// Per-task result of the parallel phase.
enum TaskOutcome {
    /// Executed this run.
    Done(TaskOutput),
    /// Restored from the journal (counts as a journal hit).
    Replayed(TaskOutput),
    /// Failed; recorded and excluded from assembly.
    Failed(FailedTask),
    /// Not started because `stop_after_tasks` tripped.
    Interrupted,
}

/// Runs the full study for one error type over the given datasets and
/// models with default [`StudyOptions`] (no journal, graceful
/// degradation up to the default failure threshold).
///
/// Datasets that do not carry the error type (e.g. heart has no missing
/// values) are skipped automatically.
pub fn run_error_type_study(
    error: ErrorType,
    dataset_ids: &[DatasetId],
    models: &[ModelKind],
    scale: &StudyScale,
    study_seed: u64,
) -> Result<StudyResults> {
    run_error_type_study_with(error, dataset_ids, models, scale, study_seed, &StudyOptions::default())
}

/// Runs the full study for one error type with durable-execution options:
/// task journaling, resume, graceful per-task degradation and progress
/// telemetry. See [`StudyOptions`].
pub fn run_error_type_study_with(
    error: ErrorType,
    dataset_ids: &[DatasetId],
    models: &[ModelKind],
    scale: &StudyScale,
    study_seed: u64,
    options: &StudyOptions,
) -> Result<StudyResults> {
    let metrics = FairnessMetric::all().to_vec();
    let variants = RepairSpec::variants_for(error);

    // Keep only datasets that declare the error type.
    let datasets: Vec<DatasetId> = dataset_ids
        .iter()
        .copied()
        .filter(|id| id.spec().has_error_type(error))
        .collect();

    // Generate pools and group specs up front (one per dataset).
    let mut pools = Vec::with_capacity(datasets.len());
    let mut group_specs: Vec<Vec<GroupSpec>> = Vec::with_capacity(datasets.len());
    let mut group_labels: Vec<Vec<(String, bool)>> = Vec::with_capacity(datasets.len());
    for id in &datasets {
        let pool = id.generate_store(scale.pool_size, study_seed ^ fnv(id.name()))?;
        let spec = id.spec();
        let mut gs = spec.single_attribute_specs();
        if let Some(inter) = spec.intersectional_spec() {
            gs.push(inter);
        }
        group_labels.push(gs.iter().map(|g| (g.label(), g.is_intersectional())).collect());
        group_specs.push(gs);
        pools.push(pool);
    }

    // Task grid: (dataset, split). Sampling, detection, repair and feature
    // encoding are all model-independent, so each split's arms are built
    // and encoded once and shared across every model and model seed.
    let mut tasks = Vec::new();
    for d in 0..datasets.len() {
        for s in 0..scale.n_splits {
            tasks.push((d, s));
        }
    }

    // Journal setup: open (append) the fingerprinted journal file and,
    // when resuming, replay whatever valid records it already holds.
    let fingerprint = StudyFingerprint::compute(
        error,
        &datasets,
        models,
        scale,
        study_seed,
        &variants,
        options.repair_side,
        &options.rectify,
    );
    let mut journal_warnings = 0usize;
    let mut replayed: BTreeMap<(usize, usize), Vec<Vec<SeedScores>>> = BTreeMap::new();
    let writer: Option<JournalWriter> = match &options.journal_dir {
        Some(dir) => {
            let path = journal::journal_path(dir, error, &fingerprint);
            if options.resume {
                let replay = journal::load(&path, &fingerprint);
                for warning in &replay.warnings {
                    eprintln!("journal warning: {warning}");
                }
                journal_warnings += replay.warnings.len();
                for ((name, split), record) in replay.tasks {
                    let Some(d) = datasets.iter().position(|id| id.name() == name) else {
                        eprintln!("journal warning: task {name}#{split} not in the dataset roster");
                        journal_warnings += 1;
                        continue;
                    };
                    if split >= scale.n_splits {
                        eprintln!("journal warning: task {name}#{split} beyond the split grid");
                        journal_warnings += 1;
                        continue;
                    }
                    let expected_seed = split_seed(study_seed, datasets[d], split);
                    if record.seed != expected_seed {
                        eprintln!(
                            "journal warning: task {name}#{split} seed {} does not match the \
                             derived seed {expected_seed}; re-running",
                            record.seed
                        );
                        journal_warnings += 1;
                        continue;
                    }
                    let shape_ok = record.runs_by_model.len() == models.len()
                        && record
                            .runs_by_model
                            .iter()
                            .all(|runs| runs.len() == scale.n_model_seeds);
                    if !shape_ok {
                        eprintln!("journal warning: task {name}#{split} has a mismatched run grid; re-running");
                        journal_warnings += 1;
                        continue;
                    }
                    replayed.insert((d, split), record.runs_by_model);
                }
            }
            Some(JournalWriter::open(&path, &fingerprint)?)
        }
        None => None,
    };

    // One evaluation unit = one tuned fit-and-score of a single
    // (model, seed, arm); the unit grid is the progress denominator.
    let units_per_task = models.len() * scale.n_model_seeds * (1 + variants.len());
    let tracker = ProgressTracker::new(
        tasks.len() * units_per_task,
        options.progress,
        options.progress_interval,
    );
    let phases = PhaseAccumulator::default();
    let executed = AtomicUsize::new(0);
    let failed_count = AtomicUsize::new(0);
    // Why a task stopped picking up work. Tasks already in flight finish
    // all their units (so their journal record stays all-or-nothing);
    // not-yet-started tasks see the flag at entry and return immediately
    // — the pool's workers then park on its condvar, nothing spins.
    const HALT_NONE: usize = 0;
    const HALT_STOP_AFTER: usize = 1;
    const HALT_THRESHOLD: usize = 2;
    let halt = AtomicUsize::new(HALT_NONE);

    let outcomes: Vec<TaskOutcome> = tasks
        .par_iter()
        .map(|&(d, s)| {
            let name = datasets[d].name();
            let sseed = split_seed(study_seed, datasets[d], s);
            if let Some(runs) = replayed.get(&(d, s)) {
                tracker.advance(units_per_task, 0);
                return TaskOutcome::Replayed(TaskOutput {
                    dataset_idx: d,
                    split_idx: s,
                    runs_by_model: runs.clone(),
                });
            }
            if halt.load(Ordering::Relaxed) != HALT_NONE {
                return TaskOutcome::Interrupted;
            }
            let prepared: Result<EncodedTask> = if options
                .inject_task_failure
                .is_some_and(|should_fail| should_fail(name, s))
            {
                Err(TabularError::InvalidArgument(format!(
                    "injected prepare_all_variants failure for {name} split {s}"
                )))
            } else {
                prepare_task(sseed, &pools[d], error, &variants, scale, &group_specs[d], &phases)
            };
            let arms = match prepared {
                Ok(arms) => arms,
                Err(e) => {
                    let message = e.to_string();
                    if let Some(writer) = &writer {
                        let _ = writer.record_failure(name, s, sseed, &message);
                    }
                    tracker.advance(units_per_task, 0);
                    let failed = failed_count.fetch_add(1, Ordering::SeqCst) + 1;
                    if failed as f64 / tasks.len() as f64 > options.failure_threshold {
                        let _ = halt.compare_exchange(
                            HALT_NONE,
                            HALT_THRESHOLD,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        );
                    }
                    return TaskOutcome::Failed(FailedTask {
                        dataset: name.to_string(),
                        split: s,
                        seed: sseed,
                        error: message,
                    });
                }
            };
            let ctx = UnitCtx {
                models,
                scale,
                metrics: &metrics,
                phases: &phases,
                tracker: &tracker,
                side: options.repair_side,
                rectify: &options.rectify,
            };
            let output = evaluate_task_units(d, s, sseed, &arms, &group_labels[d], &ctx);
            // Journal only now, with every unit of the task complete:
            // exactly-once, all-or-nothing records.
            if let Some(writer) = &writer {
                if let Err(e) = writer.record_task(name, s, sseed, &output.runs_by_model) {
                    eprintln!("journal write failed for {name}#{s}: {e}");
                }
            }
            let done = executed.fetch_add(1, Ordering::SeqCst) + 1;
            if options.stop_after_tasks.is_some_and(|limit| done >= limit) {
                let _ = halt.compare_exchange(
                    HALT_NONE,
                    HALT_STOP_AFTER,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
            }
            if let Some(hook) = options.on_task_complete {
                hook(done, tasks.len());
            }
            TaskOutcome::Done(output)
        })
        .collect();

    // Triage the outcomes. Graceful degradation: failed tasks are
    // recorded and excluded; only past the threshold (or on a simulated
    // interruption) does the study error out. The outcome vector is in
    // task-grid order, so `failed_tasks` is deterministic regardless of
    // which worker hit each failure first.
    let mut slots: Vec<Option<TaskOutput>> = Vec::with_capacity(tasks.len());
    slots.resize_with(tasks.len(), || None);
    let mut failed_tasks: Vec<FailedTask> = Vec::new();
    let mut journal_hits = 0usize;
    let mut interrupted = false;
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            TaskOutcome::Done(output) => slots[i] = Some(output),
            TaskOutcome::Replayed(output) => {
                journal_hits += 1;
                slots[i] = Some(output);
            }
            TaskOutcome::Failed(task) => failed_tasks.push(task),
            TaskOutcome::Interrupted => interrupted = true,
        }
    }
    // The threshold error outranks the interruption error: a
    // threshold-triggered halt interrupts the remaining tasks as a side
    // effect, and the failure is the part worth reporting.
    if !tasks.is_empty() {
        let failed_fraction = failed_tasks.len() as f64 / tasks.len() as f64;
        if failed_fraction > options.failure_threshold {
            let list = failed_tasks
                .iter()
                .map(|t| format!("{}: {}", t.label(), t.error))
                .collect::<Vec<_>>()
                .join("; ");
            return Err(TabularError::InvalidArgument(format!(
                "study degraded beyond the failure threshold: {}/{} tasks failed \
                 (threshold {:.0}%): {list}",
                failed_tasks.len(),
                tasks.len(),
                options.failure_threshold * 100.0
            )));
        }
    }
    if interrupted {
        return Err(TabularError::InvalidArgument(format!(
            "study interrupted after {} executed task(s) (stop_after_tasks); \
             the journal keeps completed work",
            executed.load(Ordering::SeqCst)
        )));
    }

    // Assemble per-configuration score vectors. Runs are ordered by
    // (split asc, model seed asc), matching the task grid order; splits
    // whose task failed are skipped, and configurations left with no runs
    // at all are dropped.
    let n_runs = scale.scores_per_config();
    let mut configs = Vec::new();
    for (d, id) in datasets.iter().enumerate() {
        for (m, model) in models.iter().enumerate() {
            for (v, variant) in variants.iter().enumerate() {
                let mut cs = ConfigScores {
                    config: ExperimentConfig { dataset: *id, model: *model, repair: *variant },
                    dirty_accuracy: Vec::with_capacity(n_runs),
                    repaired_accuracy: Vec::with_capacity(n_runs),
                    fairness: group_labels[d]
                        .iter()
                        .flat_map(|(label, inter)| {
                            metrics.iter().map(move |metric| GroupMetricScores {
                                group: label.clone(),
                                intersectional: *inter,
                                metric: *metric,
                                dirty: Vec::with_capacity(n_runs),
                                repaired: Vec::with_capacity(n_runs),
                            })
                        })
                        .collect(),
                };
                for s in 0..scale.n_splits {
                    let Some(output) = &slots[d * scale.n_splits + s] else {
                        continue;
                    };
                    debug_assert_eq!((output.dataset_idx, output.split_idx), (d, s));
                    for (dirty_acc, dirty_disp, per_variant) in &output.runs_by_model[m] {
                        let (rep_acc, rep_disp) = &per_variant[v];
                        cs.dirty_accuracy.push(*dirty_acc);
                        cs.repaired_accuracy.push(*rep_acc);
                        for (slot, f) in cs.fairness.iter_mut().enumerate() {
                            f.dirty.push(dirty_disp[slot]);
                            f.repaired.push(rep_disp[slot]);
                        }
                    }
                }
                if cs.repaired_accuracy.is_empty() {
                    continue;
                }
                configs.push(cs);
            }
        }
    }

    let results = StudyResults {
        error,
        scale: *scale,
        configs,
        failed_tasks,
        journal_hits,
        journal_warnings,
        phases: phases.seconds(),
        repair_side: options.repair_side,
    };
    if options.progress {
        if let Some(summary) = results.degraded_summary() {
            eprintln!("{summary}");
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mislabel_study_on_german_smoke() {
        let results = run_error_type_study(
            ErrorType::Mislabels,
            &[DatasetId::German],
            &[ModelKind::LogReg],
            &StudyScale::smoke(),
            7,
        )
        .unwrap();
        assert_eq!(results.configs.len(), 1);
        let cs = &results.configs[0];
        let expected_runs = StudyScale::smoke().scores_per_config();
        assert_eq!(cs.dirty_accuracy.len(), expected_runs);
        assert_eq!(cs.repaired_accuracy.len(), expected_runs);
        // 3 groups (age, sex, age*sex) × 6 metrics.
        assert_eq!(cs.fairness.len(), 18);
        assert!(cs.fairness_for("sex", FairnessMetric::PredictiveParity).is_some());
        assert!(cs.fairness_for("age*sex", FairnessMetric::EqualOpportunity).is_some());
        assert!(cs.fairness.iter().any(|f| f.intersectional));
        assert!(results.n_model_evaluations() >= expected_runs * 2);
        assert!(!results.degraded());
        assert_eq!(results.journal_hits, 0);
        // Every phase did some work.
        assert!(results.phases.sample > 0.0);
        assert!(results.phases.prepare > 0.0);
        assert!(results.phases.encode > 0.0);
        assert!(results.phases.train_eval > 0.0);
    }

    /// A model-side repair study runs end-to-end: the dirty baseline is
    /// untouched (identical to the data-side study's baseline) and the
    /// "repaired" scores come from rectified models, with the rectify
    /// phase doing measurable work.
    #[test]
    fn model_side_study_rectifies_trees() {
        let scale = StudyScale::smoke();
        let run = |side: RepairSide| {
            let options = StudyOptions { repair_side: side, ..StudyOptions::default() };
            run_error_type_study_with(
                ErrorType::Mislabels,
                &[DatasetId::German],
                &[ModelKind::DecisionTree],
                &scale,
                7,
                &options,
            )
            .unwrap()
        };
        let data = run(RepairSide::Data);
        let model = run(RepairSide::Model);
        assert_eq!(model.repair_side, RepairSide::Model);
        assert_eq!(data.repair_side, RepairSide::Data);
        // The shared dirty baseline is side-invariant.
        assert_eq!(data.configs[0].dirty_accuracy, model.configs[0].dirty_accuracy);
        // Data-side studies never rectify; model-side studies do.
        assert_eq!(data.phases.rectify, 0.0);
        assert!(model.phases.rectify > 0.0, "rectification phase did no work");
        let runs = scale.scores_per_config();
        assert_eq!(model.configs[0].repaired_accuracy.len(), runs);
    }

    #[test]
    fn heart_skipped_for_missing_values() {
        let results = run_error_type_study(
            ErrorType::MissingValues,
            &[DatasetId::Heart],
            &[ModelKind::LogReg],
            &StudyScale::smoke(),
            1,
        )
        .unwrap();
        assert!(results.configs.is_empty());
    }

    #[test]
    fn study_is_deterministic() {
        let run = || {
            run_error_type_study(
                ErrorType::Mislabels,
                &[DatasetId::German],
                &[ModelKind::LogReg],
                &StudyScale::smoke(),
                99,
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.configs[0].dirty_accuracy, b.configs[0].dirty_accuracy);
        assert_eq!(a.configs[0].repaired_accuracy, b.configs[0].repaired_accuracy);
        let fa = &a.configs[0].fairness[0];
        let fb = &b.configs[0].fairness[0];
        // NaN-aware comparison.
        assert_eq!(fa.dirty.len(), fb.dirty.len());
        for (x, y) in fa.dirty.iter().zip(&fb.dirty) {
            assert!(x == y || (x.is_nan() && y.is_nan()));
        }
    }

    #[test]
    fn missing_study_counts_variants() {
        let results = run_error_type_study(
            ErrorType::MissingValues,
            &[DatasetId::German],
            &[ModelKind::LogReg],
            &StudyScale::smoke(),
            3,
        )
        .unwrap();
        assert_eq!(results.configs.len(), 6); // six imputation combos
        // All variants share the identical dirty baseline scores.
        let first = &results.configs[0].dirty_accuracy;
        for cs in &results.configs[1..] {
            assert_eq!(&cs.dirty_accuracy, first);
        }
    }

    /// Regression: the dirty side of the evaluation count must reflect the
    /// runs actually present, not `datasets × models × scores_per_config`.
    #[test]
    fn n_model_evaluations_counts_actual_runs() {
        let scale = StudyScale::smoke(); // scores_per_config() == 4
        let mk = |runs: usize, repair: RepairSpec| ConfigScores {
            config: ExperimentConfig {
                dataset: DatasetId::German,
                model: ModelKind::LogReg,
                repair,
            },
            dirty_accuracy: vec![0.7; runs],
            repaired_accuracy: vec![0.8; runs],
            fairness: vec![],
        };
        let variants = RepairSpec::variants_for(ErrorType::MissingValues);
        // A degraded study: only 2 of the 4 grid runs completed.
        let results = StudyResults::new(
            ErrorType::MissingValues,
            scale,
            vec![mk(2, variants[0]), mk(2, variants[1])],
        );
        // 2 repaired runs per variant + 2 shared dirty runs — NOT
        // 4 + 4 (the old dirty_keys × scores_per_config overcount).
        assert_eq!(results.n_model_evaluations(), 2 + 2 + 2);
        assert!(results.n_model_evaluations() < 2 * 2 + scale.scores_per_config());
    }

    /// A deliberately failed task shrinks the evaluation count to what was
    /// actually performed.
    #[test]
    fn failed_task_shrinks_evaluation_count() {
        fn fail_split_one(dataset: &str, split: usize) -> bool {
            dataset == "german" && split == 1
        }
        let options = StudyOptions {
            failure_threshold: 0.5,
            inject_task_failure: Some(fail_split_one),
            ..StudyOptions::default()
        };
        let scale = StudyScale::smoke();
        let results = run_error_type_study_with(
            ErrorType::Mislabels,
            &[DatasetId::German],
            &[ModelKind::LogReg],
            &scale,
            7,
            &options,
        )
        .unwrap();
        assert!(results.degraded());
        assert_eq!(results.failed_tasks.len(), 1);
        assert_eq!(results.failed_tasks[0].label(), "german#1");
        // One of two splits failed: half the runs, counted exactly.
        let runs = scale.n_model_seeds; // one surviving split
        assert_eq!(results.configs[0].repaired_accuracy.len(), runs);
        assert_eq!(results.n_model_evaluations(), runs * 2);
    }

    #[test]
    fn failure_threshold_zero_restores_abort_semantics() {
        fn fail_any(_dataset: &str, split: usize) -> bool {
            split == 0
        }
        let options = StudyOptions {
            failure_threshold: 0.0,
            inject_task_failure: Some(fail_any),
            ..StudyOptions::default()
        };
        let err = run_error_type_study_with(
            ErrorType::Mislabels,
            &[DatasetId::German],
            &[ModelKind::LogReg],
            &StudyScale::smoke(),
            7,
            &options,
        )
        .unwrap_err();
        assert!(err.to_string().contains("failure threshold"), "{err}");
        assert!(err.to_string().contains("german#0"), "{err}");
    }
}
