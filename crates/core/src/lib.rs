//! # demodq — fairness-aware data-cleaning-impact experimentation framework
//!
//! The paper's core contribution: an extension of the CleanML protocol that
//! computes *group fairness* metrics alongside accuracy when evaluating
//! automated data cleaning, driven by declarative dataset definitions with
//! `privileged_groups`.
//!
//! The pieces map to the paper as follows:
//!
//! * [`config`] — experimental configurations (dataset / model / error /
//!   detection / repair) and study scales (the paper's full study trains
//!   26,400 models; the scale presets let a laptop reproduce the protocol
//!   at reduced grid density);
//! * [`pipeline`] — the Figure 3 evaluation pipeline: split → dirty and
//!   repaired versions → two models → paired scoring with group-wise
//!   confusion matrices;
//! * [`runner`] — multi-split, multi-model-seed execution of whole
//!   configuration grids on a persistent work-stealing pool, parallel at
//!   the granularity of single model evaluations, sharing the dirty
//!   baseline across repair variants exactly like CleanML;
//! * [`impact`] — the paired-t-test + Bonferroni classification of each
//!   configuration's impact on accuracy and fairness into
//!   worse / insignificant / better;
//! * [`tables`] — the 3×3 fairness × accuracy contingency tables of
//!   Tables II–XIII;
//! * [`rq1`] — the demographic-disparity analysis of detected errors
//!   (Figures 1–2) with G² significance tests, plus the mislabel FP/FN
//!   drill-down;
//! * [`deepdive`] — Section VI: per-case best-technique analysis, detector
//!   and repair comparisons, and the per-model Table XIV;
//! * [`results`] — CleanML-style JSON result records
//!   (`impute_mean_dummy__sex_priv__fp` keys);
//! * [`report`] — paper-format text rendering of every table and figure.
//!
//! Beyond the paper's protocol, the study grid carries a `repair_side`
//! axis ([`config::RepairSide`]): repair the *data* (the paper's
//! cleaning arms), rectify the *model* post-training with
//! [`demodq_rectify`] (leaf-level branch-and-bound under a fairness
//! constraint), or compose *both* — addressing the paper's §VII call to
//! steer repair selection by fairness rather than accuracy alone.

pub mod config;
pub mod deepdive;
pub mod export;
pub mod fair_tuning;
pub mod journal;
pub mod selector;
pub mod impact;
pub mod pipeline;
pub mod progress;
pub mod report;
pub mod results;
pub mod rq1;
pub mod runner;
pub mod serving;
pub mod tables;

pub use config::{ExperimentConfig, RectifySpec, RepairSide, RepairSpec, StudyOptions, StudyScale};
pub use fair_tuning::{tune_and_fit_fair, tune_and_fit_fair_rectified, FairTunedModel};
pub use impact::{classify_pair, Impact};
pub use pipeline::{
    encode_arm, evaluate_arm, evaluate_arm_encoded, rectification_split, rectify_unit_model,
    run_configuration_once, ArmEvaluation, EncodedArm, RunPair,
};
pub use progress::{PhaseSeconds, ProgressSnapshot, ProgressTracker, StudyPhase};
pub use results::FailedTask;
pub use runner::{
    run_error_type_study, run_error_type_study_with, ConfigScores, GroupMetricScores, StudyResults,
};
pub use serving::{train_serving_model, BaselineDisparity, RectificationGap, ServingModel, ServingRectification};
pub use tables::ImpactTable;
