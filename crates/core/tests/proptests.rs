//! Property-based tests for the framework's analysis layer: impact
//! classification, table construction and the selector guardrail must be
//! consistent for arbitrary score vectors.

use demodq::config::{ExperimentConfig, RepairSpec, StudyScale};
use demodq::impact::{classify_pair, Impact};
use demodq::runner::{ConfigScores, GroupMetricScores, StudyResults};
use demodq::selector::{recommend, SelectionPolicy, SelectorChoice};
use demodq::tables::build_table;
use datasets::{DatasetId, ErrorType};
use fairness::FairnessMetric;
use mlcore::ModelKind;
use proptest::prelude::*;

fn arb_scores() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..1.0f64, 4..24)
}

proptest! {
    #[test]
    fn classification_is_antisymmetric(a in arb_scores(), b in arb_scores()) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let forward = classify_pair(a, b, true, 0.05, 1);
        let backward = classify_pair(b, a, true, 0.05, 1);
        match forward {
            Impact::Better => prop_assert_eq!(backward, Impact::Worse),
            Impact::Worse => prop_assert_eq!(backward, Impact::Better),
            Impact::Insignificant => prop_assert_eq!(backward, Impact::Insignificant),
        }
        // Direction flips with the "higher is better" convention.
        let as_fairness = classify_pair(a, b, false, 0.05, 1);
        match forward {
            Impact::Better => prop_assert_eq!(as_fairness, Impact::Worse),
            Impact::Worse => prop_assert_eq!(as_fairness, Impact::Better),
            Impact::Insignificant => prop_assert_eq!(as_fairness, Impact::Insignificant),
        }
    }

    #[test]
    fn more_hypotheses_never_increase_significance(a in arb_scores(), b in arb_scores()) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let loose = classify_pair(a, b, true, 0.05, 1);
        let strict = classify_pair(a, b, true, 0.05, 100);
        if loose == Impact::Insignificant {
            prop_assert_eq!(strict, Impact::Insignificant);
        }
        // strict is either the same verdict or insignificant.
        prop_assert!(strict == loose || strict == Impact::Insignificant);
    }

    #[test]
    fn tables_count_every_entry_once(
        pairs in prop::collection::vec((arb_scores(), arb_scores()), 1..8),
    ) {
        let configs: Vec<ConfigScores> = pairs
            .iter()
            .map(|(dirty, repaired)| {
                let n = dirty.len().min(repaired.len());
                ConfigScores {
                    config: ExperimentConfig {
                        dataset: DatasetId::German,
                        model: ModelKind::LogReg,
                        repair: RepairSpec::Mislabels,
                    },
                    dirty_accuracy: dirty[..n].to_vec(),
                    repaired_accuracy: repaired[..n].to_vec(),
                    fairness: vec![GroupMetricScores {
                        group: "sex".to_string(),
                        intersectional: false,
                        metric: FairnessMetric::PredictiveParity,
                        dirty: repaired[..n].to_vec(),
                        repaired: dirty[..n].to_vec(),
                    }],
                }
            })
            .collect();
        let results = StudyResults::new(ErrorType::Mislabels, StudyScale::smoke(), configs);
        let table = build_table(&results, FairnessMetric::PredictiveParity, false, 0.05);
        prop_assert_eq!(table.total(), pairs.len());
        // Marginals are consistent.
        let fairness_total: usize = [Impact::Worse, Impact::Insignificant, Impact::Better]
            .iter()
            .map(|&f| table.fairness_marginal(f))
            .sum();
        prop_assert_eq!(fairness_total, pairs.len());
    }

    #[test]
    fn selector_never_recommends_fairness_worsening(
        pairs in prop::collection::vec((arb_scores(), arb_scores(), arb_scores()), 1..6),
    ) {
        // Build one group with arbitrary dirty/repaired disparity vectors.
        let variants = RepairSpec::variants_for(ErrorType::MissingValues);
        let configs: Vec<ConfigScores> = pairs
            .iter()
            .enumerate()
            .map(|(i, (acc_d, acc_r, disp))| {
                let n = acc_d.len().min(acc_r.len()).min(disp.len());
                ConfigScores {
                    config: ExperimentConfig {
                        dataset: DatasetId::German,
                        model: ModelKind::LogReg,
                        repair: variants[i % variants.len()],
                    },
                    dirty_accuracy: acc_d[..n].to_vec(),
                    repaired_accuracy: acc_r[..n].to_vec(),
                    fairness: vec![GroupMetricScores {
                        group: "sex".to_string(),
                        intersectional: false,
                        metric: FairnessMetric::PredictiveParity,
                        dirty: disp[..n].to_vec(),
                        repaired: acc_d[..n].to_vec(),
                    }],
                }
            })
            .collect();
        let results = StudyResults::new(ErrorType::MissingValues, StudyScale::smoke(), configs);
        for policy in [SelectionPolicy::FairnessFirst, SelectionPolicy::AccuracyFirst] {
            for rec in recommend(&results, FairnessMetric::PredictiveParity, false, 0.05, policy) {
                if let SelectorChoice::Clean { fairness, .. } = rec.choice {
                    prop_assert_ne!(fairness, Impact::Worse);
                }
            }
        }
    }
}
